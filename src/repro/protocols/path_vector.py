"""Path-vector routing.

Every node advertises, for each destination, the best path it knows together
with the full node list of that path; a neighbour only extends a path it is
not already part of (loop avoidance), exactly like BGP's AS-path mechanism.
This is the second protocol named in the paper's declarative-networks use
case.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.ndlog.ast import Program
from repro.ndlog.parser import parse_program
from repro.engine.runtime import NetTrailsRuntime
from repro.engine.topology import Topology

SOURCE = """
materialize(link, infinity, infinity, keys(1, 2)).

pv1 path(@S, D, P, C) :- link(@S, D, C), P := f_makeList(S, D).

pv2 path(@S, D, P, C) :- link(@S, Z, C1), bestPath(@Z, D, P2, C2),
    f_member(P2, S) == 0, C := C1 + C2, P := f_prepend(S, P2).

pv3 bestPathCost(@S, D, min<C>) :- path(@S, D, P, C).

pv4 bestPath(@S, D, P, C) :- bestPathCost(@S, D, C), path(@S, D, P, C).
"""


def program(name: str = "path_vector") -> Program:
    """The parsed path-vector program."""
    return parse_program(SOURCE, name=name)


def setup(topology: Topology, provenance: bool = True, run: bool = True) -> NetTrailsRuntime:
    """Build a runtime executing path-vector routing over *topology*."""
    runtime = NetTrailsRuntime(program(), topology, provenance=provenance)
    runtime.seed_links(run=run)
    return runtime


def reference_costs(topology: Topology) -> Dict[Tuple[str, str], float]:
    """Expected ``bestPathCost`` contents (all-pairs shortest path costs)."""
    return topology.shortest_path_costs()


def best_paths(runtime: NetTrailsRuntime) -> Dict[Tuple[str, str], Tuple[str, ...]]:
    """The currently selected best path per (source, destination) pair."""
    result: Dict[Tuple[str, str], Tuple[str, ...]] = {}
    for source, destination, path, _cost in runtime.state("bestPath"):
        result[(source, destination)] = tuple(path)
    return result


def check_against_reference(runtime: NetTrailsRuntime, topology: Topology) -> bool:
    """True when selected best-path costs match the offline shortest-path costs."""
    expected = reference_costs(topology)
    actual = {(s, d): c for (s, d, c) in runtime.state("bestPathCost")}
    return actual == expected
