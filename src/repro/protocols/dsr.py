"""Dynamic source routing (DSR): on-demand route discovery.

DSR is the third protocol named in the paper's declarative-networks use case
and the one exercised under mobility.  A node that needs a route issues a
``request``; route-request probes flood outward, each carrying the path
travelled so far (with loop suppression); when a probe reaches the requested
destination, a ``sourceRoute`` reply is derived back at the requester.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.ndlog.ast import Program
from repro.ndlog.parser import parse_program
from repro.engine.runtime import NetTrailsRuntime
from repro.engine.topology import Topology

SOURCE = """
materialize(link, infinity, infinity, keys(1, 2)).
materialize(request, infinity, infinity, keys(1, 2)).

dsr1 probe(@N, S, D, P) :- request(@S, D), link(@S, N, C),
    P := f_makeList(S, N).

dsr2 probe(@M, S, D, P2) :- probe(@N, S, D, P), link(@N, M, C),
    f_member(P, M) == 0, P2 := f_append(P, M).

dsr3 sourceRoute(@S, D, P) :- probe(@D, S, D, P).

dsr4 routeCount(@S, D, count<*>) :- sourceRoute(@S, D, P).
"""


def program(name: str = "dsr") -> Program:
    """The parsed DSR program."""
    return parse_program(SOURCE, name=name)


def setup(topology: Topology, provenance: bool = True, run: bool = True) -> NetTrailsRuntime:
    """Build a runtime executing DSR over *topology* (no requests issued yet)."""
    runtime = NetTrailsRuntime(program(), topology, provenance=provenance)
    runtime.seed_links(run=run)
    return runtime


def request_route(runtime: NetTrailsRuntime, source: str, destination: str, run: bool = True) -> None:
    """Issue an on-demand route request from *source* to *destination*."""
    runtime.insert("request", [source, destination])
    if run:
        runtime.run_to_quiescence()


def discovered_routes(
    runtime: NetTrailsRuntime, source: str, destination: str
) -> List[Tuple[str, ...]]:
    """All source routes discovered for (source, destination), sorted by length."""
    routes = [
        tuple(path)
        for (s, d, path) in runtime.state("sourceRoute")
        if s == source and d == destination
    ]
    return sorted(routes, key=lambda path: (len(path), path))


def reference_simple_paths(topology: Topology, source: str, destination: str) -> Set[Tuple[str, ...]]:
    """All simple paths from *source* to *destination* (the expected ``sourceRoute`` set)."""
    paths: Set[Tuple[str, ...]] = set()

    def explore(node: str, visited: Tuple[str, ...]) -> None:
        if node == destination:
            paths.add(visited)
            return
        for neighbor in topology.neighbors(node):
            if neighbor not in visited:
                explore(neighbor, visited + (neighbor,))

    explore(source, (source,))
    return paths
