"""Declarative network protocols shipped with the reproduction.

Each module exposes the NDlog source text (``SOURCE``), a ``program()``
constructor returning the parsed :class:`~repro.ndlog.ast.Program`, and a
``reference(topology)`` helper computing the protocol's expected final state
with a conventional (imperative) algorithm, which tests and benchmarks use as
ground truth.

Protocols included (the ones named in the paper's demonstration plan):

* :mod:`repro.protocols.mincost` — MINCOST, pair-wise minimal path costs;
* :mod:`repro.protocols.path_vector` — path-vector routing with loop avoidance;
* :mod:`repro.protocols.distance_vector` — distance-vector (hop count) routing;
* :mod:`repro.protocols.dsr` — dynamic source routing (on-demand route discovery);
* :mod:`repro.protocols.prefix_routing` — BGP-style prefix announce/withdraw
  with per-prefix (not all-pairs) state, the scale-profile workhorse.
"""

from repro.protocols import distance_vector, dsr, mincost, path_vector, prefix_routing
from repro.protocols.library import PROTOCOLS, protocol_names, protocol_program

__all__ = [
    "mincost",
    "path_vector",
    "distance_vector",
    "dsr",
    "prefix_routing",
    "PROTOCOLS",
    "protocol_names",
    "protocol_program",
]
