"""MINCOST: pair-wise minimal path costs.

This is the protocol used throughout the paper's figures (Figure 2 shows the
interactive exploration of its provenance, Figure 3 the running
demonstration).  It is the classic declarative-networking shortest-path
program: paths are explored hop by hop through the current best cost at the
next hop, and a ``min`` aggregate selects the minimal cost per
(source, destination) pair.

As in deployed distance-vector protocols, the recursion carries a cost bound
(``MAX_COST``, the analogue of RIP's "infinity"): without it, deleting the
last link towards a destination would trigger the classic count-to-infinity
behaviour during incremental deletion, with candidate costs creeping upwards
forever.  The bound caps that process, after which the provenance-driven
deletion removes every stale tuple.  Link costs are assumed to be >= 1, so
``MAX_COST`` also bounds path length.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.ndlog.ast import Program
from repro.ndlog.parser import parse_program
from repro.engine.runtime import NetTrailsRuntime
from repro.engine.topology import Topology

#: Upper bound on path costs explored by the recursion (RIP-style "infinity").
MAX_COST = 64


def source_with_bound(max_cost: float = MAX_COST) -> str:
    """The MINCOST NDlog source text with an explicit cost bound."""
    return f"""
materialize(link, infinity, infinity, keys(1, 2)).

mc1 path(@S, D, C) :- link(@S, D, C).

mc2 path(@S, D, C) :- link(@S, Z, C1), minCost(@Z, D, C2),
    S != D, Z != D, C := C1 + C2, C < {max_cost}.

mc3 minCost(@S, D, min<C>) :- path(@S, D, C).
"""


SOURCE = source_with_bound(MAX_COST)


def program(name: str = "mincost", max_cost: float = MAX_COST) -> Program:
    """The parsed MINCOST program (optionally with a custom cost bound)."""
    if max_cost == MAX_COST:
        return parse_program(SOURCE, name=name)
    return parse_program(source_with_bound(max_cost), name=name)


def setup(topology: Topology, provenance: bool = True, run: bool = True) -> NetTrailsRuntime:
    """Build a runtime executing MINCOST over *topology*, with links seeded."""
    runtime = NetTrailsRuntime(program(), topology, provenance=provenance)
    runtime.seed_links(run=run)
    return runtime


def reference(topology: Topology) -> Dict[Tuple[str, str], float]:
    """The expected ``minCost`` contents: all-pairs shortest path costs (Dijkstra)."""
    return topology.shortest_path_costs()


def check_against_reference(runtime: NetTrailsRuntime, topology: Topology) -> bool:
    """True when the distributed fixpoint matches the offline reference."""
    expected = reference(topology)
    actual = {(s, d): c for (s, d, c) in runtime.state("minCost")}
    return actual == expected
