"""Distance-vector routing (hop count with a TTL bound).

A compact distance-vector protocol: every node learns the minimal hop count
to every destination, propagating only its current best estimate to its
neighbours, with a hop-count bound playing the role of RIP's "infinity".
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.ndlog.ast import Program
from repro.ndlog.parser import parse_program
from repro.engine.runtime import NetTrailsRuntime
from repro.engine.topology import Topology

#: Hop-count bound (RIP uses 16 as "infinity").
MAX_HOPS = 16

SOURCE = f"""
materialize(link, infinity, infinity, keys(1, 2)).

dv1 hop(@S, D, H) :- link(@S, D, C), H := 1.

dv2 hop(@S, D, H) :- link(@S, Z, C), bestHop(@Z, D, H2),
    S != D, H := H2 + 1, H < {MAX_HOPS}.

dv3 bestHop(@S, D, min<H>) :- hop(@S, D, H).
"""


def program(name: str = "distance_vector") -> Program:
    """The parsed distance-vector program."""
    return parse_program(SOURCE, name=name)


def setup(topology: Topology, provenance: bool = True, run: bool = True) -> NetTrailsRuntime:
    """Build a runtime executing distance-vector routing over *topology*."""
    runtime = NetTrailsRuntime(program(), topology, provenance=provenance)
    runtime.seed_links(run=run)
    return runtime


def reference_hops(topology: Topology) -> Dict[Tuple[str, str], int]:
    """Expected ``bestHop`` contents: minimal hop counts (BFS per source)."""
    result: Dict[Tuple[str, str], int] = {}
    for source in topology.nodes:
        frontier = [source]
        distance = {source: 0}
        while frontier:
            next_frontier = []
            for node in frontier:
                for neighbor in topology.neighbors(node):
                    if neighbor not in distance:
                        distance[neighbor] = distance[node] + 1
                        next_frontier.append(neighbor)
            frontier = next_frontier
        for target, hops in distance.items():
            if target != source and hops < MAX_HOPS:
                result[(source, target)] = hops
    return result


def check_against_reference(runtime: NetTrailsRuntime, topology: Topology) -> bool:
    """True when the distributed fixpoint matches the BFS reference."""
    expected = reference_hops(topology)
    actual = {(s, d): h for (s, d, h) in runtime.state("bestHop")}
    return actual == expected
