"""Prefix routing: BGP-style announce/withdraw with bounded per-prefix state.

MINCOST and path-vector compute *all-pairs* routes, so their state grows
quadratically with the node count — fine for the paper's 12-node figures,
prohibitive for the 1000+-node AS-level scenarios the workload subsystem
drives.  This protocol models what actually scales in deployed inter-domain
routing: a small set of *prefixes* is announced at their origin ASes
(``prefix`` base tuples), announcements propagate hop by hop, and every node
selects its best route per prefix with a ``min`` aggregate.  State and
traffic are proportional to ``nodes x prefixes``, not ``nodes^2``, which is
what lets the scale profile converge thousands of nodes in seconds.

Like MINCOST, the recursion carries a cost bound (RIP-style "infinity") so
that withdrawing a prefix's last origin triggers only a bounded
count-to-infinity episode before the provenance-driven deletion clears the
stale routes.  The default bound is sized for the generated AS hierarchies
(diameter well under :data:`MAX_COST`); pass a larger bound through
:func:`source_with_bound` for deep topologies.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.ndlog.ast import Program
from repro.ndlog.parser import parse_program
from repro.engine.runtime import NetTrailsRuntime
from repro.engine.topology import Topology

#: Upper bound on announced route costs (RIP-style "infinity").  Generated
#: AS topologies (``isp_hierarchy``, ``power_law``) have small diameters, so
#: a tight bound keeps withdrawal cascades cheap at 1000+ nodes.
MAX_COST = 8


def source_with_bound(max_cost: float = MAX_COST) -> str:
    """The prefix-routing NDlog source text with an explicit cost bound."""
    return f"""
materialize(link, infinity, infinity, keys(1, 2)).
materialize(prefix, infinity, infinity, keys(1, 2)).

pr1 route(@N, P, C) :- prefix(@N, P, C).

pr2 route(@N, P, C) :- link(@N, Z, C1), best(@Z, P, C2),
    C := C1 + C2, C < {max_cost}.

pr3 best(@N, P, min<C>) :- route(@N, P, C).
"""


SOURCE = source_with_bound(MAX_COST)


def program(name: str = "prefix_routing", max_cost: float = MAX_COST) -> Program:
    """The parsed prefix-routing program (optionally with a custom bound)."""
    if max_cost == MAX_COST:
        return parse_program(SOURCE, name=name)
    return parse_program(source_with_bound(max_cost), name=name)


def setup(topology: Topology, provenance: bool = True, run: bool = True) -> NetTrailsRuntime:
    """Build a runtime executing prefix routing over *topology*, links seeded.

    No prefixes are announced yet; use :func:`announce` (or insert ``prefix``
    tuples directly) to originate routes.
    """
    runtime = NetTrailsRuntime(program(), topology, provenance=provenance)
    runtime.seed_links(run=run)
    return runtime


def announce(
    runtime: NetTrailsRuntime,
    origins: Sequence[Tuple[str, str]],
    run: bool = True,
) -> int:
    """Originate each ``(node, prefix)`` announcement; returns the count."""
    runtime.insert_batch("prefix", [[node, prefix, 0.0] for node, prefix in origins], run=run)
    return len(origins)


def withdraw(
    runtime: NetTrailsRuntime,
    origins: Sequence[Tuple[str, str]],
    run: bool = True,
) -> int:
    """Withdraw each ``(node, prefix)`` announcement; returns the count."""
    runtime.delete_batch("prefix", [[node, prefix, 0.0] for node, prefix in origins], run=run)
    return len(origins)


def reference(
    topology: Topology, origins: Sequence[Tuple[str, str]], max_cost: float = MAX_COST
) -> Dict[Tuple[str, str], float]:
    """Expected ``best`` contents: per-prefix shortest distance to any origin.

    Computed with a multi-source Dijkstra per prefix; distances at or above
    the cost bound are excluded, mirroring the recursion's ``C < bound``
    guard.
    """
    import heapq

    by_prefix: Dict[str, list] = {}
    for node, prefix in origins:
        by_prefix.setdefault(prefix, []).append(node)
    adjacency: Dict[str, list] = {node: [] for node in topology.nodes}
    for a, b, cost in topology.directed_edges():
        adjacency[a].append((b, cost))
    result: Dict[Tuple[str, str], float] = {}
    for prefix, sources in by_prefix.items():
        distances: Dict[str, float] = {source: 0.0 for source in sources}
        heap = [(0.0, source) for source in sorted(sources)]
        heapq.heapify(heap)
        while heap:
            distance, node = heapq.heappop(heap)
            if distance > distances.get(node, float("inf")):
                continue
            for neighbor, cost in adjacency[node]:
                candidate = distance + cost
                if candidate < distances.get(neighbor, float("inf")) and candidate < max_cost:
                    distances[neighbor] = candidate
                    heapq.heappush(heap, (candidate, neighbor))
        for node, distance in distances.items():
            result[(node, prefix)] = distance
    return result


def check_against_reference(
    runtime: NetTrailsRuntime,
    topology: Topology,
    origins: Sequence[Tuple[str, str]],
    max_cost: float = MAX_COST,
) -> bool:
    """True when the distributed fixpoint matches the offline reference.

    Pass the same *max_cost* the runtime's program was built with.
    """
    expected = reference(topology, origins, max_cost=max_cost)
    actual = {(node, prefix): cost for (node, prefix, cost) in runtime.state("best")}
    return actual == expected
