"""Protocol library: registry and conciseness metrics.

The paper (§2.1) repeats the declarative-networking claim that protocols can
be "specified and implemented in NDlog in orders of magnitude less lines of
code than imperative implementations".  This module exposes the protocol
registry plus helpers that count NDlog rules / lines, which the conciseness
benchmark (experiment E8 in DESIGN.md) compares against imperative baselines.
"""

from __future__ import annotations

from typing import List

from repro.ndlog.ast import Program
from repro.protocols import distance_vector, dsr, mincost, path_vector, prefix_routing

#: Protocol name -> module.  Every module exposes SOURCE / program() / setup().
PROTOCOLS = {
    "mincost": mincost,
    "path_vector": path_vector,
    "distance_vector": distance_vector,
    "dsr": dsr,
    "prefix_routing": prefix_routing,
}


def protocol_names() -> List[str]:
    return sorted(PROTOCOLS)


def protocol_program(name: str) -> Program:
    """Return the parsed program of a registered protocol."""
    if name not in PROTOCOLS:
        raise KeyError(f"unknown protocol {name!r}; known protocols: {protocol_names()}")
    return PROTOCOLS[name].program()


def ndlog_rule_count(name: str) -> int:
    """The number of NDlog rules in a protocol's specification."""
    return len(protocol_program(name).rules)


def ndlog_line_count(name: str) -> int:
    """Non-empty, non-comment source lines of a protocol's NDlog specification."""
    source = PROTOCOLS[name].SOURCE
    lines = [
        line
        for line in source.splitlines()
        if line.strip() and not line.strip().startswith(("//", "#", "%%"))
    ]
    return len(lines)
