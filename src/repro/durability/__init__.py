"""Durability subsystem: write-ahead log, crash recovery, service mode.

The paper's provenance engine is meant to run as long-lived infrastructure;
this package gives the reproduction that production shape:

* :mod:`repro.durability.wal` — the append-only, length-prefixed,
  content-hashed write-ahead log journalling every committed quiescence
  window (with the torn-tail scan/truncate rule);
* :mod:`repro.durability.checkpoint` — compaction of the WAL prefix into the
  :mod:`repro.logstore` snapshot format, plus the state digests recovery
  verifies;
* :mod:`repro.durability.recovery` — :class:`RecoveryManager`: repair the
  tail, rebuild a runtime by genesis replay (bit-identical, version counters
  included) or checkpoint bootstrap + tail replay (state-identical, O(tail));
* :mod:`repro.durability.service` — :class:`ServiceRuntime`: the durable,
  lock-arbitrated, query-serving wrapper the concurrent-client workloads
  drive.

Durable mode is switched on per-runtime via
``NetTrailsRuntime(durable_dir=...)`` / the ``NETTRAILS_DURABLE_DIR`` hook;
``tests/property/test_property_recovery.py`` is the crash-injection
differential oracle pinning the recovery guarantees.
"""

from repro.durability.checkpoint import (
    base_facts,
    build_topology,
    snapshot_digest,
    state_digest,
    topology_doc,
)
from repro.durability.recovery import (
    RECOVERY_MODES,
    RecoveryManager,
    RecoveryResult,
    replay_op,
)
from repro.durability.service import ServiceRuntime, latency_summary
from repro.durability.wal import (
    MAGIC,
    RECORD_BATCH,
    RECORD_CHECKPOINT,
    RECORD_INIT,
    ScanResult,
    WalRecord,
    WriteAheadLog,
    repair,
    scan,
    wal_path,
)

__all__ = [
    "MAGIC",
    "RECORD_BATCH",
    "RECORD_CHECKPOINT",
    "RECORD_INIT",
    "RECOVERY_MODES",
    "RecoveryManager",
    "RecoveryResult",
    "ScanResult",
    "ServiceRuntime",
    "WalRecord",
    "WriteAheadLog",
    "base_facts",
    "build_topology",
    "latency_summary",
    "repair",
    "replay_op",
    "scan",
    "snapshot_digest",
    "state_digest",
    "topology_doc",
    "wal_path",
]
