"""Checkpoint (compaction) helpers shared by the runtime and recovery.

A checkpoint compacts the WAL prefix into the existing :mod:`repro.logstore`
snapshot format: the full :class:`~repro.logstore.snapshot.Snapshot` is
written through :class:`~repro.logstore.store.LogStore` to
``<durable_dir>/snapshots/ckpt-NNNNNN.json``, and a ``checkpoint`` WAL
record pins two digests plus an embedded *bootstrap* (current base facts,
topology and link configuration).  Recovery in ``checkpoint`` mode rebuilds
the runtime from the bootstrap instead of replaying the whole history —
valid because the engine is confluent: protocol state and provenance tables
are a pure function of the current base facts and topology.

Two digests, two verification regimes:

* ``state_digest`` covers relations + ``prov`` + ``ruleExec`` tables only —
  the query-independent state.  It is what recovery verifies, because
  read-only provenance queries legitimately advance traffic counters and
  virtual time without being logged.
* ``snapshot_digest`` covers the whole snapshot JSON (time, traffic and the
  history-retaining ``tuples`` map included) and is recorded for the audit
  trail.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional

from repro.engine.store import BASE_DERIVATION
from repro.engine.topology import Topology
from repro.logstore.snapshot import Snapshot
from repro.logstore.store import LogStore

#: Subdirectory of the durable dir holding compacted snapshots.
SNAPSHOT_DIRNAME = "snapshots"


def snapshot_digest(snapshot: Snapshot) -> str:
    """sha256 over the full canonical snapshot JSON (audit-trail digest)."""
    return hashlib.sha256(snapshot.to_json().encode("utf-8")).hexdigest()


def state_digest(snapshot: Snapshot) -> str:
    """sha256 over the query-independent state a recovery must reproduce.

    Covers per-node relation contents and the ``prov`` / ``ruleExec``
    provenance tables; excludes virtual time, traffic counters and the
    never-pruned ``tuples`` map (all three are history-dependent in ways a
    checkpoint-bootstrapped twin legitimately differs in).
    """
    doc: Dict[str, object] = {}
    for node_id, node in sorted(snapshot.nodes.items()):
        doc[node_id] = {
            "relations": {
                relation: sorted((list(row) for row in rows), key=repr)
                for relation, rows in sorted(node.relations.items())
            },
            "prov": sorted((list(row) for row in node.prov), key=repr),
            "rule_execs": sorted((list(row) for row in node.rule_execs), key=repr),
        }
    return hashlib.sha256(
        json.dumps(doc, sort_keys=True).encode("utf-8")
    ).hexdigest()


def base_facts(runtime) -> Dict[str, List[List[object]]]:
    """Current base tuples per relation — the confluence bootstrap payload."""
    rows: Dict[str, List[List[object]]] = {}
    for node_id in runtime.node_ids():
        store = runtime.nodes[node_id].store
        for relation in store.relations():
            for fact in store.facts(relation):
                if BASE_DERIVATION in store.derivations(fact):
                    rows.setdefault(relation, []).append(list(fact.values))
    return {relation: sorted(rows[relation], key=repr) for relation in sorted(rows)}


def topology_doc(topology: Topology) -> Dict[str, object]:
    """A JSON-safe rendering of a topology (nodes, weighted edges, name)."""
    return {
        "name": topology.name,
        "nodes": sorted(topology.nodes),
        "edges": sorted([a, b, cost] for (a, b), cost in topology.edges.items()),
    }


def build_topology(doc: Dict[str, object]) -> Topology:
    """Rebuild a topology from :func:`topology_doc` output."""
    topology = Topology(name=str(doc.get("name", "recovered")))
    for node in doc.get("nodes", []):
        topology.add_node(node)
    for a, b, cost in doc.get("edges", []):
        topology.add_edge(a, b, cost)
    return topology


def snapshot_dir(durable_dir) -> Path:
    return Path(durable_dir) / SNAPSHOT_DIRNAME


def write_snapshot_file(durable_dir, batch: int, snapshot: Snapshot) -> Path:
    """Persist *snapshot* in the logstore format; returns the file path."""
    directory = snapshot_dir(durable_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"ckpt-{batch:06d}.json"
    store = LogStore()
    store.append(snapshot)
    store.save(path)
    return path


def prune_snapshot_files(durable_dir, keep: int) -> List[Path]:
    """Drop all but the newest *keep* checkpoint snapshot files.

    Pruning never endangers recovery: every ``checkpoint`` WAL record embeds
    its own bootstrap, so the snapshot files are an inspection convenience,
    not the recovery source of truth.  Returns the removed paths.
    """
    directory = snapshot_dir(durable_dir)
    if keep < 0 or not directory.is_dir():
        return []
    files = sorted(directory.glob("ckpt-*.json"))
    removed = []
    for path in files[: max(0, len(files) - keep)]:
        path.unlink()
        removed.append(path)
    return removed


def checkpoint_payload(
    runtime, snapshot: Snapshot, batch: int, file: Optional[Path]
) -> Dict[str, object]:
    """The ``checkpoint`` WAL record's data for a quiescent *runtime*."""
    link: Optional[Dict[str, object]] = None
    if runtime._link_relation is not None:
        link = {
            "relation": runtime._link_relation,
            "include_cost": runtime._link_include_cost,
            "symmetric": runtime._link_symmetric,
        }
    return {
        "batch": batch,
        "label": snapshot.label,
        "time": snapshot.time,
        "file": file.name if file is not None else None,
        "snapshot_digest": snapshot_digest(snapshot),
        "state_digest": state_digest(snapshot),
        "base": base_facts(runtime),
        "topology": topology_doc(runtime.topology),
        "link": link,
    }
