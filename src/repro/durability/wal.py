"""The durable write-ahead log: append-only, length-prefixed, content-hashed.

One WAL file (``wal.log``) per durable directory records the *logical input
history* of a :class:`~repro.engine.runtime.NetTrailsRuntime`: an ``init``
record pinning the program source, topology and runtime knobs, one ``batch``
record per committed quiescence window (the runtime-API-level mutations the
window absorbed), and ``checkpoint`` records marking compactions into the
:mod:`repro.logstore` snapshot format.  Replaying the history through the
deterministic engine reproduces the system — state, provenance tables and
version counters — bit for bit, which is what
:class:`repro.durability.recovery.RecoveryManager` does.

File layout::

    NTWAL1\\n                                  7-byte magic header
    [uint32 len][payload][sha256(payload)]     record 0
    [uint32 len][payload][sha256(payload)]     record 1
    ...

The payload is canonical JSON (``sort_keys``, compact separators) of
``{"seq": n, "type": t, "data": {...}}`` with ``seq`` strictly increasing
from 1.  The length prefix is big-endian; the 32-byte digest makes every
record self-verifying.

Torn-tail rule: :func:`scan` walks records until the first one that cannot
be verified (truncated prefix, truncated body, hash mismatch, non-JSON
payload, out-of-sequence ``seq``) and reports everything before it as the
valid prefix; :func:`repair` truncates the file to that prefix.  Because
:meth:`WriteAheadLog.append` flushes (and, with ``fsync=True``, fsyncs)
before returning, the commit point of a batch is its ``append`` — a crash
mid-append loses at most the record being written, never a committed one.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Union

from repro.errors import DurabilityError

#: First bytes of every WAL file; a file without it is not ours.
MAGIC = b"NTWAL1\n"

#: The WAL's filename inside a durable directory.
WAL_FILENAME = "wal.log"

#: Record types, in the only order they may first appear.
RECORD_INIT = "init"
RECORD_BATCH = "batch"
RECORD_CHECKPOINT = "checkpoint"
RECORD_TYPES = (RECORD_INIT, RECORD_BATCH, RECORD_CHECKPOINT)

#: Sanity bound on a single record; a length prefix beyond it is treated as
#: tail corruption rather than an instruction to allocate gigabytes.
MAX_RECORD_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")
_DIGEST_BYTES = 32  # sha256


def wal_path(directory: Union[str, Path]) -> Path:
    """The WAL file inside *directory* (which need not exist yet)."""
    return Path(directory) / WAL_FILENAME


@dataclass(frozen=True)
class WalRecord:
    """One verified record: its sequence number, type, payload and offset."""

    seq: int
    type: str
    data: Dict[str, object]
    offset: int = 0


@dataclass
class ScanResult:
    """What :func:`scan` found: the verified prefix and how the tail looked."""

    records: List[WalRecord]
    valid_bytes: int
    total_bytes: int
    torn: bool
    reason: str = ""


def _encode(seq: int, record_type: str, data: Dict[str, object]) -> bytes:
    try:
        payload = json.dumps(
            {"seq": seq, "type": record_type, "data": data},
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise DurabilityError(f"WAL record data is not JSON-serialisable: {exc}") from exc
    return _LENGTH.pack(len(payload)) + payload + hashlib.sha256(payload).digest()


def scan(path: Union[str, Path]) -> ScanResult:
    """Verify *path* record by record; stop at the first unverifiable byte.

    Returns every intact record plus whether (and why) the tail is torn.
    Raises :class:`~repro.errors.DurabilityError` only for files that are
    not WALs at all (missing, or magic header absent) — corruption *within*
    a WAL is a :class:`ScanResult`, not an exception, because the torn-tail
    rule makes it recoverable.
    """
    try:
        raw = Path(path).read_bytes()
    except OSError as exc:
        raise DurabilityError(f"cannot read WAL {path}: {exc}") from exc
    if len(raw) == 0:
        return ScanResult(records=[], valid_bytes=0, total_bytes=0, torn=False)
    if not raw.startswith(MAGIC):
        raise DurabilityError(
            f"{path} is not a NetTrails WAL (magic header {MAGIC!r} missing)"
        )

    records: List[WalRecord] = []
    offset = len(MAGIC)
    expected_seq = 1
    torn, reason = False, ""
    while offset < len(raw):
        if offset + _LENGTH.size > len(raw):
            torn, reason = True, "truncated length prefix"
            break
        (length,) = _LENGTH.unpack_from(raw, offset)
        if length > MAX_RECORD_BYTES:
            torn, reason = True, f"implausible record length {length}"
            break
        end = offset + _LENGTH.size + length + _DIGEST_BYTES
        if end > len(raw):
            torn, reason = True, "truncated record body"
            break
        payload = raw[offset + _LENGTH.size : offset + _LENGTH.size + length]
        digest = raw[end - _DIGEST_BYTES : end]
        if hashlib.sha256(payload).digest() != digest:
            torn, reason = True, "content hash mismatch"
            break
        try:
            doc = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            torn, reason = True, "payload is not JSON"
            break
        if (
            not isinstance(doc, dict)
            or doc.get("seq") != expected_seq
            or doc.get("type") not in RECORD_TYPES
            or not isinstance(doc.get("data"), dict)
        ):
            torn, reason = True, f"malformed record document at seq {expected_seq}"
            break
        records.append(
            WalRecord(seq=expected_seq, type=doc["type"], data=doc["data"], offset=offset)
        )
        expected_seq += 1
        offset = end
    return ScanResult(
        records=records,
        valid_bytes=offset,
        total_bytes=len(raw),
        torn=torn,
        reason=reason,
    )


def repair(path: Union[str, Path]) -> ScanResult:
    """Apply the torn-tail rule: truncate *path* to its verified prefix.

    Returns the pre-truncation :func:`scan` result, so callers can report
    how many bytes were discarded (``total_bytes - valid_bytes``).  A clean
    file is left untouched.
    """
    result = scan(path)
    if result.torn:
        with open(path, "r+b") as handle:
            handle.truncate(result.valid_bytes)
            handle.flush()
            os.fsync(handle.fileno())
    return result


class WriteAheadLog:
    """Appender over one durable directory's WAL file.

    Opening an existing file verifies it end to end and refuses a torn tail
    (run :func:`repair` — or the :class:`~repro.durability.recovery.RecoveryManager`,
    which repairs as its first step — before appending, so corruption is
    never silently built upon).  ``fsync=True`` (the default) fsyncs after
    every append — the real durability barrier; ``fsync=False`` still
    flushes to the OS, trading power-loss safety for speed (the E17 overhead
    benchmark measures exactly this knob).
    """

    def __init__(self, directory: Union[str, Path], fsync: bool = True):
        self.directory = Path(directory)
        self.path = wal_path(directory)
        self.fsync = bool(fsync)
        self.records_appended = 0
        self.fsyncs = 0
        self.bytes_appended = 0
        if self.path.exists() and self.path.stat().st_size > 0:
            result = scan(self.path)
            if result.torn:
                raise DurabilityError(
                    f"WAL {self.path} has a torn tail ({result.reason}); "
                    "repair() or RecoveryManager must run before appending"
                )
            self._next_seq = result.records[-1].seq + 1 if result.records else 1
            self._handle = open(self.path, "ab")
        else:
            self._next_seq = 1
            self._handle = open(self.path, "ab")
            self._handle.write(MAGIC)
            self._sync()

    @property
    def next_seq(self) -> int:
        return self._next_seq

    def _sync(self) -> None:
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
            self.fsyncs += 1

    def append(self, record_type: str, data: Dict[str, object]) -> WalRecord:
        """Append one record and flush it; returns the verified record."""
        if self._handle is None:
            raise DurabilityError(f"WAL {self.path} is closed")
        if record_type not in RECORD_TYPES:
            raise DurabilityError(
                f"unknown WAL record type {record_type!r}; known: {RECORD_TYPES}"
            )
        offset = self._handle.tell()
        blob = _encode(self._next_seq, record_type, data)
        self._handle.write(blob)
        self._sync()
        record = WalRecord(
            seq=self._next_seq, type=record_type, data=dict(data), offset=offset
        )
        self._next_seq += 1
        self.records_appended += 1
        self.bytes_appended += len(blob)
        return record

    def counters(self) -> Dict[str, int]:
        """Plain append/fsync/byte counters (the registry's ``wal.*`` view)."""
        return {
            "records_appended": self.records_appended,
            "fsyncs": self.fsyncs,
            "bytes_appended": self.bytes_appended,
        }

    def close(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()
