"""A long-lived, durable, query-serving wrapper around one runtime.

:class:`ServiceRuntime` is the production shape the ROADMAP's "durable
provenance service mode" calls for: one writer committing churn batches
through the write-ahead log, many concurrent clients issuing provenance
queries, periodic checkpoints compacting the log — and, after a crash,
:meth:`ServiceRuntime.recover` bringing the service back over the same
durable directory.

Concurrency model: a single reentrant lock serialises commits, queries and
checkpoints against the simulated runtime (the simulator is single-writer by
design — the *engine's* concurrency lives in its execution backends).  The
lock is exactly the arbitration a network server front-end would perform;
client-observed latency percentiles therefore include queueing, which is
what the E17 concurrent-client benchmark measures.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.errors import DurabilityError, EngineError
from repro.engine.runtime import NetTrailsRuntime
from repro.engine.topology import Topology
from repro.durability.recovery import RecoveryManager, RecoveryResult


def _resolve_source(program: str) -> str:
    """Accept NDlog source text or a registered protocol name."""
    if "\n" in program or ":-" in program or "(" in program:
        return program
    from repro.protocols.library import PROTOCOLS

    if program in PROTOCOLS:
        return PROTOCOLS[program].SOURCE
    raise EngineError(
        f"{program!r} is neither NDlog source nor a registered protocol name "
        f"(known protocols: {sorted(PROTOCOLS)})"
    )


def latency_summary(samples: Sequence[float]) -> Dict[str, float]:
    """count / mean / max plus nearest-rank p50, p95 and p99 percentiles.

    A shim over the shared :class:`repro.obs.registry.Histogram` percentile
    implementation: the histogram's bucket bounds are the observed values
    themselves, so the nearest-rank answers are *exact* (identical to the
    sorted-list computation this function used to hand-roll), and every
    latency surface in the repo — this one, the client harness, the
    observability registry — reports percentiles through one code path.
    """
    if not samples:
        return {"count": 0.0}
    from repro.obs.registry import Histogram

    values = [float(sample) for sample in samples]
    histogram = Histogram("latency_summary", buckets=tuple(sorted(set(values))))
    for value in values:
        histogram.observe(value)
    return histogram.summary()


class ServiceRuntime:
    """Serve queries and commit churn over one (optionally durable) runtime.

    ``program`` is NDlog source text or a registered protocol name (durable
    mode journals the source, so a parsed ``Program`` is deliberately not
    accepted here).  ``checkpoint_every=N`` compacts the WAL after every Nth
    committed batch; ``0`` disables automatic checkpoints.  Every other
    keyword argument is forwarded verbatim to
    :class:`~repro.engine.runtime.NetTrailsRuntime` — its class docstring
    holds the canonical knob and ``NETTRAILS_*`` environment-hook table
    (``backend=``/``backend_workers=`` included: a durable service under a
    concurrent backend journals and recovers identically, because the WAL
    records logical inputs only, never the execution backend).

    >>> from repro.engine import topology
    >>> with ServiceRuntime("mincost", topology.line(3)) as service:
    ...     _ = service.seed_links()
    ...     bool(service.runtime.state("minCost"))
    True
    """

    def __init__(
        self,
        program: str,
        topology: Topology,
        durable_dir: Optional[Union[str, Path]] = None,
        wal_fsync: bool = True,
        checkpoint_every: int = 0,
        **runtime_kwargs: object,
    ):
        if checkpoint_every < 0:
            raise EngineError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}"
            )
        self.checkpoint_every = checkpoint_every
        self._lock = threading.RLock()
        self._engine = None
        self._closed = False
        self.commit_latencies: List[float] = []
        self.query_latencies: List[float] = []
        self.checkpoints_taken = 0
        self.last_recovery: Optional[RecoveryResult] = None
        #: Flight-recorder dump captured by :meth:`crash` (post-mortem aid);
        #: ``None`` until a crash happens or while observability is off.
        self.last_flight_record: Optional[Dict[str, object]] = None
        self.runtime = NetTrailsRuntime(
            _resolve_source(program),
            topology,
            durable_dir=durable_dir,
            wal_fsync=wal_fsync,
            **runtime_kwargs,
        )
        self._register_service_view()

    @classmethod
    def recover(
        cls,
        durable_dir: Union[str, Path],
        mode: str = "checkpoint",
        wal_fsync: bool = True,
        checkpoint_every: int = 0,
        verify: bool = True,
        **overrides: object,
    ) -> "ServiceRuntime":
        """Bring a crashed service back over its durable directory.

        The recovery result (mode, batches replayed, truncated bytes,
        seconds) is exposed as ``service.last_recovery``.
        """
        result = RecoveryManager(durable_dir).recover(
            mode=mode, verify=verify, attach=True, wal_fsync=wal_fsync, **overrides
        )
        service = cls.__new__(cls)
        service.checkpoint_every = checkpoint_every
        service._lock = threading.RLock()
        service._engine = None
        service._closed = False
        service.commit_latencies = []
        service.query_latencies = []
        service.checkpoints_taken = 0
        service.last_recovery = result
        service.last_flight_record = None
        service.runtime = result.runtime
        service._register_service_view()
        return service

    def _register_service_view(self) -> None:
        """Expose the service-level counters on the runtime's metrics registry."""
        obs = self.runtime.obs
        if obs is None:
            return

        def view() -> Dict[str, float]:
            return {
                "commits": float(len(self.commit_latencies)),
                "queries": float(len(self.query_latencies)),
                "checkpoints": float(self.checkpoints_taken),
            }

        obs.registry.register_view("service", view)

    # -- lifecycle ------------------------------------------------------------------

    @property
    def durable(self) -> bool:
        return self.runtime.durable_dir is not None

    @property
    def committed_batches(self) -> int:
        return self.runtime._committed_batches

    def _require_open(self) -> None:
        if self._closed:
            raise DurabilityError("this ServiceRuntime is closed (or crashed)")

    def close(self) -> None:
        """Clean shutdown: release workers and the WAL handle; idempotent."""
        with self._lock:
            if not self._closed:
                self._closed = True
                self.runtime.close()

    def crash(self) -> None:
        """Crash injection: abandon the runtime *without* any final commit.

        Pending (uncommitted) mutations are lost, exactly as in a process
        kill; everything already appended to the WAL survives.  Worker
        threads are still released so tests do not leak them.
        """
        with self._lock:
            if not self._closed:
                self._closed = True
                obs = self.runtime.obs
                if obs is not None:
                    obs.record_event("crash", batches=self.committed_batches)
                    self.last_flight_record = obs.dump()
                self.runtime._pending_ops = []
                self.runtime.close()

    def __enter__(self) -> "ServiceRuntime":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # -- write path -----------------------------------------------------------------

    def seed_links(self, **kwargs: object) -> int:
        with self._lock:
            self._require_open()
            kwargs.setdefault("run", True)
            started = time.perf_counter()
            seeded = self.runtime.seed_links(**kwargs)
            self.commit_latencies.append(time.perf_counter() - started)
            self._maybe_checkpoint()
            return seeded

    def commit(self, ops: Sequence[object]) -> Dict[str, object]:
        """Apply one batch of :class:`~repro.workloads.churn.ChurnOp` mutations
        and run the window to quiescence (one WAL ``batch`` record)."""
        from repro.workloads.churn import apply_churn_op

        with self._lock:
            self._require_open()
            started = time.perf_counter()
            obs = self.runtime.obs
            span = previous = None
            if obs is not None and obs.tracing:
                span = obs.tracer.start_span("service.commit")
                previous = obs.tracer.set_current(span.context())
            try:
                for op in ops:
                    apply_churn_op(self.runtime, op)
                events = self.runtime.run_to_quiescence()
            finally:
                if span is not None:
                    obs.tracer.set_current(previous)
            if span is not None:
                span.finish(ops=len(ops), events=events)
            elapsed = time.perf_counter() - started
            self.commit_latencies.append(elapsed)
            self._maybe_checkpoint()
            return {
                "ops": len(ops),
                "events": events,
                "batch": self.committed_batches,
                "seconds": elapsed,
            }

    def _maybe_checkpoint(self) -> None:
        if (
            self.durable
            and self.checkpoint_every
            and self.committed_batches > 0
            and self.committed_batches % self.checkpoint_every == 0
        ):
            self.checkpoint()

    def checkpoint(self, label: str = "", keep: int = 3):
        with self._lock:
            self._require_open()
            path = self.runtime.checkpoint(label=label, keep=keep)
            self.checkpoints_taken += 1
            return path

    # -- read path ------------------------------------------------------------------

    def _query_engine(self):
        if self._engine is None:
            from repro.core.query import DistributedQueryEngine

            self._engine = DistributedQueryEngine(self.runtime)
        return self._engine

    def state(self, relation: str):
        with self._lock:
            self._require_open()
            return self.runtime.state(relation)

    def query(self, relation: str, values: Sequence[object], mode: str = "lineage", **kwargs):
        """One provenance query, serialised against commits; records latency."""
        with self._lock:
            self._require_open()
            started = time.perf_counter()
            result = self._query_engine().query(relation, list(values), mode=mode, **kwargs)
            self.query_latencies.append(time.perf_counter() - started)
            return result

    # -- metrics --------------------------------------------------------------------

    def latency_metrics(self) -> Dict[str, float]:
        """The ``MetricsReport.latency`` payload: query p50/p95/p99 + commit mean."""
        metrics: Dict[str, float] = {}
        for prefix, samples in (
            ("query", self.query_latencies),
            ("commit", self.commit_latencies),
        ):
            for key, value in latency_summary(samples).items():
                metrics[f"{prefix}_{key}"] = round(value, 6)
        return metrics
