"""Crash recovery: torn-tail repair, then snapshot-load + WAL-tail replay.

:class:`RecoveryManager` restores a :class:`~repro.engine.runtime.NetTrailsRuntime`
from a durable directory written by a crashed (or cleanly closed) durable
runtime.  Two modes, two guarantees:

* ``genesis`` — rebuild a fresh runtime from the ``init`` record and replay
  *every* committed batch record through the deterministic engine.  Because
  evaluator firing identifiers and per-VID version counters are functions of
  the logical input history, this reproduces the crashed runtime **bit for
  bit**: store snapshots, provenance tables, per-partition versions, per-VID
  reachability versions and query answers.
* ``checkpoint`` — bootstrap from the newest ``checkpoint`` record's
  embedded base facts + topology (valid by confluence: protocol state and
  provenance tables are a pure function of current base facts), verify the
  recorded state digest, then replay only the WAL tail past the checkpoint.
  State, provenance and answers are bit-identical; version *counters* are
  not (the bootstrap compresses history into one batch), which is the
  documented trade for O(tail) instead of O(history) recovery time.  With no
  checkpoint on record the mode falls back to genesis.

Recovery always repairs the torn tail first (hash-verified scan, truncate at
the first unverifiable byte) and, with ``attach=True``, leaves the recovered
runtime appending to the repaired WAL — crash, recover, keep serving.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.errors import DurabilityError
from repro.engine.runtime import NetTrailsRuntime
from repro.durability import checkpoint as checkpoint_mod
from repro.durability.wal import (
    RECORD_BATCH,
    RECORD_CHECKPOINT,
    RECORD_INIT,
    WalRecord,
    WriteAheadLog,
    repair,
    wal_path,
)

RECOVERY_MODES = ("genesis", "checkpoint")


@dataclass
class RecoveryResult:
    """What one recovery did, with the timings E17 reports."""

    runtime: NetTrailsRuntime
    mode: str
    batches_replayed: int = 0
    ops_replayed: int = 0
    records: int = 0
    truncated_bytes: int = 0
    torn: bool = False
    torn_reason: str = ""
    checkpoint_batch: Optional[int] = None
    checkpoints_verified: int = 0
    seconds: float = 0.0
    metrics: Dict[str, float] = field(default_factory=dict)

    def recovery_metrics(self) -> Dict[str, float]:
        """The ``MetricsReport.recovery`` payload for this recovery."""
        payload: Dict[str, float] = {
            f"{self.mode}_seconds": round(self.seconds, 6),
            f"{self.mode}_batches_replayed": float(self.batches_replayed),
            f"{self.mode}_ops_replayed": float(self.ops_replayed),
            f"{self.mode}_truncated_bytes": float(self.truncated_bytes),
        }
        payload.update(self.metrics)
        return payload


def replay_op(runtime: NetTrailsRuntime, op: List[object]) -> None:
    """Apply one journalled logical op to *runtime* (no simulator run)."""
    kind = op[0]
    if kind == "insert":
        runtime.insert(op[1], op[2])
    elif kind == "delete":
        runtime.delete(op[1], op[2])
    elif kind == "insert_batch":
        runtime.insert_batch(op[1], op[2])
    elif kind == "delete_batch":
        runtime.delete_batch(op[1], op[2])
    elif kind == "add_link":
        runtime.add_link(op[1], op[2], op[3])
    elif kind == "remove_link":
        runtime.remove_link(op[1], op[2])
    elif kind == "seed_links":
        runtime.seed_links(relation=op[1], include_cost=op[2], symmetric=op[3])
    else:
        raise DurabilityError(f"unknown journalled op kind {kind!r}")


class RecoveryManager:
    """Restore a runtime from a durable directory's WAL (repairing its tail)."""

    def __init__(self, durable_dir: Union[str, Path]):
        self.durable_dir = Path(durable_dir)
        if not self.durable_dir.is_dir():
            raise DurabilityError(f"durable_dir {durable_dir!r} is not a directory")
        self.path = wal_path(self.durable_dir)
        if not self.path.exists():
            raise DurabilityError(f"no WAL at {self.path}; nothing to recover")

    # -- entry point ----------------------------------------------------------------

    def recover(
        self,
        mode: str = "genesis",
        verify: bool = True,
        attach: bool = True,
        wal_fsync: bool = True,
        **overrides: object,
    ) -> RecoveryResult:
        """Repair the WAL tail, rebuild a runtime, replay, optionally re-attach.

        ``verify=True`` checks the recorded state digest at every checkpoint
        crossed; ``attach=True`` leaves the runtime journalling to the
        repaired WAL (``wal_fsync`` sets its barrier mode).  Keyword
        *overrides* replace recorded construction knobs (e.g. ``backend=`` —
        never recorded — or ``use_interval_index=``); state equality across
        such overrides is exactly the engine's determinism contract.
        """
        if mode not in RECOVERY_MODES:
            raise DurabilityError(
                f"unknown recovery mode {mode!r}; choose one of {RECOVERY_MODES}"
            )
        started = time.perf_counter()
        scan_result = repair(self.path)
        records = scan_result.records
        if not records:
            raise DurabilityError(
                f"WAL {self.path} holds no intact records; nothing to recover"
            )
        if records[0].type != RECORD_INIT:
            raise DurabilityError(
                f"WAL {self.path} does not start with an init record "
                f"(found {records[0].type!r})"
            )
        init = records[0].data
        checkpoints = [r for r in records if r.type == RECORD_CHECKPOINT]

        effective_mode = mode
        if mode == "checkpoint" and not checkpoints:
            effective_mode = "genesis"

        if effective_mode == "genesis":
            result = self._recover_genesis(init, records, verify, **overrides)
        else:
            result = self._recover_checkpoint(
                init, records, checkpoints[-1], verify, **overrides
            )
        result.records = len(records)
        result.torn = scan_result.torn
        result.torn_reason = scan_result.reason
        result.truncated_bytes = scan_result.total_bytes - scan_result.valid_bytes
        if attach:
            last_batch = max(
                (r.data["batch"] for r in records if r.type == RECORD_BATCH), default=0
            )
            wal = WriteAheadLog(self.durable_dir, fsync=wal_fsync)
            result.runtime._attach_wal(wal, str(self.durable_dir), last_batch)
        result.seconds = time.perf_counter() - started
        return result

    # -- modes ----------------------------------------------------------------------

    def _build_runtime(
        self, init: Dict[str, object], topology_doc, **overrides: object
    ) -> NetTrailsRuntime:
        kwargs: Dict[str, object] = dict(init["knobs"])
        kwargs.update(overrides)
        return NetTrailsRuntime(
            str(init["source"]),
            checkpoint_mod.build_topology(topology_doc),
            program_name=str(init.get("program_name", "program")),
            **kwargs,
        )

    def _replay_tail(
        self,
        runtime: NetTrailsRuntime,
        records: List[WalRecord],
        after_seq: int,
        verify: bool,
        result: RecoveryResult,
    ) -> None:
        from repro.logstore.snapshot import take_snapshot

        for record in records:
            if record.seq <= after_seq:
                continue
            if record.type == RECORD_BATCH:
                for op in record.data["ops"]:
                    replay_op(runtime, op)
                runtime.run_to_quiescence()
                result.batches_replayed += 1
                result.ops_replayed += len(record.data["ops"])
            elif record.type == RECORD_CHECKPOINT and verify:
                snapshot = take_snapshot(runtime, label=str(record.data["label"]))
                digest = checkpoint_mod.state_digest(snapshot)
                if digest != record.data["state_digest"]:
                    raise DurabilityError(
                        f"replay diverged at checkpoint batch "
                        f"{record.data['batch']}: state digest {digest} != "
                        f"recorded {record.data['state_digest']}"
                    )
                result.checkpoints_verified += 1

    def _recover_genesis(
        self,
        init: Dict[str, object],
        records: List[WalRecord],
        verify: bool,
        **overrides: object,
    ) -> RecoveryResult:
        runtime = self._build_runtime(init, init["topology"], **overrides)
        result = RecoveryResult(runtime=runtime, mode="genesis")
        self._replay_tail(runtime, records, records[0].seq, verify, result)
        return result

    def _recover_checkpoint(
        self,
        init: Dict[str, object],
        records: List[WalRecord],
        checkpoint: WalRecord,
        verify: bool,
        **overrides: object,
    ) -> RecoveryResult:
        from repro.logstore.snapshot import take_snapshot

        data = checkpoint.data
        runtime = self._build_runtime(init, data["topology"], **overrides)
        result = RecoveryResult(
            runtime=runtime, mode="checkpoint", checkpoint_batch=int(data["batch"])
        )
        link = data.get("link")
        if link:
            runtime._link_relation = str(link["relation"])
            runtime._link_include_cost = bool(link["include_cost"])
            runtime._link_symmetric = bool(link["symmetric"])
        for relation, rows in sorted(dict(data["base"]).items()):
            runtime.insert_batch(relation, rows)
        runtime.run_to_quiescence()
        if verify:
            snapshot = take_snapshot(runtime, label=str(data["label"]))
            digest = checkpoint_mod.state_digest(snapshot)
            if digest != data["state_digest"]:
                raise DurabilityError(
                    f"checkpoint bootstrap diverged at batch {data['batch']}: "
                    f"state digest {digest} != recorded {data['state_digest']}"
                )
            result.checkpoints_verified += 1
        self._replay_tail(runtime, records, checkpoint.seq, verify, result)
        return result
