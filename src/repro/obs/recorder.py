"""Bounded ring-buffer flight recorder for post-mortem event history.

The recorder keeps the last ``capacity`` noteworthy engine events — drains,
checkpoints, worker errors, cache evictions, interval-index relabels — so
that when something goes wrong (:class:`~repro.errors.EngineError` raised
from the process backend, :meth:`ServiceRuntime.crash`), the recent history
is available without having had logging enabled.  Recording is a lock-free
bounded-deque append (``deque.append`` and ``itertools.count`` are both
atomic in CPython): cheap enough to leave on for every event class while
observability is enabled, and entirely absent when it is not.

Events are ``(seq, monotonic_ts, kind, fields)``; the sequence number is
process-global and survives ring overwrites, so a dump reports exactly how
many events were dropped (the newest retained seq *is* the total recorded).

>>> recorder = FlightRecorder(capacity=2)
>>> recorder.record("drain", node="n1", updates=3)
>>> recorder.record("checkpoint", window=7)
>>> recorder.record("worker_error", pid=123)
>>> dump = recorder.dump()
>>> (dump["recorded"], dump["dropped"], [e["kind"] for e in dump["events"]])
(3, 1, ['checkpoint', 'worker_error'])
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

_Event = Tuple[int, float, str, Dict[str, object]]

#: Default ring capacity; large enough to cover several quiescence windows
#: of drain events, small enough that a dump stays readable.
DEFAULT_CAPACITY = 512


class FlightRecorder:
    """The last ``capacity`` events, with global sequence numbers."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError(f"flight recorder capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._events: Deque[_Event] = deque(maxlen=capacity)
        self._seq = itertools.count(1)

    def record(self, kind: str, **fields: object) -> None:
        """Append one event; constant-time, overwrites the oldest when full.

        Lock-free: this runs once per node drain on the engine's hot path,
        and both the seq mint and the bounded append are atomic in CPython.
        Readers run coordinator-side after quiescence (or post-mortem), so
        they never race a recording drain.
        """
        self._events.append((next(self._seq), time.perf_counter(), kind, fields))

    def _retained(self) -> List[_Event]:
        return list(self._events)

    def events(self, kind: Optional[str] = None) -> List[Dict[str, object]]:
        """The retained events oldest-first, optionally filtered by kind."""
        retained = self._retained()
        out = []
        for seq, timestamp, event_kind, fields in retained:
            if kind is not None and event_kind != kind:
                continue
            out.append({"seq": seq, "ts": timestamp, "kind": event_kind, **fields})
        return out

    def dump(self) -> Dict[str, object]:
        """The post-mortem payload: retained events plus drop accounting."""
        retained = self._retained()
        recorded = retained[-1][0] if retained else 0
        return {
            "capacity": self.capacity,
            "recorded": recorded,
            "dropped": recorded - len(retained),
            "events": [
                {"seq": seq, "ts": timestamp, "kind": event_kind, **fields}
                for seq, timestamp, event_kind, fields in retained
            ],
        }

    def __len__(self) -> int:
        return len(self._events)
