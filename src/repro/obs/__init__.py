"""Unified observability: metrics registry, distributed tracing, flight recorder.

One :class:`Observability` object bundles the three concerns and is what
``NetTrailsRuntime(observability=True)`` (or ``NETTRAILS_OBSERVABILITY=1``)
threads through every layer — nodes, backends, the query engine, the WAL
and the durable service.  When the knob is off the runtime carries ``None``
and every instrumentation site is a single ``obs is None`` branch, so the
subsystem costs nothing while disabled (benchmark E20 gates this) and is
invisible to every determinism contract while enabled.

Exporters live in :mod:`repro.obs.export`:
Prometheus text, JSON snapshots, and Chrome trace-event timelines.

>>> obs = Observability()
>>> obs.registry.counter("query.issued").inc()
>>> obs.recorder.record("checkpoint", window=1)
>>> span = obs.tracer.start_span("query", trace_id="query1")
>>> span.finish(messages=4)
>>> sorted(obs.dump())
['flight_recorder', 'metrics', 'traces']
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.errors import EngineError
from repro.obs.recorder import DEFAULT_CAPACITY, FlightRecorder
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracing import Span, SpanRecord, TraceContext, Tracer

__all__ = [
    "Observability",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "FlightRecorder",
    "Tracer",
    "Span",
    "SpanRecord",
    "TraceContext",
    "resolve_observability",
]


class Observability:
    """The bundle a runtime carries when observability is enabled.

    ``tracing`` can be switched off independently (metrics and the flight
    recorder stay on) for long-running services where retaining every span
    would be unbounded; the runtime default keeps it on.
    """

    def __init__(
        self,
        tracing: bool = True,
        recorder_capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        self.registry = MetricsRegistry()
        self.tracer = Tracer()
        self.recorder = FlightRecorder(capacity=recorder_capacity)
        self.tracing = bool(tracing)

    def record_event(self, kind: str, **fields: object) -> None:
        """Shortcut to the flight recorder."""
        self.recorder.record(kind, **fields)

    def dump(self) -> Dict[str, object]:
        """Post-mortem payload: metrics, trace count, recent events."""
        return {
            "metrics": dict(self.registry.collect()),
            "traces": len(self.tracer.trace_ids()),
            "flight_recorder": self.recorder.dump(),
        }


def resolve_observability(
    observability: Union[None, bool, Observability],
    default: bool,
) -> Optional[Observability]:
    """Normalise the runtime knob: ``None`` defers to *default* (the env
    hook), ``False`` disables, ``True`` builds a fresh bundle, and an
    existing :class:`Observability` is adopted as-is (letting several
    runtimes share one registry)."""
    if observability is None:
        observability = default
    if observability is False:
        return None
    if observability is True:
        return Observability()
    if isinstance(observability, Observability):
        return observability
    raise EngineError(
        f"observability must be None, a bool, or an Observability instance, "
        f"got {observability!r}"
    )
