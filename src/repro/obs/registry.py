"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

The registry unifies the ad-hoc counter surfaces that accreted across the
engine (query cache, interval index, vid-version pruning, process-backend
transport, WAL appends, backend wave occupancy, evaluator firing counts)
without breaking their existing dict-returning APIs.  Two mechanisms:

* **Views** — pull-based adapters over existing counter dicts.  A view is a
  zero-argument callable returning a mapping; at :meth:`MetricsRegistry.collect`
  time its entries are renamed into the unified ``subsystem.metric`` scheme.
  Views cost *nothing* on the hot path: the instrumented code keeps mutating
  its plain ints, and the registry only reads them when someone asks.
* **Instruments** — push-style :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` objects with labeled children for *new* measurements
  (per-mode query latency, WAL fsync stalls, wave occupancy).  Instruments
  are lock-protected so concurrent backends may record from worker threads.

Everything here is observational only: nothing in this module participates
in the engine's determinism contract, and the whole subsystem is absent
unless ``NetTrailsRuntime(observability=True)`` (or
``NETTRAILS_OBSERVABILITY=1``) turns it on.

>>> registry = MetricsRegistry()
>>> registry.counter("query.issued").inc()
>>> registry.register_view("cache", lambda: {"hits": 3, "misses": 1})
>>> collected = registry.collect()
>>> (collected["cache.hits"], collected["query.issued"])
(3, 1.0)
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.errors import EngineError

#: Default histogram bucket upper bounds, tuned for operation latencies in
#: seconds (100µs .. 10s).  The overflow bucket (+Inf) is implicit.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_LabelKey = Tuple[Tuple[str, str], ...]


def _series_name(name: str, labels: _LabelKey) -> str:
    if not labels:
        return name
    rendered = ",".join(f'{key}="{value}"' for key, value in labels)
    return f"{name}{{{rendered}}}"


class _Instrument:
    """Shared machinery: naming, labeled children, a mutation lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.label_values: _LabelKey = ()
        self._lock = threading.Lock()
        self._children: "OrderedDict[_LabelKey, _Instrument]" = OrderedDict()

    def _new_child(self) -> "_Instrument":
        return type(self)(self.name, self.help)

    def labels(self, **labelset: object) -> "_Instrument":
        """The child instrument for one label combination (created on first use)."""
        key: _LabelKey = tuple(sorted((k, str(v)) for k, v in labelset.items()))
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._new_child()
                child.label_values = key
                self._children[key] = child
            return child

    def children(self) -> List["_Instrument"]:
        with self._lock:
            return list(self._children.values())

    def series(self) -> str:
        return _series_name(self.name, self.label_values)

    def collect_into(self, out: "OrderedDict[str, object]") -> None:
        raise NotImplementedError


class Counter(_Instrument):
    """A monotonically increasing count (events, messages, bytes)."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise EngineError(f"counter {self.name!r} cannot decrease (inc({amount}))")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def collect_into(self, out: "OrderedDict[str, object]") -> None:
        out[self.series()] = self._value
        for child in self.children():
            child.collect_into(out)


class Gauge(_Instrument):
    """A value that can go up and down (live entries, queue depth)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    def collect_into(self, out: "OrderedDict[str, object]") -> None:
        out[self.series()] = self._value
        for child in self.children():
            child.collect_into(out)


class Histogram(_Instrument):
    """A fixed-bucket histogram with exact count/sum/extremes.

    Percentiles are nearest-rank over the bucket boundaries: the reported
    value is the upper bound of the bucket containing the rank, clamped to
    the observed maximum (so the overflow bucket reports the true max and
    percentile estimates never exceed an observed sample).  This is the
    shared percentile implementation behind
    :func:`repro.durability.service.latency_summary` and the client-harness
    latency breakdowns.

    >>> h = Histogram("demo", buckets=(0.001, 0.01, 0.1, 1.0))
    >>> for v in (0.0005, 0.002, 0.003, 0.02, 0.5):
    ...     h.observe(v)
    >>> (h.count, round(h.sum, 4), h.percentile(0.5), h.percentile(0.99))
    (5, 0.5255, 0.01, 0.5)
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        if not buckets or list(buckets) != sorted(buckets):
            raise EngineError(f"histogram {name!r} buckets must be a sorted non-empty sequence")
        self.buckets: Tuple[float, ...] = tuple(float(b) for b in buckets)
        self._counts = [0] * (len(self.buckets) + 1)  # +1: overflow (+Inf)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def _new_child(self) -> "Histogram":
        return Histogram(self.name, self.help, self.buckets)

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[index] += 1
                    break
            else:
                self._counts[-1] += 1

    def bucket_counts(self) -> List[int]:
        """Per-bucket observation counts (last entry is the +Inf overflow)."""
        with self._lock:
            return list(self._counts)

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile estimate, ``p`` in (0, 1]."""
        if not 0.0 < p <= 1.0:
            raise EngineError(f"percentile fraction must be in (0, 1], got {p}")
        with self._lock:
            if self.count == 0:
                return 0.0
            rank = max(1, math.ceil(p * self.count))
            cumulative = 0
            for bound, bucket_count in zip(self.buckets, self._counts):
                cumulative += bucket_count
                if cumulative >= rank:
                    return min(bound, self.max)
            return self.max

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def summary(self) -> Dict[str, float]:
        """The legacy ``latency_summary`` key shape: count/mean/max/p50/p95/p99."""
        with self._lock:
            count = self.count
            mean = self.sum / count if count else 0.0
            maximum = self.max if count else 0.0
        return {
            "count": float(count),
            "mean": mean,
            "max": maximum,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }

    def collect_into(self, out: "OrderedDict[str, object]") -> None:
        base = self.series()
        out[f"{base}.count"] = self.count
        out[f"{base}.sum"] = self.sum
        out[f"{base}.p50"] = self.percentile(0.50)
        out[f"{base}.p95"] = self.percentile(0.95)
        out[f"{base}.p99"] = self.percentile(0.99)
        for child in self.children():
            child.collect_into(out)


class MetricsRegistry:
    """The process-wide instrument and view catalogue.

    Instruments are get-or-create by name (re-requesting an existing name
    with the same type returns the same object; a type clash raises).
    Views are keyed by subsystem name and the *last registration wins* —
    rebuilding a query engine simply repoints the ``cache`` view at the new
    engine's counters.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: "OrderedDict[str, _Instrument]" = OrderedDict()
        self._views: Dict[str, Callable[[], Mapping[str, object]]] = {}

    def _instrument(self, cls: type, name: str, help: str, **kwargs: object) -> _Instrument:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise EngineError(
                        f"metric {name!r} already registered as {type(existing).__name__}, "
                        f"not {cls.__name__}"
                    )
                return existing
            instrument = cls(name, help, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        instrument = self._instrument(Counter, name, help)
        assert isinstance(instrument, Counter)
        return instrument

    def gauge(self, name: str, help: str = "") -> Gauge:
        instrument = self._instrument(Gauge, name, help)
        assert isinstance(instrument, Gauge)
        return instrument

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        instrument = self._instrument(Histogram, name, help, buckets=buckets)
        assert isinstance(instrument, Histogram)
        return instrument

    def register_view(self, subsystem: str, view: Callable[[], Mapping[str, object]]) -> None:
        """Adopt an existing counter surface under ``subsystem.*`` names."""
        with self._lock:
            self._views[subsystem] = view

    def instruments(self) -> Iterator[_Instrument]:
        with self._lock:
            return iter(list(self._instruments.values()))

    def view_values(self) -> "OrderedDict[str, object]":
        """Every view's entries, renamed to ``subsystem.metric``."""
        with self._lock:
            views = sorted(self._views.items())
        out: "OrderedDict[str, object]" = OrderedDict()
        for subsystem, view in views:
            for key, value in view().items():
                out[f"{subsystem}.{key}"] = value
        return out

    def collect(self) -> "OrderedDict[str, object]":
        """One flat snapshot of every view entry and instrument series."""
        out = self.view_values()
        for instrument in self.instruments():
            instrument.collect_into(out)
        return out

    def get(self, name: str) -> Optional[_Instrument]:
        with self._lock:
            return self._instruments.get(name)
