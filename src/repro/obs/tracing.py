"""Per-query distributed trace spans, assembled into trees on the coordinator.

A *span* is one timed unit of work — an engine-level query, a traversal
frame on some node, an interval-index partition wave, a node drain, a
service commit — attributed to a trace (``trace_id``, normally the query
id) and optionally to a parent span.  Spans carry the attributes the
ISSUE's adaptive-execution work needs: node/partition, wave/round and
message counts, plus monotonic start/end timestamps
(:func:`time.perf_counter`, never wall-clock).

Trace *context* — the ``(trace_id, span_id)`` pair — propagates two ways:

* **In-band**, inside :class:`~repro.core.query.QueryRequest` and
  :class:`~repro.core.query.IntervalRequest` envelopes (a ``trace`` field
  that is omitted from their reprs when ``None``, so wire-byte accounting
  is untouched while tracing is off).
* **Across the process-backend pipe**, as ``("spans", records)`` entries in
  the drain trace that :class:`~repro.engine.procpool.TraceCodec` ships
  home; :meth:`Tracer.absorb` rebuilds coordinator-side spans from the
  primitive records, preserving parent ids and node attribution.

The tracer never participates in the determinism contract: span ids, span
counts and timings vary across backends and are excluded from every
bit-identity surface.

>>> tracer = Tracer()
>>> root = tracer.start_span("query", trace_id="query1", node="n0")
>>> child = tracer.start_span("frame", parent=root.context(), node="n1")
>>> child.finish(messages=2)
>>> root.finish(messages=5)
>>> tree = tracer.span_tree("query1")
>>> (tree["name"], [c["name"] for c in tree["children"]])
('query', ['frame'])
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import EngineError

#: The primitive shape of one worker-exported span record (see
#: :meth:`Span.to_record` / :meth:`Tracer.absorb`): every element is a
#: plain string/float/tuple so the record pickles compactly and survives
#: the process-backend pipe protocol unchanged.
SpanRecord = Tuple[str, str, Optional[str], Optional[str], float, float, Tuple[Tuple[str, object], ...]]


@dataclass(frozen=True)
class TraceContext:
    """The propagated identity of an in-flight span: ``(trace_id, span_id)``."""

    trace_id: str
    span_id: str

    def as_tuple(self) -> Tuple[str, str]:
        return (self.trace_id, self.span_id)

    @staticmethod
    def from_tuple(raw: Optional[Tuple[str, str]]) -> Optional["TraceContext"]:
        if raw is None:
            return None
        return TraceContext(trace_id=raw[0], span_id=raw[1])


class Span:
    """One timed, attributed unit of work inside a trace."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "node", "start", "end", "attrs", "_tracer")

    def __init__(
        self,
        tracer: Optional["Tracer"],
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str] = None,
        node: Optional[str] = None,
        start: Optional[float] = None,
        attrs: Optional[Dict[str, object]] = None,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.node = node
        self.start = time.perf_counter() if start is None else start
        self.end: Optional[float] = None
        self.attrs: Dict[str, object] = dict(attrs or {})

    def context(self) -> TraceContext:
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def finish(self, **attrs: object) -> None:
        """Stamp the end time, merge final attributes, hand to the tracer."""
        if self.end is not None:
            return
        self.attrs.update(attrs)
        self.end = time.perf_counter()
        if self._tracer is not None:
            self._tracer._record(self)

    def to_record(self) -> SpanRecord:
        """A primitives-only rendering for the process-backend pipe."""
        return (
            self.name,
            self.trace_id,
            self.parent_id,
            self.node,
            self.start,
            self.end if self.end is not None else self.start,
            tuple(sorted(self.attrs.items())),
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "node": self.node,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, trace={self.trace_id!r}, id={self.span_id!r}, "
            f"parent={self.parent_id!r}, node={self.node!r}, attrs={self.attrs!r})"
        )


class Tracer:
    """Creates spans, collects finished ones, assembles per-trace trees."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._seq = itertools.count(1)
        self._trace_seq = itertools.count(1)
        self._finished: List[Span] = []
        self._deferred: List[SpanRecord] = []
        self._current: Optional[TraceContext] = None

    # -- span lifecycle -------------------------------------------------------------------

    def _next_span_id(self) -> str:
        # itertools.count is C-implemented, so next() is atomic under the
        # GIL — no lock needed on the hot span-minting path.
        return f"s{next(self._seq)}"

    def start_span(
        self,
        name: str,
        parent: Optional[Union[TraceContext, Span]] = None,
        trace_id: Optional[str] = None,
        node: Optional[str] = None,
        **attrs: object,
    ) -> Span:
        """A new span; roots (no parent) may mint a fresh trace id."""
        if isinstance(parent, Span):
            parent = parent.context()
        if parent is not None:
            trace = parent.trace_id if trace_id is None else trace_id
            parent_id: Optional[str] = parent.span_id
        else:
            trace = trace_id if trace_id is not None else f"trace{next(self._trace_seq)}"
            parent_id = None
        return Span(self, name, trace, self._next_span_id(), parent_id=parent_id, node=node, attrs=attrs)

    def _record(self, span: Span) -> None:
        with self._lock:
            self._finished.append(span)

    def defer(self, record: SpanRecord) -> None:
        """Lock-free fast path for hot leaf spans (one call per node drain).

        The primitive record — the same shape the process backend ships over
        its pipe — is appended to a plain list (atomic in CPython) and only
        materialised into a :class:`Span` when an inspection API runs.  At
        ~0.3µs this is several times cheaper than ``start_span``/``finish``,
        which is what keeps benchmark E20's enabled-mode overhead bounded.
        """
        self._deferred.append(record)

    def _flush_deferred(self) -> None:
        with self._lock:
            pending, self._deferred = self._deferred, []
        if pending:
            # Inspection APIs only run coordinator-side after quiescence, so
            # no drain is concurrently deferring while we absorb.
            self.absorb(pending)

    def absorb(self, records: Sequence[SpanRecord]) -> List[Span]:
        """Rebuild finished spans from worker-exported primitive records.

        Fresh coordinator-side span ids are minted (worker processes cannot
        coordinate id allocation), but parent ids and node attribution are
        preserved verbatim — the parent is a coordinator span whose context
        was shipped out with the drain request.
        """
        absorbed = []
        for name, trace_id, parent_id, node, start, end, attr_items in records:
            span = Span(
                None, name, trace_id, self._next_span_id(),
                parent_id=parent_id, node=node, start=start, attrs=dict(attr_items),
            )
            span.end = end
            self._record(span)
            absorbed.append(span)
        return absorbed

    # -- ambient context ------------------------------------------------------------------

    def current(self) -> Optional[TraceContext]:
        """The ambient context drains parent to (set by the coordinator only)."""
        return self._current

    def set_current(self, context: Optional[TraceContext]) -> Optional[TraceContext]:
        previous = self._current
        self._current = context
        return previous

    # -- inspection -----------------------------------------------------------------------

    def finished_spans(self, trace_id: Optional[str] = None, name: Optional[str] = None) -> List[Span]:
        self._flush_deferred()
        with self._lock:
            spans = list(self._finished)
        if trace_id is not None:
            spans = [span for span in spans if span.trace_id == trace_id]
        if name is not None:
            spans = [span for span in spans if span.name == name]
        return spans

    def trace_ids(self) -> List[str]:
        seen: Dict[str, None] = {}
        for span in self.finished_spans():
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def span_tree(self, trace_id: str) -> Dict[str, object]:
        """The assembled span tree of one trace, rooted at its parentless span.

        Raises :class:`~repro.errors.EngineError` when the trace has no
        spans, no root, several roots, or a span whose parent id resolves to
        no recorded span — the completeness property benchmark E20 gates.
        """
        spans = self.finished_spans(trace_id)
        if not spans:
            raise EngineError(f"trace {trace_id!r} has no finished spans")
        by_id = {span.span_id: span for span in spans}
        children: Dict[Optional[str], List[Span]] = {}
        roots = []
        for span in spans:
            if span.parent_id is None:
                roots.append(span)
            elif span.parent_id not in by_id:
                raise EngineError(
                    f"trace {trace_id!r} is incomplete: span {span.span_id!r} ({span.name}) "
                    f"references missing parent {span.parent_id!r}"
                )
            else:
                children.setdefault(span.parent_id, []).append(span)
        if len(roots) != 1:
            raise EngineError(
                f"trace {trace_id!r} must have exactly one root span, found {len(roots)}"
            )

        def render(span: Span) -> Dict[str, object]:
            rendered = span.to_dict()
            rendered["children"] = [
                render(child)
                for child in sorted(children.get(span.span_id, []), key=lambda s: s.start)
            ]
            return rendered

        return render(roots[0])

    def clear(self) -> None:
        with self._lock:
            self._finished = []
            self._deferred = []
