"""Exporters: Prometheus text format, JSON snapshots, Chrome trace events.

Three renderings of the same observability state:

* :func:`prometheus_text` — the Prometheus text exposition format
  (``# TYPE`` headers, labeled series, cumulative histogram buckets), for
  scraping a long-running :class:`~repro.durability.service.ServiceRuntime`.
  :func:`parse_prometheus_text` is the matching reader used by the
  round-trip snapshot tests.
* :func:`json_snapshot` — a ``json.dumps``-able dict of every metric,
  finished span and flight-recorder event, for ad-hoc inspection and for
  archiving one run's telemetry next to its ``MetricsReport``.
* :func:`chrome_trace_events` — the Chrome trace-event format
  (``chrome://tracing`` / Perfetto): every finished span becomes a complete
  ``"ph": "X"`` event on a per-node track, so a whole
  :class:`~repro.workloads.driver.ScenarioDriver` run can be inspected as a
  timeline of windows, drains, queries and interval waves.

>>> from repro.obs.registry import MetricsRegistry
>>> registry = MetricsRegistry()
>>> registry.counter("query.issued").inc(3)
>>> text = prometheus_text(registry)
>>> parse_prometheus_text(text)["nettrails_query_issued"]
3.0
"""

from __future__ import annotations

import json
import re
from typing import TYPE_CHECKING, Dict, List

from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracing import Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from repro.obs import Observability

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_]")
#: Prefix on every exported Prometheus metric name.
PROMETHEUS_PREFIX = "nettrails_"


def _prom_name(name: str) -> str:
    return PROMETHEUS_PREFIX + _NAME_SANITIZER.sub("_", name)


def _prom_labels(pairs) -> str:
    if not pairs:
        return ""
    return "{" + ",".join(f'{key}="{value}"' for key, value in pairs) + "}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format."""
    lines: List[str] = []

    for series, value in registry.view_values().items():
        name = _prom_name(series)
        lines.append(f"# TYPE {name} untyped")
        lines.append(f"{name} {float(value):g}")

    for instrument in registry.instruments():
        name = _prom_name(instrument.name)
        if instrument.help:
            lines.append(f"# HELP {name} {instrument.help}")
        lines.append(f"# TYPE {name} {instrument.kind}")
        for series in [instrument] + instrument.children():
            if isinstance(series, (Counter, Gauge)):
                lines.append(f"{name}{_prom_labels(series.label_values)} {series.value:g}")
            elif isinstance(series, Histogram):
                cumulative = 0
                counts = series.bucket_counts()
                for bound, bucket_count in zip(series.buckets, counts[:-1]):
                    cumulative += bucket_count
                    labels = _prom_labels(tuple(series.label_values) + (("le", f"{bound:g}"),))
                    lines.append(f"{name}_bucket{labels} {cumulative}")
                labels = _prom_labels(tuple(series.label_values) + (("le", "+Inf"),))
                lines.append(f"{name}_bucket{labels} {series.count}")
                lines.append(f"{name}_sum{_prom_labels(series.label_values)} {series.sum:g}")
                lines.append(f"{name}_count{_prom_labels(series.label_values)} {series.count}")
    return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> Dict[str, float]:
    """Read exposition text back into ``{series_with_labels: value}``.

    A deliberately small parser — enough for the snapshot round-trip tests
    and for scraping our own output; not a general Prometheus client.
    """
    values: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        series, _, raw = line.rpartition(" ")
        values[series] = float(raw)
    return values


def json_snapshot(obs: "Observability") -> Dict[str, object]:
    """Every metric, span and recorder event as one JSON-serialisable dict."""
    return {
        "metrics": dict(obs.registry.collect()),
        "spans": [span.to_dict() for span in obs.tracer.finished_spans()],
        "flight_recorder": obs.recorder.dump(),
    }


def chrome_trace_events(tracer: Tracer, process_name: str = "nettrails") -> List[Dict[str, object]]:
    """Finished spans as Chrome trace-event dicts (``chrome://tracing``).

    Each distinct node gets its own thread track (tid); spans without node
    attribution (engine-level query roots, windows) land on tid 0.
    Timestamps are microseconds relative to the earliest span start.
    """
    spans = tracer.finished_spans()
    events: List[Dict[str, object]] = [
        {"ph": "M", "pid": 1, "tid": 0, "name": "process_name", "args": {"name": process_name}},
        {"ph": "M", "pid": 1, "tid": 0, "name": "thread_name", "args": {"name": "coordinator"}},
    ]
    if not spans:
        return events
    base = min(span.start for span in spans)
    tids: Dict[str, int] = {}
    for span in spans:
        if span.node is not None and span.node not in tids:
            tid = len(tids) + 1
            tids[span.node] = tid
            events.append(
                {"ph": "M", "pid": 1, "tid": tid, "name": "thread_name", "args": {"name": str(span.node)}}
            )
    for span in spans:
        events.append(
            {
                "ph": "X",
                "pid": 1,
                "tid": tids.get(span.node or "", 0) if span.node is not None else 0,
                "name": span.name,
                "cat": span.name.split(".")[0].split(":")[0],
                "ts": (span.start - base) * 1e6,
                "dur": max(span.duration, 0.0) * 1e6,
                "args": {
                    "trace_id": span.trace_id,
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    **{key: value for key, value in span.attrs.items()},
                },
            }
        )
    return events


def chrome_trace_json(tracer: Tracer, process_name: str = "nettrails") -> str:
    """The Chrome trace as a JSON string (the ``traceEvents`` envelope form)."""
    return json.dumps(
        {"traceEvents": chrome_trace_events(tracer, process_name), "displayTimeUnit": "ms"},
        sort_keys=True,
    )


def write_chrome_trace(path: str, tracer: Tracer, process_name: str = "nettrails") -> str:
    """Write the Chrome trace JSON to *path*; returns the path."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(chrome_trace_json(tracer, process_name))
    return path
