"""Root-cause analysis: trace network state back to the base tuples that caused it."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import ProvenanceError
from repro.core.graph import ProvenanceGraph, TupleVertex
from repro.engine.tuples import Fact


def _resolve(graph: ProvenanceGraph, relation: str, values: Sequence[object]) -> TupleVertex:
    matches = graph.find_tuples(relation, tuple(Fact.make(relation, list(values)).values))
    if not matches:
        raise ProvenanceError(
            f"tuple {relation}({', '.join(map(str, values))}) is not in the provenance graph"
        )
    return matches[0]


def root_causes(
    graph: ProvenanceGraph, relation: str, values: Sequence[object]
) -> List[TupleVertex]:
    """The base tuples that the given tuple (transitively) depends on.

    This is the offline, whole-graph counterpart of the distributed lineage
    query: use it when analysing a collected snapshot or a query-returned
    subgraph.
    """
    vertex = _resolve(graph, relation, values)
    return graph.base_tuples_of(vertex.vid)


def explain_derivation(
    graph: ProvenanceGraph,
    relation: str,
    values: Sequence[object],
    max_depth: Optional[int] = None,
) -> str:
    """A human-readable explanation of how a tuple was derived.

    Every line shows one step: which rule fired, at which node, and from
    which input tuples — i.e. the textual narrative a user reads off the
    provenance visualizer when tracing back from a symptom to its root
    causes.
    """
    vertex = _resolve(graph, relation, values)
    lines: List[str] = [f"Derivation of {vertex.label}:"]
    seen: set = set()

    def explain(vid: str, indent: int, depth: int) -> None:
        prefix = "  " * indent
        tuple_vertex = graph.tuple_vertex(vid)
        if tuple_vertex.is_base and not graph.derivations_of(vid):
            lines.append(f"{prefix}- {tuple_vertex.label} is a base tuple (root cause)")
            return
        if vid in seen:
            lines.append(f"{prefix}- {tuple_vertex.label} (derivation already shown)")
            return
        seen.add(vid)
        derivations = graph.derivations_of(vid)
        if tuple_vertex.is_base:
            lines.append(f"{prefix}- {tuple_vertex.label} is a base tuple (root cause)")
        for derivation in derivations:
            inputs = graph.inputs_of(derivation.rid)
            input_labels = ", ".join(child.label for child in inputs)
            lines.append(
                f"{prefix}- {tuple_vertex.label} was derived by rule {derivation.rule_name} "
                f"at {derivation.location} from [{input_labels}]"
            )
            if max_depth is not None and depth + 1 > max_depth:
                continue
            for child in inputs:
                explain(child.vid, indent + 1, depth + 1)

    explain(vertex.vid, 0, 0)
    return "\n".join(lines)
