"""Participant analysis: which nodes took part in a derivation, and how much."""

from __future__ import annotations

from typing import Dict, Sequence, Set

from repro.errors import ProvenanceError
from repro.core.graph import ProvenanceGraph
from repro.engine.tuples import Fact


def _vid_of(graph: ProvenanceGraph, relation: str, values: Sequence[object]) -> str:
    fact = Fact.make(relation, list(values))
    matches = graph.find_tuples(relation, fact.values)
    if not matches:
        raise ProvenanceError(
            f"tuple {relation}({', '.join(map(str, values))}) is not in the provenance graph"
        )
    return matches[0].vid


def participating_nodes(
    graph: ProvenanceGraph, relation: str, values: Sequence[object]
) -> Set[object]:
    """The set of nodes involved in any derivation of the given tuple."""
    return graph.participating_nodes(_vid_of(graph, relation, values))


def participant_contributions(
    graph: ProvenanceGraph, relation: str, values: Sequence[object]
) -> Dict[object, Dict[str, int]]:
    """Per-node contribution to the derivation of one tuple.

    For every participating node, reports how many tuples it stores and how
    many rule executions it performed within the tuple's provenance subgraph
    — the quantitative counterpart of "determining the parties that have
    participated in the derivation of a tuple".
    """
    vid = _vid_of(graph, relation, values)
    subgraph = graph.subgraph_rooted_at(vid)
    contributions: Dict[object, Dict[str, int]] = {}
    for vertex in subgraph.tuple_vertices():
        entry = contributions.setdefault(vertex.location, {"tuples": 0, "rule_executions": 0})
        entry["tuples"] += 1
    for vertex in subgraph.rule_exec_vertices():
        entry = contributions.setdefault(vertex.location, {"tuples": 0, "rule_executions": 0})
        entry["rule_executions"] += 1
    return contributions
