"""Cascading-effect analysis: what does a (topology) change affect?

Two complementary views are provided:

* :func:`cascading_effects` — the *potential* impact, read directly off the
  provenance graph: every tuple whose derivations transitively use the given
  tuple.  This is what a user sees when navigating "forward" from a link
  tuple in the visualizer.
* :func:`impact_of_link_failure` — the *actual* impact: the link is removed
  from a live runtime, the incremental maintenance engine reacts, and the
  difference in network state (plus what reappeared after restoring the
  link) is reported.  This is the "monitoring cascading effects that result
  from network topology updates" demonstration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.errors import ProvenanceError
from repro.core.graph import ProvenanceGraph, TupleVertex
from repro.engine.tuples import Fact


def cascading_effects(
    graph: ProvenanceGraph, relation: str, values: Sequence[object]
) -> List[TupleVertex]:
    """Tuples whose derivations (transitively) use the given tuple."""
    fact = Fact.make(relation, list(values))
    matches = graph.find_tuples(relation, fact.values)
    if not matches:
        raise ProvenanceError(
            f"tuple {relation}({', '.join(map(str, values))}) is not in the provenance graph"
        )
    return graph.affected_tuples(matches[0].vid)


@dataclass
class LinkFailureImpact:
    """The observed consequences of removing (and restoring) one link."""

    link: Tuple[str, str]
    removed_tuples: Dict[str, List[Tuple[object, ...]]] = field(default_factory=dict)
    added_tuples: Dict[str, List[Tuple[object, ...]]] = field(default_factory=dict)
    restored: bool = False

    def removed_count(self) -> int:
        return sum(len(rows) for rows in self.removed_tuples.values())

    def added_count(self) -> int:
        return sum(len(rows) for rows in self.added_tuples.values())

    def summary(self) -> str:
        lines = [f"Impact of failing link {self.link[0]} <-> {self.link[1]}:"]
        for relation in sorted(set(self.removed_tuples) | set(self.added_tuples)):
            removed = len(self.removed_tuples.get(relation, []))
            added = len(self.added_tuples.get(relation, []))
            lines.append(f"  {relation}: -{removed} / +{added}")
        if not self.removed_tuples and not self.added_tuples:
            lines.append("  (no derived state changed)")
        return "\n".join(lines)


def _global_state(runtime, relations: Sequence[str]) -> Dict[str, Set[Tuple[object, ...]]]:
    return {relation: set(runtime.state(relation)) for relation in relations}


def impact_of_link_failure(
    runtime,
    source: str,
    target: str,
    relations: Sequence[str] = (),
    restore: bool = True,
) -> LinkFailureImpact:
    """Fail the link ``source <-> target`` and report the resulting state changes.

    ``relations`` defaults to every derived relation of the installed program.
    With ``restore=True`` the link is re-added afterwards (with its original
    cost) so the runtime ends in its initial state.
    """
    if not relations:
        relations = runtime.compiled.derived_relations()
    if not runtime.topology.has_edge(source, target):
        raise ProvenanceError(f"no link between {source!r} and {target!r}")
    cost = runtime.topology.cost(source, target)

    before = _global_state(runtime, relations)
    runtime.remove_link(source, target)
    runtime.run_to_quiescence()
    after = _global_state(runtime, relations)

    impact = LinkFailureImpact(link=(source, target))
    for relation in relations:
        removed = sorted(before[relation] - after[relation], key=repr)
        added = sorted(after[relation] - before[relation], key=repr)
        if removed:
            impact.removed_tuples[relation] = removed
        if added:
            impact.added_tuples[relation] = added

    if restore:
        runtime.add_link(source, target, cost)
        runtime.run_to_quiescence()
        impact.restored = True
    return impact
