"""Analytical and diagnostic tasks built on network provenance.

The paper's demonstration plan: *"users can perform various analytical and
diagnostic tasks simply by navigating in the provenance visualizer.  Examples
include tracing back from root causes, monitoring cascading effects that
result from network topology updates, and determining the parties that have
participated in the derivation of a tuple."*

* :mod:`repro.analysis.root_cause` — trace a tuple back to the base tuples
  (root causes) it depends on and explain the derivation;
* :mod:`repro.analysis.cascade` — forward analysis: which derived state is
  (potentially or actually) affected by a base-tuple change, e.g. a link
  failure;
* :mod:`repro.analysis.participants` — which nodes participated in a
  derivation and how much each contributed.
"""

from repro.analysis.root_cause import explain_derivation, root_causes
from repro.analysis.cascade import cascading_effects, impact_of_link_failure
from repro.analysis.participants import participant_contributions, participating_nodes

__all__ = [
    "explain_derivation",
    "root_causes",
    "cascading_effects",
    "impact_of_link_failure",
    "participant_contributions",
    "participating_nodes",
]
