"""NetTrails reproduction: declarative maintenance and querying of network provenance.

This package reproduces, in pure Python, the system demonstrated in
*"NetTrails: A Declarative Platform for Maintaining and Querying Provenance
in Distributed Systems"* (SIGMOD 2011): a declarative networking engine
executing NDlog programs over a simulated distributed system, the ExSPAN
provenance maintenance and distributed query engines, legacy-application
integration through a proxy and "maybe" rules, and log-store / visualization
substitutes.

Quickstart::

    from repro import NetTrailsRuntime, DistributedQueryEngine
    from repro.protocols import mincost
    from repro.engine import topology

    net = topology.ring(5)
    runtime = NetTrailsRuntime(mincost.program(), net)
    runtime.seed_links(run=True)

    queries = DistributedQueryEngine(runtime)
    result = queries.lineage("minCost", ["n0", "n2", 2.0])
    print(result.value)       # the base link tuples this shortest path depends on
"""

from repro.errors import NetTrailsError
from repro.engine.runtime import NetTrailsRuntime
from repro.engine.topology import Topology
from repro.core.maintenance import ProvenanceEngine
from repro.core.query import DistributedQueryEngine
from repro.core.optimizations import QueryOptions
from repro.core.queries import CustomQuery
from repro.ndlog.parser import parse_program, parse_rule

__version__ = "0.1.0"

__all__ = [
    "NetTrailsError",
    "NetTrailsRuntime",
    "Topology",
    "ProvenanceEngine",
    "DistributedQueryEngine",
    "QueryOptions",
    "CustomQuery",
    "parse_program",
    "parse_rule",
    "__version__",
]
