"""NetTrails reproduction: declarative maintenance and querying of network provenance.

This package reproduces, in pure Python, the system demonstrated in
*"NetTrails: A Declarative Platform for Maintaining and Querying Provenance
in Distributed Systems"* (SIGMOD 2011): a declarative networking engine
executing NDlog programs over a simulated distributed system, the ExSPAN
provenance maintenance and distributed query engines, legacy-application
integration through a proxy and "maybe" rules, and log-store / visualization
substitutes.  Execution is batch-first: tuple deltas are evaluated, shipped
and applied in batches, and provenance queries can fan out a whole traversal
step in a single round (see ``docs/architecture.md``).  A node's store can
additionally be sharded — ``NetTrailsRuntime(..., num_shards=4,
shard_workers=2)`` hash-partitions every node's relations across four shards
and absorbs delta batches shard-parallel on two threads, with bit-identical
protocol state and provenance tables.

Quickstart — run MINCOST over a 5-node ring and ask why a shortest path
exists:

>>> from repro import NetTrailsRuntime, DistributedQueryEngine
>>> from repro.protocols import mincost
>>> from repro.engine import topology
>>> runtime = NetTrailsRuntime(mincost.program(), topology.ring(5))
>>> runtime.seed_links(run=True)        # one link tuple per directed edge
10
>>> runtime.state("minCost")[:2]
[('n0', 'n1', 1.0), ('n0', 'n2', 2.0)]

Every rule firing was recorded in the distributed provenance tables, so the
lineage of a derived tuple can be queried — the traversal really crosses the
simulated network, node by node:

>>> queries = DistributedQueryEngine(runtime)
>>> result = queries.lineage("minCost", ["n0", "n2", 2.0])
>>> sorted(str(ref) for ref in result.value)
['link(n0, n1, 1.0)@n0', 'link(n1, n2, 1.0)@n1']
>>> queries.participants("minCost", ["n0", "n2", 2.0]).value == frozenset({"n0", "n1"})
True
"""

from repro.errors import NetTrailsError
from repro.engine.runtime import NetTrailsRuntime
from repro.engine.topology import Topology
from repro.core.maintenance import ProvenanceEngine
from repro.core.query import DistributedQueryEngine
from repro.core.optimizations import QueryOptions
from repro.core.queries import CustomQuery
from repro.core.results import QueryResult, QueryStats, TupleRef
from repro.ndlog.parser import parse_program, parse_rule

__version__ = "0.1.0"

__all__ = [
    "NetTrailsError",
    "NetTrailsRuntime",
    "Topology",
    "ProvenanceEngine",
    "DistributedQueryEngine",
    "QueryOptions",
    "QueryResult",
    "QueryStats",
    "TupleRef",
    "CustomQuery",
    "parse_program",
    "parse_rule",
    "__version__",
]
