"""System snapshots: per-node state plus provenance tables at a point in time."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import LogStoreError
from repro.core.graph import ProvenanceGraph, RuleExecVertex, TupleVertex
from repro.core.keys import BASE_RID


@dataclass
class NodeSnapshot:
    """The state captured at one node: relation contents and provenance tables."""

    node_id: str
    relations: Dict[str, List[List[object]]] = field(default_factory=dict)
    tuples: Dict[str, List[object]] = field(default_factory=dict)  # vid -> [relation, values]
    prov: List[List[object]] = field(default_factory=list)         # [vid, rid, rloc]
    rule_execs: List[List[object]] = field(default_factory=list)   # [rid, rule, program, child_vids, head_vid]

    def to_dict(self) -> Dict[str, object]:
        return {
            "node_id": self.node_id,
            "relations": self.relations,
            "tuples": self.tuples,
            "prov": self.prov,
            "rule_execs": self.rule_execs,
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "NodeSnapshot":
        return NodeSnapshot(
            node_id=str(data["node_id"]),
            relations={str(k): list(v) for k, v in dict(data.get("relations", {})).items()},
            tuples={str(k): list(v) for k, v in dict(data.get("tuples", {})).items()},
            prov=[list(row) for row in data.get("prov", [])],
            rule_execs=[list(row) for row in data.get("rule_execs", [])],
        )


@dataclass
class Snapshot:
    """A system-wide snapshot: every node's state at one instant of virtual time."""

    time: float
    label: str = ""
    program: str = ""
    nodes: Dict[str, NodeSnapshot] = field(default_factory=dict)
    traffic: Dict[str, object] = field(default_factory=dict)

    # -- relation access -------------------------------------------------------------

    def node_ids(self) -> List[str]:
        return sorted(self.nodes)

    def relation(self, relation: str) -> List[Tuple[object, ...]]:
        """The global contents of one relation at snapshot time."""
        rows: List[Tuple[object, ...]] = []
        for node in self.nodes.values():
            for values in node.relations.get(relation, []):
                rows.append(tuple(_listify_to_tuple(v) for v in values))
        return sorted(rows, key=repr)

    def relations(self) -> List[str]:
        names = set()
        for node in self.nodes.values():
            names.update(node.relations)
        return sorted(names)

    def total_facts(self) -> int:
        return sum(
            len(rows) for node in self.nodes.values() for rows in node.relations.values()
        )

    # -- provenance ---------------------------------------------------------------------

    def provenance_graph(self) -> ProvenanceGraph:
        """Reconstruct the provenance graph captured in this snapshot."""
        graph = ProvenanceGraph()
        tuple_locations: Dict[str, str] = {}
        tuple_info: Dict[str, Tuple[str, Tuple[object, ...]]] = {}
        base_vids = set()
        for node in self.nodes.values():
            for vid, info in node.tuples.items():
                relation, values = str(info[0]), tuple(_listify_to_tuple(v) for v in info[1])
                tuple_info[vid] = (relation, values)
            for vid, rid, _rloc in node.prov:
                tuple_locations[str(vid)] = node.node_id
                if rid == BASE_RID:
                    base_vids.add(str(vid))
        for vid, (relation, values) in tuple_info.items():
            graph.add_tuple(
                TupleVertex(
                    vid=vid,
                    relation=relation,
                    values=values,
                    location=tuple_locations.get(vid, "<unknown>"),
                    is_base=vid in base_vids,
                )
            )
        for node in self.nodes.values():
            for rid, rule_name, program_name, child_vids, head_vid in node.rule_execs:
                graph.add_rule_exec(
                    RuleExecVertex(
                        rid=str(rid),
                        rule_name=str(rule_name),
                        program_name=str(program_name),
                        location=node.node_id,
                    ),
                    [str(v) for v in child_vids],
                    str(head_vid),
                )
        return graph

    # -- serialisation ---------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "time": self.time,
            "label": self.label,
            "program": self.program,
            "traffic": self.traffic,
            "nodes": {node_id: node.to_dict() for node_id, node in sorted(self.nodes.items())},
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "Snapshot":
        try:
            nodes = {
                str(node_id): NodeSnapshot.from_dict(node_data)
                for node_id, node_data in dict(data["nodes"]).items()
            }
            return Snapshot(
                time=float(data["time"]),
                label=str(data.get("label", "")),
                program=str(data.get("program", "")),
                traffic=dict(data.get("traffic", {})),
                nodes=nodes,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise LogStoreError(f"malformed snapshot data: {exc}") from exc

    @staticmethod
    def from_json(text: str) -> "Snapshot":
        return Snapshot.from_dict(json.loads(text))


def _listify_to_tuple(value: object) -> object:
    """JSON round-trips tuples as lists; convert them back for comparisons."""
    if isinstance(value, list):
        return tuple(_listify_to_tuple(v) for v in value)
    return value


def take_snapshot(runtime, label: str = "") -> Snapshot:
    """Capture a system-wide snapshot of *runtime* (a :class:`NetTrailsRuntime`)."""
    snapshot = Snapshot(
        time=runtime.simulator.now,
        label=label,
        program=runtime.compiled.name,
        traffic=runtime.network.stats.snapshot(),
    )
    provenance = runtime.provenance
    for node_id, node in sorted(runtime.nodes.items(), key=lambda item: repr(item[0])):
        node_snapshot = NodeSnapshot(node_id=str(node_id))
        for relation in node.store.relations():
            node_snapshot.relations[relation] = [
                list(fact.values) for fact in node.facts(relation)
            ]
        if provenance is not None:
            pstore = provenance.store(node_id)
            for row in pstore.prov_table():
                _loc, vid, rid, rloc = row
                node_snapshot.prov.append([vid, rid, str(rloc)])
            for rid in sorted(pstore._rule_execs):
                entry = pstore.rule_exec(rid)
                node_snapshot.rule_execs.append(
                    [
                        entry.rid,
                        entry.rule_name,
                        entry.program_name,
                        list(entry.child_vids),
                        entry.head_vid,
                    ]
                )
            for vid, info in sorted(pstore._tuple_info.items()):
                node_snapshot.tuples[vid] = [info[0], list(info[1])]
        snapshot.nodes[str(node_id)] = node_snapshot
    return snapshot
