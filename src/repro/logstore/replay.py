"""Replay of collected snapshots.

During the demonstration the generated logs are "replayed using the RapidNet
visualizer ... and a provenance visualizer".  :class:`ReplaySession` provides
the programmatic equivalent: it steps through the snapshots of a
:class:`~repro.logstore.store.LogStore` in time order, reports what changed
between consecutive snapshots (tuples appearing / disappearing per relation)
and reconstructs the provenance graph at any step so the visualizer can
render it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import LogStoreError
from repro.core.graph import ProvenanceGraph
from repro.logstore.snapshot import Snapshot
from repro.logstore.store import LogStore


@dataclass
class SnapshotDiff:
    """The state change between two consecutive snapshots."""

    from_time: float
    to_time: float
    added: Dict[str, List[Tuple[object, ...]]] = field(default_factory=dict)
    removed: Dict[str, List[Tuple[object, ...]]] = field(default_factory=dict)

    @property
    def is_empty(self) -> bool:
        return not self.added and not self.removed

    def added_count(self) -> int:
        return sum(len(rows) for rows in self.added.values())

    def removed_count(self) -> int:
        return sum(len(rows) for rows in self.removed.values())

    def summary(self) -> str:
        parts = [f"{self.from_time:.2f}s -> {self.to_time:.2f}s:"]
        for relation in sorted(set(self.added) | set(self.removed)):
            plus = len(self.added.get(relation, []))
            minus = len(self.removed.get(relation, []))
            parts.append(f"  {relation}: +{plus} / -{minus}")
        if self.is_empty:
            parts.append("  (no change)")
        return "\n".join(parts)


def diff_snapshots(before: Snapshot, after: Snapshot) -> SnapshotDiff:
    """Compute which tuples appeared and disappeared between two snapshots."""
    diff = SnapshotDiff(from_time=before.time, to_time=after.time)
    relations = set(before.relations()) | set(after.relations())
    for relation in sorted(relations):
        old_rows: Set[Tuple[object, ...]] = set(before.relation(relation))
        new_rows: Set[Tuple[object, ...]] = set(after.relation(relation))
        added = sorted(new_rows - old_rows, key=repr)
        removed = sorted(old_rows - new_rows, key=repr)
        if added:
            diff.added[relation] = added
        if removed:
            diff.removed[relation] = removed
    return diff


class ReplaySession:
    """Step through a log store's snapshots, as the demo's replay does."""

    def __init__(self, store: LogStore):
        if len(store) == 0:
            raise LogStoreError("cannot replay an empty log store")
        self._snapshots = store.snapshots()
        self._position = 0

    # -- navigation ------------------------------------------------------------------

    @property
    def position(self) -> int:
        return self._position

    @property
    def length(self) -> int:
        return len(self._snapshots)

    def current(self) -> Snapshot:
        return self._snapshots[self._position]

    def at_end(self) -> bool:
        return self._position >= len(self._snapshots) - 1

    def step(self) -> Optional[SnapshotDiff]:
        """Advance to the next snapshot; return the diff, or None at the end."""
        if self.at_end():
            return None
        before = self.current()
        self._position += 1
        return diff_snapshots(before, self.current())

    def seek_time(self, time: float) -> Snapshot:
        """Jump ("pause the network at a given time") to the snapshot at/before *time*."""
        best = None
        for index, snapshot in enumerate(self._snapshots):
            if snapshot.time <= time:
                best = index
        if best is None:
            raise LogStoreError(f"no snapshot exists at or before time {time}")
        self._position = best
        return self.current()

    def rewind(self) -> Snapshot:
        self._position = 0
        return self.current()

    # -- inspection --------------------------------------------------------------------

    def provenance_graph(self) -> ProvenanceGraph:
        """The provenance graph at the current replay position."""
        return self.current().provenance_graph()

    def all_diffs(self) -> List[SnapshotDiff]:
        """Diffs between every pair of consecutive snapshots."""
        return [
            diff_snapshots(before, after)
            for before, after in zip(self._snapshots, self._snapshots[1:])
        ]
