"""Log store: per-node snapshots, central collection and replay.

The paper (§2.3): *"per-node provenance information and other system state
(such as the network topology and bandwidth utilization) can be periodically
captured as system snapshots at each node, and then propagated to a central
Log Store that resides at the visualization node.  These logs are
subsequently used for interactive visualization, query, and replay."*

This package reproduces that pipeline without the GUI: snapshots capture
per-node relation contents plus the provenance tables, a :class:`LogStore`
collects them (optionally on a periodic simulator schedule), persists them as
JSON, and a :class:`ReplaySession` steps through them again, exposing state
diffs and reconstructed provenance graphs for the visualizer.
"""

from repro.logstore.snapshot import Snapshot, take_snapshot
from repro.logstore.store import LogStore
from repro.logstore.replay import ReplaySession, SnapshotDiff

__all__ = [
    "Snapshot",
    "take_snapshot",
    "LogStore",
    "ReplaySession",
    "SnapshotDiff",
]
