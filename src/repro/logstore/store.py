"""The central log store collecting snapshots from every node."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, List, Union

from repro.errors import LogStoreError
from repro.logstore.snapshot import Snapshot, take_snapshot


class LogStore:
    """An append-only store of system snapshots, ordered by capture time."""

    def __init__(self) -> None:
        self._snapshots: List[Snapshot] = []

    # -- collection ---------------------------------------------------------------

    def append(self, snapshot: Snapshot) -> None:
        if self._snapshots and snapshot.time < self._snapshots[-1].time:
            raise LogStoreError(
                f"snapshot at time {snapshot.time} is older than the latest stored "
                f"snapshot at {self._snapshots[-1].time}"
            )
        self._snapshots.append(snapshot)

    def collect(self, runtime, label: str = "") -> Snapshot:
        """Capture a snapshot of *runtime* and append it."""
        snapshot = take_snapshot(runtime, label=label)
        self.append(snapshot)
        return snapshot

    def schedule_periodic(self, runtime, interval: float, count: int, label: str = "periodic") -> None:
        """Schedule *count* periodic collections on the runtime's simulator.

        This mirrors the paper's "periodically captured as system snapshots at
        each node, and then propagated to a central Log Store": at each tick
        the current per-node state is captured and appended.
        """
        if interval <= 0:
            raise LogStoreError("the collection interval must be positive")

        def capture(index: int) -> Callable[[], None]:
            def action() -> None:
                self.collect(runtime, label=f"{label}-{index}")

            return action

        for index in range(1, count + 1):
            runtime.simulator.schedule(interval * index, capture(index), label="snapshot")

    # -- access -----------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._snapshots)

    def snapshots(self) -> List[Snapshot]:
        return list(self._snapshots)

    def latest(self) -> Snapshot:
        if not self._snapshots:
            raise LogStoreError("the log store is empty")
        return self._snapshots[-1]

    def at_time(self, time: float) -> Snapshot:
        """The most recent snapshot taken at or before *time*.

        The boundary is inclusive, and among snapshots sharing one capture
        time the *last appended* wins — append order is the store's tiebreak
        everywhere (see :meth:`by_label`), so a query "as of t" always sees
        the newest state recorded for t.
        """
        candidates = [snapshot for snapshot in self._snapshots if snapshot.time <= time]
        if not candidates:
            raise LogStoreError(f"no snapshot exists at or before time {time}")
        return candidates[-1]

    def by_label(self, label: str) -> Snapshot:
        """The most recently appended snapshot carrying *label*.

        Labels are not unique (periodic collection reuses them, and a
        checkpoint label can be re-taken after recovery), so lookups are
        deterministic latest-wins — matching :meth:`at_time`'s tiebreak
        rather than returning an arbitrary earlier capture.
        """
        for snapshot in reversed(self._snapshots):
            if snapshot.label == label:
                return snapshot
        raise LogStoreError(f"no snapshot with label {label!r}")

    # -- persistence ---------------------------------------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        """Persist every snapshot to a JSON file."""
        payload = [snapshot.to_dict() for snapshot in self._snapshots]
        Path(path).write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")

    @staticmethod
    def load(path: Union[str, Path]) -> "LogStore":
        """Load a log store previously written by :meth:`save`."""
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise LogStoreError(f"cannot load log store from {path}: {exc}") from exc
        store = LogStore()
        for entry in payload:
            store.append(Snapshot.from_dict(entry))
        return store
