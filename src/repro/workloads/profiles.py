"""Named scenario profiles: the catalogue CI, benchmarks and demos run.

Three sizes of the same story — a provenance-tracked network absorbing
churn while being queried:

* ``smoke`` — ~10 nodes, seconds-fast; runs inside CI's bench-trajectory
  job with gated counters, and is the subject of the cross-backend
  determinism tests.
* ``demo`` — ~105 nodes, the interactive-demo scale; exercises every churn
  generator and a mixed query load.
* ``scale`` — 1000+ nodes on a generated AS-level graph (hierarchical ISP
  by default, ``topology_kind="power_law"`` for degree-skewed AS graphs);
  the E15 benchmark sweeps ``batch_size`` x backend over it to chart where
  batch absorption saturates.

All profiles run :mod:`repro.protocols.prefix_routing` — per-prefix state is
what keeps 1000+-node convergence in seconds — and return plain
:class:`~repro.workloads.spec.ScenarioSpec` values, so callers sweep axes
with ``spec.with_batch_size(...)`` / ``spec.with_knobs(backend=...)``.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.errors import EngineError
from repro.workloads.spec import (
    ChurnPhase,
    QueryMixSpec,
    RuntimeKnobs,
    ScenarioSpec,
    TopologySpec,
)

#: Default seed shared by the named profiles (override per call).
DEFAULT_SEED = 11


def smoke(seed: int = DEFAULT_SEED) -> ScenarioSpec:
    """CI-sized: every generator touched, a couple of quiescence windows each."""
    return ScenarioSpec(
        name="smoke",
        topology=TopologySpec.make("isp_hierarchy", tier1_count=2, tier2_per_tier1=2, stubs_per_tier2=1, seed=seed),
        protocol="prefix_routing",
        seed=seed,
        churn=(
            ChurnPhase.make(
                "prefix_announce_withdraw", batches=3, prefixes=2, origins_per_prefix=2
            ),
            ChurnPhase.make("link_flap", batches=2, flaps_per_batch=1),
            ChurnPhase.make("node_fail_recover", batches=2),
        ),
        queries=QueryMixSpec(relation="best", queries_per_wave=2, wave_every=2),
    )


def demo(seed: int = DEFAULT_SEED) -> ScenarioSpec:
    """Interactive-demo scale (~105 nodes), mixed churn and query modes."""
    return ScenarioSpec(
        name="demo",
        topology=TopologySpec.make(
            "isp_hierarchy", tier1_count=5, tier2_per_tier1=4, stubs_per_tier2=4, seed=seed
        ),
        protocol="prefix_routing",
        seed=seed,
        churn=(
            ChurnPhase.make(
                "prefix_announce_withdraw",
                batches=4,
                prefixes=3,
                origins_per_prefix=2,
                toggles_per_batch=2,
            ),
            ChurnPhase.make("link_flap", batches=3, flaps_per_batch=2),
            ChurnPhase.make("hot_hub_skew", batches=2, ops_per_batch=3),
            ChurnPhase.make("node_fail_recover", batches=2),
        ),
        queries=QueryMixSpec(
            relation="best",
            queries_per_wave=3,
            wave_every=2,
            modes=(("lineage", 0.6), ("participants", 0.25), ("subgraph", 0.15)),
            traversals=(("sequential", 0.5), ("parallel", 0.5)),
        ),
    )


def scale(seed: int = DEFAULT_SEED, topology_kind: str = "isp_hierarchy") -> ScenarioSpec:
    """1000+-node AS-level scenario — the saturation benchmark's subject.

    ``isp_hierarchy`` builds a 1010-node provider hierarchy;
    ``power_law`` a 1024-node preferential-attachment AS graph with hub
    degree skew.  Churn combines BGP announce/withdraw toggles with
    hub-concentrated link flaps; queries stay light so the measured cost is
    churn absorption.
    """
    if topology_kind == "isp_hierarchy":
        topology = TopologySpec.make(
            "isp_hierarchy", tier1_count=10, tier2_per_tier1=10, stubs_per_tier2=9, seed=seed
        )
    elif topology_kind == "power_law":
        topology = TopologySpec.make("power_law", count=1024, attach=2, seed=seed)
    else:
        raise EngineError(
            f"scale profile topology_kind must be 'isp_hierarchy' or 'power_law', "
            f"got {topology_kind!r}"
        )
    return ScenarioSpec(
        name=f"scale-{topology_kind}",
        topology=topology,
        protocol="prefix_routing",
        seed=seed,
        churn=(
            ChurnPhase.make(
                "prefix_announce_withdraw",
                batches=5,
                prefixes=4,
                origins_per_prefix=2,
                toggles_per_batch=2,
            ),
            ChurnPhase.make("hot_hub_skew", batches=3, ops_per_batch=4),
        ),
        queries=QueryMixSpec(relation="best", queries_per_wave=2, wave_every=4),
    )


PROFILES: Dict[str, Callable[..., ScenarioSpec]] = {
    "smoke": smoke,
    "demo": demo,
    "scale": scale,
}


def build_profile(
    name: str,
    seed: Optional[int] = None,
    batch_size: Optional[int] = None,
    knobs: Optional[RuntimeKnobs] = None,
    **profile_params: object,
) -> ScenarioSpec:
    """Look up a named profile and apply the common sweep axes in one call."""
    if name not in PROFILES:
        raise EngineError(f"unknown profile {name!r}; known profiles: {sorted(PROFILES)}")
    spec = PROFILES[name](**profile_params) if seed is None else PROFILES[name](
        seed=seed, **profile_params
    )
    if batch_size is not None:
        spec = spec.with_batch_size(batch_size)
    if knobs is not None:
        from dataclasses import replace

        spec = replace(spec, knobs=knobs)
    return spec
