"""Seeded churn generators: network misbehaviour as reproducible delta batches.

Every generator turns a seeded RNG plus the *current* topology into an
iterator of op batches (:class:`ChurnBatch`), each batch being the set of
base-tuple deltas one quiescence window absorbs.  The op vocabulary
(:class:`ChurnOp`) is deliberately tiny — link up/down and base-tuple
insert/delete — because that is the entire surface through which the paper's
scenarios (link flaps, node failures, BGP announce/withdraw) reach a
:class:`~repro.engine.runtime.NetTrailsRuntime`.

Generators are *stateful over a topology mirror*: they mutate the mirror as
they emit ops, so every op is valid at the point it executes (no removing
absent links, no double announcements) and a later phase sees the network
exactly as the previous phase left it.  The driver owns the mirror; tests
can instead call :func:`scenario_trace` to materialise a spec's full churn
trace without running anything — same seed, same spec ⇒ bit-identical trace,
which is the determinism contract the workloads test suite pins.
"""

from __future__ import annotations

import copy
import hashlib
import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import EngineError
from repro.engine.topology import Topology
from repro.workloads.spec import ChurnPhase, ScenarioSpec

# ---------------------------------------------------------------------------
# Op vocabulary
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ChurnOp:
    """One base-tuple-level mutation of the running system.

    ``kind`` is one of ``add_link`` / ``remove_link`` (undirected link with
    its base tuples, routed through the runtime's dynamic-topology API) or
    ``insert`` / ``delete`` (a single base tuple, e.g. a prefix
    announcement).  ``subject`` holds ``(a, b, cost)`` for link ops and
    ``(relation, *values)`` for tuple ops.
    """

    kind: str
    subject: Tuple[object, ...]

    @classmethod
    def add_link(cls, a: str, b: str, cost: float = 1.0) -> "ChurnOp":
        return cls("add_link", (a, b, cost))

    @classmethod
    def remove_link(cls, a: str, b: str) -> "ChurnOp":
        return cls("remove_link", (a, b))

    @classmethod
    def insert(cls, relation: str, *values: object) -> "ChurnOp":
        return cls("insert", (relation,) + values)

    @classmethod
    def delete(cls, relation: str, *values: object) -> "ChurnOp":
        return cls("delete", (relation,) + values)

    def base_deltas(self, symmetric_links: bool = True) -> int:
        """How many base-tuple deltas this op applies."""
        if self.kind in ("add_link", "remove_link"):
            return 2 if symmetric_links else 1
        return 1


@dataclass(frozen=True)
class ChurnBatch:
    """The ops one quiescence window absorbs, tagged with its phase."""

    index: int
    phase: str
    ops: Tuple[ChurnOp, ...]


def apply_churn_op(runtime, op: ChurnOp) -> None:
    """Apply one op to a runtime (no simulator run)."""
    if op.kind == "add_link":
        a, b, cost = op.subject
        runtime.add_link(a, b, cost)
    elif op.kind == "remove_link":
        a, b = op.subject
        runtime.remove_link(a, b)
    elif op.kind == "insert":
        runtime.insert(op.subject[0], list(op.subject[1:]))
    elif op.kind == "delete":
        runtime.delete(op.subject[0], list(op.subject[1:]))
    else:
        raise EngineError(f"unknown churn op kind {op.kind!r}")


def apply_batch(runtime, batch: ChurnBatch, run: bool = True) -> None:
    """Apply a batch's ops, then (by default) run to quiescence.

    All ops land before the simulator runs, so the per-node zero-delay
    coalescing turns the whole batch into batch-first delta evaluation.
    """
    for op in batch.ops:
        apply_churn_op(runtime, op)
    if run:
        runtime.run_to_quiescence()


def trace_digest(batches: Sequence[ChurnBatch]) -> str:
    """A stable hex digest of a churn trace, for determinism assertions."""
    hasher = hashlib.sha256()
    for batch in batches:
        hasher.update(repr((batch.index, batch.phase, batch.ops)).encode("utf-8"))
    return hasher.hexdigest()


# ---------------------------------------------------------------------------
# Generators.  Uniform signature: (mirror, rng, batches, **params) -> iterator
# of op tuples; the driver wraps them into ChurnBatch with global numbering.
# ---------------------------------------------------------------------------


def _live_edges(mirror: Topology) -> List[Tuple[str, str]]:
    return sorted(mirror.edges)


def link_flap(
    mirror: Topology,
    rng: random.Random,
    batches: int,
    flaps_per_batch: int = 2,
    fast_ratio: float = 0.5,
) -> Iterator[Tuple[ChurnOp, ...]]:
    """Random link flaps with jitter.

    Each batch flaps up to *flaps_per_batch* random live links.  A *fast*
    flap (probability ``fast_ratio``) goes down and back up within the same
    batch, so the deletion and re-insertion waves overlap in flight; a *slow*
    flap stays down for one whole window and is restored in the next batch.
    """
    pending_up: List[Tuple[str, str, float]] = []
    for _ in range(batches):
        ops: List[ChurnOp] = []
        for a, b, cost in pending_up:
            mirror.add_edge(a, b, cost)
            ops.append(ChurnOp.add_link(a, b, cost))
        pending_up = []
        for _ in range(flaps_per_batch):
            edges = _live_edges(mirror)
            if not edges:
                break
            a, b = edges[rng.randrange(len(edges))]
            cost = mirror.cost(a, b)
            ops.append(ChurnOp.remove_link(a, b))
            if rng.random() < fast_ratio:
                ops.append(ChurnOp.add_link(a, b, cost))
            else:
                mirror.remove_edge(a, b)
                pending_up.append((a, b, cost))
        yield tuple(ops)
    if pending_up:
        # Restore anything still down so the phase leaves the topology whole.
        yield tuple(ChurnOp.add_link(a, b, cost) for a, b, cost in pending_up)
        for a, b, cost in pending_up:
            mirror.add_edge(a, b, cost)


def node_fail_recover(
    mirror: Topology,
    rng: random.Random,
    batches: int,
    concurrent_failures: int = 1,
    protect: Tuple[str, ...] = (),
) -> Iterator[Tuple[ChurnOp, ...]]:
    """Whole-node failures: every incident link drops at once, later recovers.

    Each batch fails a random healthy node (all its links removed in one
    batch — the correlated loss a crashed router causes) until
    *concurrent_failures* nodes are down, then recovers the longest-down
    node, sustaining that much overlapping failure for the rest of the
    phase.  Nodes in *protect* (e.g. prefix origins) never fail.
    """
    down: List[Tuple[str, List[Tuple[str, str, float]]]] = []
    protected = set(protect)
    for _step in range(batches):
        if len(down) < concurrent_failures:
            candidates = [
                node
                for node in sorted(mirror.nodes)
                if node not in protected
                and mirror.degree(node) > 0
                and all(node != downed for downed, _ in down)
            ]
            if not candidates:
                yield ()
                continue
            node = candidates[rng.randrange(len(candidates))]
            links = [
                (node, neighbor, mirror.cost(node, neighbor))
                for neighbor in mirror.neighbors(node)
            ]
            for a, b, _cost in links:
                mirror.remove_edge(a, b)
            down.append((node, links))
            yield tuple(ChurnOp.remove_link(a, b) for a, b, _cost in links)
        else:
            yield _recover_node(mirror, down)
    while down:
        yield _recover_node(mirror, down)


def _recover_node(
    mirror: Topology, down: List[Tuple[str, List[Tuple[str, str, float]]]]
) -> Tuple[ChurnOp, ...]:
    """Restore the longest-down node's links — except those whose other
    endpoint is itself still down, which are deferred onto that neighbour's
    failure record so no link ever comes up into a failed node."""
    node, links = down.pop(0)
    ops: List[ChurnOp] = []
    for a, b, cost in links:
        other = b if a == node else a
        neighbor_entry = next((entry for entry in down if entry[0] == other), None)
        if neighbor_entry is not None:
            neighbor_entry[1].append((a, b, cost))
        else:
            mirror.add_edge(a, b, cost)
            ops.append(ChurnOp.add_link(a, b, cost))
    return tuple(ops)


def prefix_announce_withdraw(
    mirror: Topology,
    rng: random.Random,
    batches: int,
    prefixes: int = 2,
    origins_per_prefix: int = 2,
    toggles_per_batch: int = 1,
    keep_alive: bool = True,
    relation: str = "prefix",
) -> Iterator[Tuple[ChurnOp, ...]]:
    """BGP-style announce/withdraw churn against a ``prefix`` base relation.

    The first batch originates every prefix at ``origins_per_prefix``
    deterministic-randomly chosen nodes (multi-homing).  Every later batch
    toggles *toggles_per_batch* random (prefix, origin) pairs: announced
    origins withdraw, withdrawn ones re-announce.  With ``keep_alive`` (the
    default) a prefix's last live origin never withdraws, so routes shift to
    the surviving origin instead of triggering a full count-to-infinity
    teardown — set it to ``False`` to stress exactly that teardown.
    """
    nodes = sorted(mirror.nodes)
    if origins_per_prefix > len(nodes):
        raise EngineError(
            f"origins_per_prefix={origins_per_prefix} exceeds node count {len(nodes)}"
        )
    slots: List[Tuple[str, str]] = []  # every (prefix, origin) homing slot
    live: Dict[Tuple[str, str], bool] = {}
    announce_ops: List[ChurnOp] = []
    for index in range(prefixes):
        prefix_name = f"p{index}"
        for origin in rng.sample(nodes, origins_per_prefix):
            slots.append((prefix_name, origin))
            live[(prefix_name, origin)] = True
            announce_ops.append(ChurnOp.insert(relation, origin, prefix_name, 0.0))
    yield tuple(announce_ops)
    for _ in range(max(0, batches - 1)):
        ops: List[ChurnOp] = []
        for _ in range(toggles_per_batch):
            prefix_name, origin = slots[rng.randrange(len(slots))]
            if live[(prefix_name, origin)]:
                live_count = sum(
                    1 for (p, _o), up in live.items() if p == prefix_name and up
                )
                if keep_alive and live_count <= 1:
                    continue
                live[(prefix_name, origin)] = False
                ops.append(ChurnOp.delete(relation, origin, prefix_name, 0.0))
            else:
                live[(prefix_name, origin)] = True
                ops.append(ChurnOp.insert(relation, origin, prefix_name, 0.0))
        yield tuple(ops)


def hot_hub_skew(
    mirror: Topology,
    rng: random.Random,
    batches: int,
    ops_per_batch: int = 4,
    zipf_s: float = 1.3,
) -> Iterator[Tuple[ChurnOp, ...]]:
    """Zipf-skewed link flaps concentrated on the highest-degree nodes.

    Nodes are ranked by descending degree (stable tie-break by name); each
    flap picks its node with Zipf(``zipf_s``) rank skew and fast-flaps one
    random incident link.  The top-ranked hub therefore absorbs most of the
    churn — the hot-node regime store sharding targets.
    """
    from repro.workloads.queries import ZipfSampler

    for _ in range(batches):
        ranked = sorted(mirror.nodes, key=lambda node: (-mirror.degree(node), node))
        sampler = ZipfSampler(len(ranked), zipf_s)
        ops: List[ChurnOp] = []
        for _ in range(ops_per_batch):
            node = ranked[sampler.sample(rng)]
            neighbors = mirror.neighbors(node)
            if not neighbors:
                continue
            neighbor = neighbors[rng.randrange(len(neighbors))]
            cost = mirror.cost(node, neighbor)
            ops.append(ChurnOp.remove_link(node, neighbor))
            ops.append(ChurnOp.add_link(node, neighbor, cost))
        yield tuple(ops)


def random_link_churn(
    mirror: Topology,
    rng: random.Random,
    batches: int,
    max_new_cost: int = 4,
) -> Iterator[Tuple[ChurnOp, ...]]:
    """The classic equivalence-harness script: remove / re-add / add-new / flap.

    One op per batch, drawn uniformly; removed links are remembered for
    re-adding and brand-new links get random integer costs.  This is the
    generator the property-test churn harnesses replay across shard layouts
    and execution backends.
    """
    nodes = sorted(mirror.nodes)
    removed: List[Tuple[str, str, float]] = []
    emitted = 0
    while emitted < batches:
        kind = rng.choice(["remove", "add_back", "add_new", "flap"])
        if kind == "remove" and len(mirror.edges) > 1:
            a, b = sorted(mirror.edges)[rng.randrange(len(mirror.edges))]
            removed.append((a, b, mirror.cost(a, b)))
            mirror.remove_edge(a, b)
            yield (ChurnOp.remove_link(a, b),)
        elif kind == "add_back" and removed:
            a, b, cost = removed.pop(rng.randrange(len(removed)))
            mirror.add_edge(a, b, cost)
            yield (ChurnOp.add_link(a, b, cost),)
        elif kind == "add_new":
            a, b = rng.sample(nodes, 2)
            if mirror.has_edge(a, b):
                continue
            cost = float(rng.randint(1, max_new_cost))
            mirror.add_edge(a, b, cost)
            yield (ChurnOp.add_link(a, b, cost),)
        elif kind == "flap" and mirror.edges:
            # Down and back up before quiescence: the deletion and
            # re-insertion waves overlap in flight.
            a, b = sorted(mirror.edges)[rng.randrange(len(mirror.edges))]
            yield (ChurnOp.remove_link(a, b), ChurnOp.add_link(a, b, mirror.cost(a, b)))
        else:
            continue
        emitted += 1


#: Generator registry consumed by :class:`~repro.workloads.spec.ChurnPhase`.
GENERATORS = {
    "link_flap": link_flap,
    "node_fail_recover": node_fail_recover,
    "prefix_announce_withdraw": prefix_announce_withdraw,
    "hot_hub_skew": hot_hub_skew,
    "random_link_churn": random_link_churn,
}


# ---------------------------------------------------------------------------
# Trace assembly
# ---------------------------------------------------------------------------


def phase_rng(spec_seed: int, phase: ChurnPhase, index: int = 0) -> random.Random:
    """The phase's private RNG: scenario seed + schedule position + identity.

    The position (*index* in ``spec.churn``) is part of the derivation, so
    two schedule entries with the same generator and knobs still produce
    independent streams instead of byte-identical churn.
    """
    return random.Random(f"{spec_seed}:{index}:{phase.seed_offset}:{phase.generator}")


def phase_batches(
    mirror: Topology, spec_seed: int, phase: ChurnPhase, index: int = 0
) -> Iterator[Tuple[ChurnOp, ...]]:
    """Run one phase's generator against the (shared, mutated) mirror."""
    if phase.generator not in GENERATORS:
        raise EngineError(
            f"unknown churn generator {phase.generator!r}; "
            f"known generators: {sorted(GENERATORS)}"
        )
    generator = GENERATORS[phase.generator]
    rng = phase_rng(spec_seed, phase, index)
    return generator(mirror, rng, phase.batches, **dict(phase.params))


def scenario_trace(
    spec: ScenarioSpec, mirror: Optional[Topology] = None
) -> List[ChurnBatch]:
    """Materialise the full churn trace of a spec without running anything.

    Equal specs produce equal traces (:func:`trace_digest` makes that a
    one-line assertion); the driver replays exactly this trace, so a trace
    plus the spec's knobs fully determines a run's deterministic metrics.
    Repeated phases with the same name get ``#2``, ``#3``, ... suffixes so
    their metrics land in distinct report buckets.
    """
    mirror = mirror if mirror is not None else spec.topology.build()
    mirror = copy.deepcopy(mirror)
    batches: List[ChurnBatch] = []
    name_counts: Dict[str, int] = {}
    for index, phase in enumerate(spec.churn):
        count = name_counts.get(phase.name, 0)
        name_counts[phase.name] = count + 1
        name = phase.name if count == 0 else f"{phase.name}#{count + 1}"
        for ops in phase_batches(mirror, spec.seed, phase, index):
            batches.append(ChurnBatch(index=len(batches), phase=name, ops=ops))
    return batches
