"""Concurrent-client query harness: many issuers × Zipf-skewed query mixes.

:func:`run_concurrent_clients` hammers a
:class:`~repro.durability.service.ServiceRuntime` with *N* client threads,
each drawing Zipf-ranked targets from the served relation and a weighted mix
of query modes from its own seeded RNG — the "millions of users" axis of the
paper turned into a measured workload.  The main thread can interleave churn
commits (``churn_batches=``), so the harness exercises exactly the serving
shape the durability layer promises: queries keep flowing between commits
and checkpoints.

Latencies are wall-clock per call as a client observes them — queueing on
the service's arbitration lock included — summarised as p50/p95/p99 through
:func:`repro.durability.service.latency_summary`, which is the payload the
E17 benchmark records in ``MetricsReport.latency``.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.errors import EngineError, NetTrailsError
from repro.workloads.churn import ChurnBatch
from repro.workloads.queries import ZipfSampler, weighted_choice


@dataclass(frozen=True)
class ClientMix:
    """How one fleet of clients queries: size, skew and mode weights."""

    clients: int = 4
    queries_per_client: int = 20
    relation: str = "minCost"
    zipf_s: float = 1.2
    modes: Tuple[Tuple[str, float], ...] = (("lineage", 1.0),)

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise EngineError(f"clients must be >= 1, got {self.clients}")
        if self.queries_per_client < 1:
            raise EngineError(
                f"queries_per_client must be >= 1, got {self.queries_per_client}"
            )


@dataclass
class ClientReport:
    """What the fleet observed: per-call latencies and error count."""

    issued: int = 0
    errors: int = 0
    commits: int = 0
    seconds: float = 0.0
    latencies: List[float] = field(default_factory=list)
    #: Per-query-mode latency samples (``latencies`` partitioned by the mode
    #: each call drew from the mix), for the mode-level breakdowns
    #: ``MetricsReport`` carries.
    mode_latencies: Dict[str, List[float]] = field(default_factory=dict)

    def summary(self) -> Dict[str, float]:
        from repro.durability.service import latency_summary

        return latency_summary(self.latencies)

    def mode_summaries(self) -> Dict[str, Dict[str, float]]:
        """Per-mode ``latency_summary`` payloads (shared histogram percentiles)."""
        from repro.durability.service import latency_summary

        return {
            mode: latency_summary(samples)
            for mode, samples in sorted(self.mode_latencies.items())
        }


def run_concurrent_clients(
    service,
    mix: ClientMix = ClientMix(),
    seed: int = 0,
    churn_batches: Sequence[ChurnBatch] = (),
) -> ClientReport:
    """Run the client fleet against *service*; returns the latency report.

    Clients are real threads issuing through ``service.query`` while the
    calling thread commits *churn_batches* (if any) through
    ``service.commit`` — single writer, many readers.  Targets are snapshot
    rows of ``mix.relation``; a row churned away mid-run makes its query
    fail, which is counted as an error rather than a crash (exactly what a
    real client would see).
    """
    rows = service.state(mix.relation)
    if not rows:
        raise EngineError(
            f"relation {mix.relation!r} is empty; seed the service before "
            "running clients"
        )
    sampler = ZipfSampler(len(rows), mix.zipf_s)
    report = ClientReport()
    report_lock = threading.Lock()

    def client(index: int) -> None:
        rng = random.Random(f"clients:{seed}:{index}")
        for _ in range(mix.queries_per_client):
            rank = sampler.sample(rng)
            values = list(rows[min(rank, len(rows) - 1)])
            mode = weighted_choice(rng, mix.modes)
            started = time.perf_counter()
            try:
                service.query(mix.relation, values, mode=mode)
                failed = False
            except NetTrailsError:
                failed = True
            elapsed = time.perf_counter() - started
            with report_lock:
                report.issued += 1
                report.errors += failed
                report.latencies.append(elapsed)
                report.mode_latencies.setdefault(mode, []).append(elapsed)

    started = time.perf_counter()
    threads = [
        threading.Thread(target=client, args=(index,), name=f"client-{index}")
        for index in range(mix.clients)
    ]
    for thread in threads:
        thread.start()
    for batch in churn_batches:
        ops = batch.ops if isinstance(batch, ChurnBatch) else tuple(batch)
        service.commit(ops)
        report.commits += 1
    for thread in threads:
        thread.join()
    report.seconds = time.perf_counter() - started
    return report
