"""Query-mix generators: Zipf-skewed provenance-query waves.

Provenance queries in a monitoring deployment are heavily skewed — operators
keep re-querying the few tuples that matter (the flapping route, the hub's
best path) while the long tail is touched rarely.  :func:`query_wave` models
that: targets are drawn from the queried relation's current global contents
with Zipf-skewed ranks, and the query mode / traversal strategy are drawn
from weighted mixes.  Everything is driven by the caller's seeded RNG, so a
wave is a pure function of (RNG state, relation contents) and replays
identically across backends.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.optimizations import QueryOptions
from repro.workloads.spec import QueryMixSpec


class ZipfSampler:
    """Sample ranks 0..n-1 with probability proportional to 1/(rank+1)^s.

    The cumulative weights are precomputed once, so sampling is a binary
    search — cheap enough to redraw every wave even at scale-profile sizes.
    """

    def __init__(self, n: int, s: float = 1.2):
        if n < 1:
            raise ValueError(f"ZipfSampler needs n >= 1, got {n}")
        self.n = n
        self.s = s
        self._cumulative: List[float] = []
        total = 0.0
        for rank in range(1, n + 1):
            total += 1.0 / (rank**s)
            self._cumulative.append(total)

    def sample(self, rng: random.Random) -> int:
        import bisect

        point = rng.random() * self._cumulative[-1]
        return bisect.bisect_left(self._cumulative, point)


def weighted_choice(rng: random.Random, pairs: Sequence[Tuple[str, float]]) -> str:
    """Pick one name from ``(name, weight)`` pairs."""
    total = sum(weight for _name, weight in pairs)
    point = rng.random() * total
    accumulated = 0.0
    for name, weight in pairs:
        accumulated += weight
        if point <= accumulated:
            return name
    return pairs[-1][0]


@dataclass(frozen=True)
class QueryCall:
    """One fully resolved query: mode + target + options."""

    mode: str
    relation: str
    values: Tuple[object, ...]
    options: QueryOptions

    def issue(self, engine):
        """Run this query against a :class:`DistributedQueryEngine`."""
        method = getattr(engine, self.mode)
        return method(self.relation, list(self.values), options=self.options)


def query_wave(
    rng: random.Random, mix: QueryMixSpec, rows: Sequence[Tuple[object, ...]]
) -> List[QueryCall]:
    """Resolve one wave of queries against the relation's current *rows*.

    Rows are ranked canonically (sorted by repr) before Zipf sampling, so the
    same contents always yield the same rank order regardless of how the
    runtime enumerated them.  Returns an empty wave while the relation is
    empty (e.g. before the first announcement batch).
    """
    ranked = sorted(rows, key=repr)
    if not ranked:
        return []
    sampler = ZipfSampler(len(ranked), mix.zipf_s)
    calls: List[QueryCall] = []
    for _ in range(mix.queries_per_wave):
        values = ranked[sampler.sample(rng)]
        mode = weighted_choice(rng, mix.modes)
        traversal = weighted_choice(rng, mix.traversals)
        calls.append(
            QueryCall(
                mode=mode,
                relation=mix.relation,
                values=tuple(values),
                options=QueryOptions(use_cache=mix.use_cache, traversal=traversal),
            )
        )
    return calls
