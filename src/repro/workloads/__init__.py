"""Workload & scenario subsystem: describe, generate and drive dynamic runs.

The paper's demonstration is provenance staying correct and queryable *while
the network misbehaves*.  This package owns that misbehaviour repo-wide:

* :mod:`repro.workloads.spec` — :class:`ScenarioSpec` and friends: frozen,
  serialisable descriptions of a whole workload (topology + protocol +
  seeded churn schedule + query mix + runtime knobs);
* :mod:`repro.workloads.churn` — seeded churn generators (link flaps, node
  fail/recover, prefix announce/withdraw, hot-hub skew, the equivalence
  harness's random link churn), each an iterator of timed delta batches;
* :mod:`repro.workloads.queries` — Zipf-skewed provenance-query waves;
* :mod:`repro.workloads.clients` — concurrent client threads driving a
  :class:`~repro.durability.service.ServiceRuntime` with Zipf query mixes
  while churn commits interleave (latency percentiles out);
* :mod:`repro.workloads.driver` — :class:`ScenarioDriver`, which assembles a
  runtime from a spec, interleaves churn batches with query waves, and emits
  a structured :class:`MetricsReport`;
* :mod:`repro.workloads.profiles` — the named catalogue (``smoke`` /
  ``demo`` / ``scale``) benchmarks and CI run.

Determinism contract: equal specs ⇒ bit-identical churn traces, generated
topologies and report deterministic views, on every execution backend.
"""

from repro.workloads.churn import (
    GENERATORS,
    ChurnBatch,
    ChurnOp,
    apply_batch,
    apply_churn_op,
    scenario_trace,
    trace_digest,
)
from repro.workloads.clients import ClientMix, ClientReport, run_concurrent_clients
from repro.workloads.driver import MetricsReport, PhaseMetrics, ScenarioDriver, run_scenario
from repro.workloads.profiles import PROFILES, build_profile, demo, scale, smoke
from repro.workloads.queries import QueryCall, ZipfSampler, query_wave
from repro.workloads.spec import (
    TOPOLOGY_KINDS,
    ChurnPhase,
    QueryMixSpec,
    RuntimeKnobs,
    ScenarioSpec,
    TopologySpec,
)

__all__ = [
    "ChurnBatch",
    "ChurnOp",
    "ChurnPhase",
    "ClientMix",
    "ClientReport",
    "GENERATORS",
    "MetricsReport",
    "PROFILES",
    "PhaseMetrics",
    "QueryCall",
    "QueryMixSpec",
    "RuntimeKnobs",
    "ScenarioDriver",
    "ScenarioSpec",
    "TOPOLOGY_KINDS",
    "TopologySpec",
    "ZipfSampler",
    "apply_batch",
    "apply_churn_op",
    "build_profile",
    "demo",
    "query_wave",
    "run_concurrent_clients",
    "run_scenario",
    "scale",
    "scenario_trace",
    "smoke",
    "trace_digest",
]
