"""Scenario specifications: declarative descriptions of whole workloads.

A :class:`ScenarioSpec` captures everything needed to reproduce a dynamic
workload bit for bit: the (seeded) topology to generate, the protocol to
run, a schedule of seeded churn phases, an optional query mix, and the
runtime knobs (execution backend, store shards, batch mode, query-cache
capacity).  Specs are plain frozen dataclasses — hashable, comparable,
serialisable via :meth:`ScenarioSpec.to_dict` — so benchmarks and CI jobs
can name them, sweep single fields and log exactly what ran.

The determinism contract: two drivers running equal specs produce identical
churn traces, identical generated topologies and identical
:class:`~repro.workloads.driver.MetricsReport` deterministic views (message /
event / round / cache counters — everything except wall-clock), on every
execution backend.  ``tests/workloads/test_determinism.py`` pins this.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.errors import EngineError
from repro.engine import topology as topology_generators
from repro.engine.topology import Topology

#: Topology generator registry: kind -> callable returning a Topology.
#: Every generator is deterministic for fixed parameters (seeded where
#: randomness is involved), which the spec's determinism contract relies on.
TOPOLOGY_KINDS: Dict[str, Callable[..., Topology]] = {
    "line": topology_generators.line,
    "ring": topology_generators.ring,
    "star": topology_generators.star,
    "grid": topology_generators.grid,
    "random_connected": topology_generators.random_connected,
    "isp_hierarchy": topology_generators.isp_hierarchy,
    "power_law": topology_generators.power_law,
}


def _freeze(params: Optional[Dict[str, object]]) -> Tuple[Tuple[str, object], ...]:
    return tuple(sorted((params or {}).items()))


@dataclass(frozen=True)
class TopologySpec:
    """Which topology generator to run, with which parameters."""

    kind: str
    params: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def make(cls, kind: str, **params: object) -> "TopologySpec":
        if kind not in TOPOLOGY_KINDS:
            raise EngineError(
                f"unknown topology kind {kind!r}; known kinds: {sorted(TOPOLOGY_KINDS)}"
            )
        return cls(kind=kind, params=_freeze(dict(params)))

    def build(self) -> Topology:
        return TOPOLOGY_KINDS[self.kind](**dict(self.params))


@dataclass(frozen=True)
class ChurnPhase:
    """One phase of the churn schedule: a named generator plus its knobs.

    ``generator`` names an entry of :data:`repro.workloads.churn.GENERATORS`;
    ``batches`` budgets how many timed delta batches of churn the phase
    emits (generators that leave links or nodes down append trailing
    restore batches beyond the budget, so a phase always hands the next one
    a whole topology); the remaining parameters are passed through to the
    generator.  Each phase derives its RNG from the scenario seed plus
    ``seed_offset``, so phases are independently reproducible and
    reordering one phase's knobs never perturbs another's trace.
    """

    generator: str
    batches: int
    params: Tuple[Tuple[str, object], ...] = ()
    seed_offset: int = 0
    label: Optional[str] = None

    @classmethod
    def make(
        cls,
        generator: str,
        batches: int,
        seed_offset: int = 0,
        label: Optional[str] = None,
        **params: object,
    ) -> "ChurnPhase":
        return cls(
            generator=generator,
            batches=batches,
            params=_freeze(dict(params)),
            seed_offset=seed_offset,
            label=label,
        )

    @property
    def name(self) -> str:
        return self.label or self.generator


@dataclass(frozen=True)
class QueryMixSpec:
    """How provenance-query waves interleave with churn.

    After every ``wave_every``-th churn batch the driver issues
    ``queries_per_wave`` queries against *relation*.  Targets are drawn from
    the relation's current global contents with Zipf-skewed ranks (exponent
    ``zipf_s``; rank 1 = the canonically first tuple), so a small working set
    is queried over and over — the regime the paper's caching optimisation
    targets — while the tail still sees occasional traffic.  ``modes`` and
    ``traversals`` are weighted mixes over query modes (``lineage`` /
    ``participants`` / ``subgraph``) and traversal strategies.
    """

    relation: str
    queries_per_wave: int = 3
    wave_every: int = 1
    modes: Tuple[Tuple[str, float], ...] = (("lineage", 1.0),)
    traversals: Tuple[Tuple[str, float], ...] = (("sequential", 1.0),)
    zipf_s: float = 1.2
    use_cache: bool = True

    def __post_init__(self) -> None:
        if self.queries_per_wave < 1:
            raise EngineError(
                f"queries_per_wave must be >= 1, got {self.queries_per_wave}"
            )
        if self.wave_every < 1:
            raise EngineError(f"wave_every must be >= 1, got {self.wave_every}")


@dataclass(frozen=True)
class RuntimeKnobs:
    """The :class:`~repro.engine.runtime.NetTrailsRuntime` configuration axis.

    ``backend=None`` defers to the ``NETTRAILS_BACKEND`` environment hook
    (the CI matrix), and ``query_cache_capacity=None`` likewise defers to
    ``NETTRAILS_QUERY_CACHE_CAPACITY`` — profiles only pin what they sweep.
    """

    backend: Optional[str] = None
    backend_workers: Optional[int] = None
    num_shards: Optional[int] = None
    shard_workers: int = 0
    batch_deltas: bool = True
    query_cache_capacity: Optional[int] = None
    #: ``None`` defers to ``NETTRAILS_INTERVAL_INDEX`` (the CI matrix hook);
    #: an explicit bool pins the interval-index query path on or off.
    use_interval_index: Optional[bool] = None
    #: ``None`` defers to ``NETTRAILS_COLUMNAR`` (the CI matrix hook); an
    #: explicit bool pins the columnar join core on or off.
    columnar: Optional[bool] = None
    #: ``None`` defers to ``NETTRAILS_OBSERVABILITY`` (the CI matrix hook);
    #: an explicit bool pins the observability layer on or off.
    observability: Optional[bool] = None

    def runtime_kwargs(self) -> Dict[str, object]:
        return {
            "backend": self.backend,
            "backend_workers": self.backend_workers,
            "num_shards": self.num_shards,
            "shard_workers": self.shard_workers,
            "batch_deltas": self.batch_deltas,
            "query_cache_capacity": self.query_cache_capacity,
            "use_interval_index": self.use_interval_index,
            "columnar": self.columnar,
            "observability": self.observability,
        }


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, reproducible workload description.

    ``batch_size`` re-chunks the churn op stream: ``None`` keeps each
    generator's native batches (one quiescence window per emitted batch),
    an integer ``n`` applies exactly ``n`` churn ops per quiescence window —
    the axis the E15 saturation benchmark sweeps.
    """

    name: str
    topology: TopologySpec
    protocol: str
    seed: int = 0
    churn: Tuple[ChurnPhase, ...] = ()
    queries: Optional[QueryMixSpec] = None
    knobs: RuntimeKnobs = field(default_factory=RuntimeKnobs)
    batch_size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.batch_size is not None and self.batch_size < 1:
            raise EngineError(f"batch_size must be >= 1 or None, got {self.batch_size}")

    def with_knobs(self, **changes: object) -> "ScenarioSpec":
        """A copy with some :class:`RuntimeKnobs` fields replaced."""
        from dataclasses import replace

        return replace(self, knobs=replace(self.knobs, **changes))

    def with_batch_size(self, batch_size: Optional[int]) -> "ScenarioSpec":
        from dataclasses import replace

        return replace(self, batch_size=batch_size)

    def with_seed(self, seed: int) -> "ScenarioSpec":
        from dataclasses import replace

        return replace(self, seed=seed)

    def to_dict(self) -> Dict[str, object]:
        """A plain-data rendering; tuple-valued fields stay tuples, which
        ``json.dumps`` serialises as arrays."""
        return asdict(self)
