"""The scenario driver: specs in, metrics out.

:class:`ScenarioDriver` assembles a :class:`~repro.engine.runtime.NetTrailsRuntime`
from a :class:`~repro.workloads.spec.ScenarioSpec`, replays the spec's
materialised churn trace batch by batch (re-chunked to ``spec.batch_size``
ops per quiescence window when set), interleaves Zipf-skewed query waves per
the spec's query mix, and emits a structured :class:`MetricsReport` — per
phase and in total: base-tuple deltas applied, network messages, simulator
events and rounds, wall-clock seconds, query traffic and the query-cache
counters.

Reports split *churn* traffic from *query* traffic (each activity is
book-ended by counter snapshots), so a batch-size sweep compares churn
absorption costs without query noise.  Every counter except wall-clock is
deterministic: :meth:`MetricsReport.deterministic_view` is the exact payload
the determinism tests compare across runs and across execution backends.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import EngineError
from repro.engine.runtime import NetTrailsRuntime
from repro.workloads.churn import (
    ChurnBatch,
    ChurnOp,
    apply_churn_op,
    phase_rng,
    scenario_trace,
    trace_digest,
)
from repro.workloads.queries import query_wave
from repro.workloads.spec import ScenarioSpec

#: Phase name used for the initial topology/link seeding.
SEED_PHASE = "seed"


@dataclass
class PhaseMetrics:
    """Counters for one phase (seeding, or one churn phase's batches)."""

    name: str
    batches: int = 0
    ops: int = 0
    deltas: int = 0
    messages: int = 0
    events: int = 0
    rounds: int = 0
    seconds: float = 0.0
    queries: int = 0
    query_messages: int = 0
    query_rounds: int = 0

    def deterministic_view(self) -> Dict[str, object]:
        view = {
            "name": self.name,
            "batches": self.batches,
            "ops": self.ops,
            "deltas": self.deltas,
            "messages": self.messages,
            "events": self.events,
            "rounds": self.rounds,
            "queries": self.queries,
            "query_messages": self.query_messages,
            "query_rounds": self.query_rounds,
        }
        return view


@dataclass
class MetricsReport:
    """What one scenario run cost, structured for artifacts and assertions."""

    scenario: str
    seed: int
    backend: str
    batch_size: Optional[int]
    nodes: int
    edges: int
    trace_digest: str
    #: Worker count of the execution backend (1 for serial).  Like
    #: ``backend``, an identity field: excluded from
    #: :meth:`deterministic_view` because every worker count must produce
    #: identical observable state.
    backend_workers: int = 1
    phases: List[PhaseMetrics] = field(default_factory=list)
    cache: Dict[str, int] = field(default_factory=dict)
    #: Interval-index counters summed over all partitions (empty unless the
    #: run's query engine used the interval path).
    interval: Dict[str, int] = field(default_factory=dict)
    seconds: float = 0.0
    #: Wall-clock latency percentiles (``query_p50`` / ``query_p95`` /
    #: ``query_p99`` etc.) from a concurrent-client run
    #: (:func:`repro.workloads.clients.run_concurrent_clients` /
    #: :meth:`repro.durability.service.ServiceRuntime.latency_metrics`).
    #: Wall-clock, so *not* part of :meth:`deterministic_view`.
    latency: Dict[str, float] = field(default_factory=dict)
    #: Per-query-mode latency breakdown: one ``latency_summary`` payload per
    #: mode (``lineage`` / ``participants`` / ``subgraph``), filled either by
    #: the driver from its per-wave-group timings or from a client fleet's
    #: :meth:`repro.workloads.clients.ClientReport.mode_summaries`.
    #: Wall-clock, so *not* part of :meth:`deterministic_view`.
    latency_by_mode: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Recovery-time metrics (``genesis_seconds`` / ``checkpoint_seconds``,
    #: batches/ops replayed, truncated bytes) from
    #: :meth:`repro.durability.recovery.RecoveryResult.recovery_metrics`.
    #: Wall-clock, so *not* part of :meth:`deterministic_view`.
    recovery: Dict[str, float] = field(default_factory=dict)

    def totals(self) -> Dict[str, int]:
        keys = (
            "batches",
            "ops",
            "deltas",
            "messages",
            "events",
            "rounds",
            "queries",
            "query_messages",
            "query_rounds",
        )
        return {key: sum(getattr(phase, key) for phase in self.phases) for key in keys}

    def phase(self, name: str) -> PhaseMetrics:
        for phase in self.phases:
            if phase.name == name:
                return phase
        raise KeyError(f"no phase named {name!r} in report for {self.scenario!r}")

    def deterministic_view(self) -> Dict[str, object]:
        """Everything a run observes except wall-clock and backend identity.

        Two runs of equal specs — on any execution backend — must produce
        equal views; this is the payload the determinism suite compares.
        """
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "batch_size": self.batch_size,
            "nodes": self.nodes,
            "edges": self.edges,
            "trace_digest": self.trace_digest,
            "phases": [phase.deterministic_view() for phase in self.phases],
            "cache": dict(self.cache),
            "interval": dict(self.interval),
            "totals": self.totals(),
        }

    def to_dict(self) -> Dict[str, object]:
        document = self.deterministic_view()
        document["backend"] = self.backend
        document["backend_workers"] = self.backend_workers
        document["seconds"] = round(self.seconds, 3)
        if self.latency:
            document["latency"] = dict(self.latency)
        if self.latency_by_mode:
            document["latency_by_mode"] = {
                mode: dict(summary) for mode, summary in self.latency_by_mode.items()
            }
        if self.recovery:
            document["recovery"] = dict(self.recovery)
        for phase, rendered in zip(self.phases, document["phases"]):
            rendered["seconds"] = round(phase.seconds, 3)
        return document


class ScenarioDriver:
    """Build the runtime for a spec, replay its trace, measure everything.

    The driver is a context manager (it owns the runtime's worker threads —
    and, under the process backend, its forked worker processes)::

        with ScenarioDriver(profiles.smoke()) as driver:
            report = driver.run()

    The materialised churn trace is available as ``driver.trace`` before
    :meth:`run` is called, and the live runtime as ``driver.runtime`` — the
    equivalence harnesses use both to replay one trace onto many runtimes.
    Runtime configuration comes entirely from ``spec.knobs``
    (:class:`~repro.workloads.spec.RuntimeKnobs`), whose fields map onto
    :class:`~repro.engine.runtime.NetTrailsRuntime` constructor knobs — that
    class docstring holds the canonical knob and ``NETTRAILS_*``
    environment-hook table.  The emitted
    :class:`MetricsReport` records backend identity (``backend``,
    ``backend_workers``) for the artifact trail but excludes it from
    :meth:`MetricsReport.deterministic_view`, because every backend must
    reproduce the same counters bit for bit.
    """

    def __init__(self, spec: ScenarioSpec):
        self.spec = spec
        self.topology = spec.topology.build()
        self._initial_nodes = self.topology.node_count()
        self._initial_edges = self.topology.edge_count()
        self.trace: List[ChurnBatch] = scenario_trace(spec, mirror=self.topology)
        self.runtime = NetTrailsRuntime(
            self._protocol_module().program(),
            copy.deepcopy(self.topology),
            **self.spec.knobs.runtime_kwargs(),
        )
        self._engine = None
        self._symmetric_links = True
        self._mode_latencies: Dict[str, List[float]] = {}
        self.report: Optional[MetricsReport] = None

    def _protocol_module(self):
        from repro.protocols import PROTOCOLS

        if self.spec.protocol not in PROTOCOLS:
            raise EngineError(
                f"unknown protocol {self.spec.protocol!r}; "
                f"known protocols: {sorted(PROTOCOLS)}"
            )
        return PROTOCOLS[self.spec.protocol]

    # -- lifecycle --------------------------------------------------------------

    def close(self) -> None:
        self.runtime.close()

    def __enter__(self) -> "ScenarioDriver":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # -- execution --------------------------------------------------------------

    def _windows(self) -> List[Tuple[str, Tuple[ChurnOp, ...]]]:
        """The trace re-chunked into quiescence windows.

        ``batch_size=None`` keeps the generators' native batches; an integer
        packs exactly that many ops per window (the last window of the run
        may be short).  A window is attributed to the phase of its first op.
        """
        if self.spec.batch_size is None:
            return [(batch.phase, batch.ops) for batch in self.trace if batch.ops]
        flat: List[Tuple[str, ChurnOp]] = [
            (batch.phase, op) for batch in self.trace for op in batch.ops
        ]
        size = self.spec.batch_size
        windows = []
        for start in range(0, len(flat), size):
            chunk = flat[start : start + size]
            windows.append((chunk[0][0], tuple(op for _phase, op in chunk)))
        return windows

    def _phase_metrics(self, phases: Dict[str, PhaseMetrics], name: str) -> PhaseMetrics:
        if name not in phases:
            phases[name] = PhaseMetrics(name=name)
        return phases[name]

    def _snapshot(self) -> Tuple[int, int, int]:
        return (
            self.runtime.message_stats().messages,
            self.runtime.simulator.processed_events,
            self.runtime.simulator.rounds,
        )

    def _issue_wave(self, rng, metrics: PhaseMetrics) -> None:
        mix = self.spec.queries
        rows = self.runtime.state(mix.relation)
        calls = query_wave(rng, mix, rows)
        if not calls:
            return
        if self._engine is None:
            from repro.core.query import DistributedQueryEngine

            self._engine = DistributedQueryEngine(self.runtime)
        # The wave goes out in (mode, options) groups so the interval path
        # can share its per-partition wave messages across a whole group
        # (query_batch); with the interval index off each group degrades to
        # the same one-query-at-a-time issuing as before.  Message/round
        # deltas are measured around each group, which on the batched path
        # is the only non-overcounting attribution.
        groups: Dict[Tuple[str, object], List] = {}
        order: List[Tuple[str, object]] = []
        for call in calls:
            key = (call.mode, call.options)
            if key not in groups:
                order.append(key)
            groups.setdefault(key, []).append(call)
        for key in order:
            group = groups[key]
            mode, options = key
            messages_before = self.runtime.message_stats().messages
            rounds_before = self.runtime.simulator.rounds
            group_started = time.perf_counter()
            results = self._engine.query_batch(
                mix.relation,
                [list(call.values) for call in group],
                mode=mode,
                options=options,
            )
            self._mode_latencies.setdefault(mode, []).append(
                time.perf_counter() - group_started
            )
            metrics.queries += len(results)
            metrics.query_messages += (
                self.runtime.message_stats().messages - messages_before
            )
            metrics.query_rounds += self.runtime.simulator.rounds - rounds_before

    def run(self) -> MetricsReport:
        """Seed, churn, query; returns (and stores) the metrics report."""
        if self.report is not None:
            raise EngineError("ScenarioDriver.run() may only be called once per driver")
        started = time.perf_counter()
        phases: Dict[str, PhaseMetrics] = {}

        seed_metrics = self._phase_metrics(phases, SEED_PHASE)
        before = self._snapshot()
        phase_started = time.perf_counter()
        seeded = self.runtime.seed_links(run=True)
        seed_metrics.seconds += time.perf_counter() - phase_started
        after = self._snapshot()
        seed_metrics.batches += 1
        seed_metrics.ops += seeded
        seed_metrics.deltas += seeded
        seed_metrics.messages += after[0] - before[0]
        seed_metrics.events += after[1] - before[1]
        seed_metrics.rounds += after[2] - before[2]

        query_rng = (
            phase_rng(self.spec.seed, _QUERY_PHASE_KEY) if self.spec.queries else None
        )
        for window_index, (phase_name, ops) in enumerate(self._windows()):
            metrics = self._phase_metrics(phases, phase_name)
            before = self._snapshot()
            phase_started = time.perf_counter()
            for op in ops:
                apply_churn_op(self.runtime, op)
            self.runtime.run_to_quiescence()
            metrics.seconds += time.perf_counter() - phase_started
            after = self._snapshot()
            metrics.batches += 1
            metrics.ops += len(ops)
            metrics.deltas += sum(op.base_deltas(self._symmetric_links) for op in ops)
            metrics.messages += after[0] - before[0]
            metrics.events += after[1] - before[1]
            metrics.rounds += after[2] - before[2]
            if query_rng is not None and (window_index + 1) % self.spec.queries.wave_every == 0:
                phase_started = time.perf_counter()
                self._issue_wave(query_rng, metrics)
                metrics.seconds += time.perf_counter() - phase_started

        self.report = MetricsReport(
            scenario=self.spec.name,
            seed=self.spec.seed,
            backend=self.runtime.backend.name,
            backend_workers=getattr(self.runtime.backend, "workers", 1),
            batch_size=self.spec.batch_size,
            nodes=self._initial_nodes,
            edges=self._initial_edges,
            trace_digest=trace_digest(self.trace),
            phases=list(phases.values()),
            cache=dict(self._engine.cache_totals()) if self._engine is not None else {},
            interval=dict(self._engine.interval_totals()) if self._engine is not None else {},
            latency_by_mode=self._mode_latency_summaries(),
            seconds=time.perf_counter() - started,
        )
        return self.report

    def _mode_latency_summaries(self) -> Dict[str, Dict[str, float]]:
        """Per-mode ``latency_summary`` of wave-group wall times (one sample
        per issued ``query_batch`` group, labeled by its query mode)."""
        from repro.durability.service import latency_summary

        return {
            mode: {key: round(value, 6) for key, value in latency_summary(samples).items()}
            for mode, samples in sorted(self._mode_latencies.items())
        }


class _QueryPhaseKey:
    """Stands in for a ChurnPhase in :func:`phase_rng` for the query stream."""

    generator = "queries"
    seed_offset = -1


_QUERY_PHASE_KEY = _QueryPhaseKey()


def run_scenario(spec: ScenarioSpec) -> MetricsReport:
    """One-shot convenience: build a driver, run it, close it, return the report."""
    with ScenarioDriver(spec) as driver:
        return driver.run()
