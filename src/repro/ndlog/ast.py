"""Abstract syntax tree for NDlog programs.

The AST mirrors the surface syntax used in the NetTrails / declarative
networking papers::

    materialize(link, infinity, infinity, keys(1,2)).

    r1 pathCost(@S,D,C)      :- link(@S,D,C).
    r2 pathCost(@S,D,C1+C2)  :- link(@S,Z,C1), pathCost(@Z,D,C2).
    r3 minCost(@S,D,min<C>)  :- pathCost(@S,D,C).

    br1 outputRoute(@AS,R2,Prefix,Route2) ?-
        inputRoute(@AS,R1,Prefix,Route1),
        f_isExtend(Route2,Route1,AS) == 1.

Terms are immutable; rules and programs are lightweight containers.  All
nodes render back to NDlog text via ``str()`` which keeps error messages,
tests and the provenance-rewrite output readable.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


class Term:
    """Base class for NDlog terms (arguments of atoms and expressions)."""

    def variables(self) -> Set[str]:
        """Return the set of variable names mentioned by this term."""
        raise NotImplementedError

    def substitute(self, bindings: Dict[str, object]) -> "Term":
        """Return a copy of this term with bound variables replaced by constants."""
        raise NotImplementedError


@dataclass(frozen=True)
class Variable(Term):
    """A logic variable, e.g. ``S`` or ``Cost``."""

    name: str

    def variables(self) -> Set[str]:
        return {self.name}

    def substitute(self, bindings: Dict[str, object]) -> Term:
        if self.name in bindings:
            return Constant(bindings[self.name])
        return self

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Constant(Term):
    """A literal constant: number, string, boolean or tuple (list value)."""

    value: object

    def variables(self) -> Set[str]:
        return set()

    def substitute(self, bindings: Dict[str, object]) -> Term:
        return self

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f'"{self.value}"'
        if isinstance(self.value, tuple):
            inner = ", ".join(str(Constant(v)) for v in self.value)
            return f"[{inner}]"
        return str(self.value)


@dataclass(frozen=True)
class Expression(Term):
    """A binary expression such as ``C1 + C2`` or ``Cost < 10``."""

    op: str
    left: Term
    right: Term

    ARITHMETIC_OPS = ("+", "-", "*", "/", "%")
    COMPARISON_OPS = ("==", "!=", "<", "<=", ">", ">=")

    def variables(self) -> Set[str]:
        return self.left.variables() | self.right.variables()

    def substitute(self, bindings: Dict[str, object]) -> Term:
        return Expression(self.op, self.left.substitute(bindings), self.right.substitute(bindings))

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class FunctionCall(Term):
    """A call to a builtin function, e.g. ``f_concat(P, D)``."""

    name: str
    args: Tuple[Term, ...]

    def variables(self) -> Set[str]:
        result: Set[str] = set()
        for arg in self.args:
            result |= arg.variables()
        return result

    def substitute(self, bindings: Dict[str, object]) -> Term:
        return FunctionCall(self.name, tuple(a.substitute(bindings) for a in self.args))

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


@dataclass(frozen=True)
class Aggregate(Term):
    """An aggregate head term, e.g. ``min<C>`` or ``count<*>``.

    ``variable`` is ``None`` for ``count<*>``.
    """

    func: str
    variable: Optional[str]

    SUPPORTED = ("min", "max", "count", "sum", "avg")

    def variables(self) -> Set[str]:
        return {self.variable} if self.variable else set()

    def substitute(self, bindings: Dict[str, object]) -> Term:
        return self

    def __str__(self) -> str:
        inner = self.variable if self.variable else "*"
        return f"{self.func}<{inner}>"


def term_constants(term: Term) -> Iterator[object]:
    """Yield every constant value appearing inside *term* (depth-first)."""
    if isinstance(term, Constant):
        yield term.value
    elif isinstance(term, Expression):
        yield from term_constants(term.left)
        yield from term_constants(term.right)
    elif isinstance(term, FunctionCall):
        for arg in term.args:
            yield from term_constants(arg)


# ---------------------------------------------------------------------------
# Atoms and body elements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Atom:
    """A predicate applied to terms, with an optional location specifier.

    ``location_index`` is the position of the argument carrying the ``@``
    location specifier (``None`` if the atom has no specifier, which is only
    permitted for purely local relations and builtin provenance relations).
    """

    relation: str
    terms: Tuple[Term, ...]
    location_index: Optional[int] = None

    @property
    def arity(self) -> int:
        return len(self.terms)

    @property
    def location_term(self) -> Optional[Term]:
        if self.location_index is None:
            return None
        return self.terms[self.location_index]

    def variables(self) -> Set[str]:
        result: Set[str] = set()
        for term in self.terms:
            result |= term.variables()
        return result

    def substitute(self, bindings: Dict[str, object]) -> "Atom":
        return Atom(
            self.relation,
            tuple(t.substitute(bindings) for t in self.terms),
            self.location_index,
        )

    def __str__(self) -> str:
        rendered = []
        for index, term in enumerate(self.terms):
            prefix = "@" if index == self.location_index else ""
            rendered.append(f"{prefix}{term}")
        return f"{self.relation}({', '.join(rendered)})"


@dataclass(frozen=True)
class Literal:
    """A body atom, possibly negated."""

    atom: Atom
    negated: bool = False

    def variables(self) -> Set[str]:
        return self.atom.variables()

    def __str__(self) -> str:
        if self.negated:
            return f"!{self.atom}"
        return str(self.atom)


@dataclass(frozen=True)
class Condition:
    """A boolean constraint in a rule body, e.g. ``C < 10`` or ``f_member(P, D) == 1``."""

    expression: Term

    def variables(self) -> Set[str]:
        return self.expression.variables()

    def __str__(self) -> str:
        return str(self.expression)


@dataclass(frozen=True)
class Assignment:
    """A binding of a fresh variable to an expression, e.g. ``C := C1 + C2``."""

    variable: str
    expression: Term

    def variables(self) -> Set[str]:
        return {self.variable} | self.expression.variables()

    def __str__(self) -> str:
        return f"{self.variable} := {self.expression}"


BodyElement = Union[Literal, Condition, Assignment]


# ---------------------------------------------------------------------------
# Rules, declarations and programs
# ---------------------------------------------------------------------------

_rule_counter = itertools.count(1)


@dataclass
class Rule:
    """A single NDlog rule.

    ``is_maybe`` marks "maybe" rules (written ``?-``), which describe possible
    causal relationships between messages entering and leaving a legacy
    application rather than hard derivations.
    """

    head: Atom
    body: Tuple[BodyElement, ...]
    name: str = ""
    is_maybe: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            self.name = f"rule{next(_rule_counter)}"
        self.body = tuple(self.body)

    # -- convenience accessors ------------------------------------------------

    @property
    def literals(self) -> Tuple[Literal, ...]:
        return tuple(e for e in self.body if isinstance(e, Literal))

    @property
    def positive_literals(self) -> Tuple[Literal, ...]:
        return tuple(e for e in self.body if isinstance(e, Literal) and not e.negated)

    @property
    def negative_literals(self) -> Tuple[Literal, ...]:
        return tuple(e for e in self.body if isinstance(e, Literal) and e.negated)

    @property
    def conditions(self) -> Tuple[Condition, ...]:
        return tuple(e for e in self.body if isinstance(e, Condition))

    @property
    def assignments(self) -> Tuple[Assignment, ...]:
        return tuple(e for e in self.body if isinstance(e, Assignment))

    @property
    def aggregate(self) -> Optional[Aggregate]:
        """Return the single aggregate term in the head, if any."""
        for term in self.head.terms:
            if isinstance(term, Aggregate):
                return term
        return None

    @property
    def has_aggregate(self) -> bool:
        return self.aggregate is not None

    def head_variables(self) -> Set[str]:
        return self.head.variables()

    def body_variables(self) -> Set[str]:
        result: Set[str] = set()
        for element in self.body:
            result |= element.variables()
        return result

    def body_relations(self) -> Set[str]:
        return {lit.atom.relation for lit in self.literals}

    def location_variables(self) -> Set[str]:
        """Return the distinct location-specifier variable names used in the body."""
        names: Set[str] = set()
        for literal in self.literals:
            term = literal.atom.location_term
            if isinstance(term, Variable):
                names.add(term.name)
        return names

    def is_local(self) -> bool:
        """True when every body atom is located at the same node variable."""
        return len(self.location_variables()) <= 1

    def rename(self, name: str) -> "Rule":
        return Rule(head=self.head, body=self.body, name=name, is_maybe=self.is_maybe)

    def __str__(self) -> str:
        separator = "?-" if self.is_maybe else ":-"
        body_text = ",\n    ".join(str(e) for e in self.body)
        return f"{self.name} {self.head} {separator}\n    {body_text}."


@dataclass(frozen=True)
class Materialize:
    """A ``materialize`` declaration for a relation.

    ``lifetime`` and ``max_size`` use ``None`` to mean *infinity* (as in the
    surface syntax).  ``keys`` holds the 1-based positions of the primary-key
    attributes; inserting a tuple whose key already exists replaces the old
    tuple, matching P2/RapidNet semantics.
    """

    relation: str
    lifetime: Optional[float] = None
    max_size: Optional[int] = None
    keys: Tuple[int, ...] = ()

    def __str__(self) -> str:
        lifetime = "infinity" if self.lifetime is None else str(self.lifetime)
        size = "infinity" if self.max_size is None else str(self.max_size)
        keys = ", ".join(str(k) for k in self.keys)
        return f"materialize({self.relation}, {lifetime}, {size}, keys({keys}))."


@dataclass
class Program:
    """A full NDlog program: declarations plus rules."""

    name: str
    rules: List[Rule] = field(default_factory=list)
    materialized: Dict[str, Materialize] = field(default_factory=dict)

    def add_rule(self, rule: Rule) -> None:
        self.rules.append(rule)

    def add_materialize(self, declaration: Materialize) -> None:
        self.materialized[declaration.relation] = declaration

    # -- program structure ----------------------------------------------------

    def head_relations(self) -> Set[str]:
        """Relations that appear in some rule head (intensional relations)."""
        return {rule.head.relation for rule in self.rules}

    def body_relations(self) -> Set[str]:
        result: Set[str] = set()
        for rule in self.rules:
            result |= rule.body_relations()
        return result

    def relations(self) -> Set[str]:
        return self.head_relations() | self.body_relations() | set(self.materialized)

    def base_relations(self) -> Set[str]:
        """Relations never derived by any rule (extensional relations)."""
        return self.relations() - self.head_relations()

    def rules_for(self, relation: str) -> List[Rule]:
        return [rule for rule in self.rules if rule.head.relation == relation]

    def rule_named(self, name: str) -> Rule:
        for rule in self.rules:
            if rule.name == name:
                return rule
        raise KeyError(f"no rule named {name!r} in program {self.name!r}")

    def dependency_graph(self) -> Dict[str, Set[str]]:
        """Map each head relation to the set of relations its rules read."""
        graph: Dict[str, Set[str]] = {}
        for rule in self.rules:
            graph.setdefault(rule.head.relation, set()).update(rule.body_relations())
        return graph

    def strata(self) -> List[Set[str]]:
        """Partition relations into evaluation strata.

        Negation and *non-monotonic* aggregation (``count``/``sum``/``avg``)
        require their input relations to be fully computed in an earlier
        stratum.  Monotonic aggregates (``min``/``max``) are exempt: as in
        declarative networking practice, recursion through a ``min``
        aggregate (e.g. MINCOST's shortest-path recursion) is allowed and
        converges for monotone cost functions.  Returns a list of relation
        sets in evaluation order; raises :class:`ValueError` when the program
        is not stratifiable (a relation depends negatively / through a
        non-monotonic aggregate on itself, directly or transitively).
        """
        relations = sorted(self.relations())
        # Edge (a -> b) means "a depends on b"; weight 1 when the dependency
        # must cross a stratum boundary (negation or non-monotonic aggregation).
        edges: List[Tuple[str, str, int]] = []
        monotonic_aggregates = ("min", "max")
        for rule in self.rules:
            head = rule.head.relation
            aggregate = rule.aggregate
            non_monotonic = aggregate is not None and aggregate.func not in monotonic_aggregates
            for literal in rule.literals:
                strict = 1 if (literal.negated or non_monotonic) else 0
                edges.append((head, literal.atom.relation, strict))

        level = {relation: 0 for relation in relations}
        max_level = len(relations) + 1
        for _ in range(len(relations) * len(relations) + 1):
            changed = False
            for head, dep, strict in edges:
                required = level[dep] + strict
                if level[head] < required:
                    level[head] = required
                    if level[head] > max_level:
                        raise ValueError(
                            f"program {self.name!r} is not stratifiable "
                            f"(cycle through negation/aggregation at {head!r})"
                        )
                    changed = True
            if not changed:
                break

        grouped: Dict[int, Set[str]] = {}
        for relation, stratum in level.items():
            grouped.setdefault(stratum, set()).add(relation)
        return [grouped[key] for key in sorted(grouped)]

    def __str__(self) -> str:
        parts = [str(decl) for decl in self.materialized.values()]
        parts.extend(str(rule) for rule in self.rules)
        return "\n\n".join(parts)


# ---------------------------------------------------------------------------
# Construction helpers (used by protocol modules and tests)
# ---------------------------------------------------------------------------


def var(name: str) -> Variable:
    """Shorthand for :class:`Variable`."""
    return Variable(name)


def const(value: object) -> Constant:
    """Shorthand for :class:`Constant`."""
    return Constant(value)


def atom(relation: str, *terms: Union[Term, str, int, float], loc: Optional[int] = 0) -> Atom:
    """Build an :class:`Atom`, coercing raw strings/numbers to constants.

    Strings that look like variables (leading uppercase letter or underscore)
    become :class:`Variable`; everything else becomes :class:`Constant`.  The
    location specifier defaults to the first argument, matching NDlog
    convention; pass ``loc=None`` for location-free relations.
    """
    coerced: List[Term] = []
    for term in terms:
        coerced.append(_coerce(term))
    return Atom(relation, tuple(coerced), loc)


def _coerce(term: Union[Term, str, int, float, bool, tuple]) -> Term:
    if isinstance(term, Term):
        return term
    if isinstance(term, str) and term and (term[0].isupper() or term[0] == "_"):
        return Variable(term)
    if isinstance(term, (str, int, float, bool, tuple)):
        return Constant(term)
    raise TypeError(f"cannot coerce {term!r} to an NDlog term")
