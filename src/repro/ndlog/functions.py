"""Builtin ``f_*`` function library for NDlog rules.

NDlog rules call side-effect-free builtin functions for list/path
manipulation, hashing (used by the provenance rewrite) and protocol-specific
helpers such as ``f_isExtend`` from the paper's "maybe" rule ``br1``.

Functions operate on plain Python values.  Lists/paths are represented as
tuples so that tuples containing them remain hashable.  Booleans returned by
predicates are encoded as ``1`` / ``0`` so that rules can write
``f_member(P, D) == 0`` exactly as in the papers.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, Sequence, Tuple

from repro.errors import UnknownFunctionError


def _as_tuple(value: object) -> Tuple[object, ...]:
    """Coerce list-like values to tuples; scalars become singleton tuples."""
    if isinstance(value, tuple):
        return value
    if isinstance(value, list):
        return tuple(value)
    return (value,)


def _bool(flag: bool) -> int:
    return 1 if flag else 0


class FunctionRegistry:
    """A registry mapping builtin function names to Python callables.

    The registry is deliberately explicit: rules can only call functions that
    have been registered, and :class:`~repro.errors.UnknownFunctionError` is
    raised otherwise, so typos in NDlog programs fail loudly.
    """

    def __init__(self) -> None:
        self._functions: Dict[str, Callable[..., object]] = {}

    def register(self, name: str, func: Callable[..., object]) -> None:
        """Register *func* under *name*, replacing any previous binding."""
        self._functions[name] = func

    def registered(self, name: str) -> bool:
        return name in self._functions

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._functions))

    def call(self, name: str, args: Sequence[object]) -> object:
        if name not in self._functions:
            raise UnknownFunctionError(
                f"unknown builtin function {name!r}; registered functions: "
                f"{', '.join(self.names()) or '(none)'}"
            )
        return self._functions[name](*args)

    def copy(self) -> "FunctionRegistry":
        clone = FunctionRegistry()
        clone._functions = dict(self._functions)
        return clone


# ---------------------------------------------------------------------------
# Builtin implementations
# ---------------------------------------------------------------------------


def f_make_list(*items: object) -> Tuple[object, ...]:
    """Build a list (tuple) from its arguments: ``f_makeList(A, B)`` -> ``(A, B)``."""
    return tuple(items)


def f_init(first: object, second: object) -> Tuple[object, ...]:
    """Initialise a two-element path, e.g. ``f_init(S, D)`` -> ``(S, D)``."""
    return (first, second)


def f_concat(left: object, right: object) -> Tuple[object, ...]:
    """Concatenate two lists / values into a single list."""
    return _as_tuple(left) + _as_tuple(right)


def f_prepend(item: object, path: object) -> Tuple[object, ...]:
    """Prepend *item* to *path*."""
    return (item,) + _as_tuple(path)

def f_append(path: object, item: object) -> Tuple[object, ...]:
    """Append *item* to *path*."""
    return _as_tuple(path) + (item,)


def f_member(path: object, item: object) -> int:
    """Return 1 when *item* occurs in *path*, else 0."""
    return _bool(item in _as_tuple(path))


def f_in_path(path: object, item: object) -> int:
    """Alias of :func:`f_member`, matching declarative-routing programs."""
    return f_member(path, item)


def f_size(path: object) -> int:
    """Return the number of elements in *path*."""
    return len(_as_tuple(path))


def f_first(path: object) -> object:
    """Return the first element of *path*."""
    return _as_tuple(path)[0]


def f_last(path: object) -> object:
    """Return the last element of *path*."""
    return _as_tuple(path)[-1]


def f_reverse(path: object) -> Tuple[object, ...]:
    """Return *path* reversed."""
    return tuple(reversed(_as_tuple(path)))


def f_is_extend(route_after: object, route_before: object, node: object) -> int:
    """The ``f_isExtend(Route2, Route1, AS)`` function from the paper's rule ``br1``.

    Returns 1 when ``route_after`` and ``route_before`` differ only by the
    addition of ``node`` (prepended or appended), i.e. the route was extended
    by the AS that processed it, which is how the "maybe" rule infers a
    causal relationship between an ``inputRoute`` and an ``outputRoute``.
    """
    after = _as_tuple(route_after)
    before = _as_tuple(route_before)
    if len(after) != len(before) + 1:
        return 0
    return _bool(after == (node,) + before or after == before + (node,))


def f_min(left: object, right: object) -> object:
    """Binary minimum."""
    return min(left, right)  # type: ignore[type-var]


def f_max(left: object, right: object) -> object:
    """Binary maximum."""
    return max(left, right)  # type: ignore[type-var]


def f_abs(value: object) -> object:
    """Absolute value."""
    return abs(value)  # type: ignore[arg-type]


def f_sha1(*values: object) -> str:
    """Deterministic content hash used by the provenance rewrite for VIDs/RIDs.

    The hash is computed over the ``repr`` of the arguments, which is stable
    for the value types NDlog uses (numbers, strings, tuples).
    """
    digest = hashlib.sha1(repr(values).encode("utf-8")).hexdigest()
    return digest[:16]


def f_match(value: object, pattern: object) -> int:
    """Return 1 when ``str(value)`` starts with ``str(pattern)`` (prefix match)."""
    return _bool(str(value).startswith(str(pattern)))


def default_registry() -> FunctionRegistry:
    """Build a registry pre-populated with every builtin function.

    Both snake_case and the camelCase spellings used in the papers are
    registered, so rules can be written verbatim (``f_isExtend``) or in a
    more Pythonic style (``f_is_extend``).
    """
    registry = FunctionRegistry()
    builtins: Dict[str, Callable[..., object]] = {
        "f_makeList": f_make_list,
        "f_init": f_init,
        "f_initList": f_init,
        "f_concat": f_concat,
        "f_prepend": f_prepend,
        "f_append": f_append,
        "f_member": f_member,
        "f_inPath": f_in_path,
        "f_size": f_size,
        "f_first": f_first,
        "f_last": f_last,
        "f_reverse": f_reverse,
        "f_isExtend": f_is_extend,
        "f_min": f_min,
        "f_max": f_max,
        "f_abs": f_abs,
        "f_sha1": f_sha1,
        "f_vid": f_sha1,
        "f_rid": f_sha1,
        "f_match": f_match,
    }
    snake_aliases: Dict[str, Callable[..., object]] = {
        "f_make_list": f_make_list,
        "f_in_path": f_in_path,
        "f_is_extend": f_is_extend,
    }
    for name, func in {**builtins, **snake_aliases}.items():
        registry.register(name, func)
    return registry
