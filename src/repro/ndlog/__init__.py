"""NDlog: the Network Datalog language front-end.

NDlog is the distributed recursive query language used by declarative
networking (Loo et al.) and by NetTrails/ExSPAN to express both the
distributed protocols whose provenance is tracked and the provenance
maintenance/query logic itself.

This package provides:

* an AST (:mod:`repro.ndlog.ast`),
* a lexer and recursive-descent parser (:mod:`repro.ndlog.lexer`,
  :mod:`repro.ndlog.parser`),
* the builtin ``f_*`` function library (:mod:`repro.ndlog.functions`),
* program validation / safety checks (:mod:`repro.ndlog.validation`),
* the localization rewrite that turns rules whose bodies span multiple
  nodes into purely node-local rules plus message-shipping rules
  (:mod:`repro.ndlog.localization`), and
* the semi-naive delta-rule rewrite used for incremental evaluation
  (:mod:`repro.ndlog.delta`).
"""

from repro.ndlog.ast import (
    Aggregate,
    Assignment,
    Atom,
    Condition,
    Constant,
    Expression,
    FunctionCall,
    Materialize,
    Program,
    Rule,
    Variable,
)
from repro.ndlog.functions import FunctionRegistry, default_registry
from repro.ndlog.parser import parse_program, parse_rule
from repro.ndlog.validation import validate_program
from repro.ndlog.localization import localize_program, localize_rule
from repro.ndlog.delta import DeltaRule, delta_rules_for_program, delta_rules_for_rule

__all__ = [
    "Aggregate",
    "Assignment",
    "Atom",
    "Condition",
    "Constant",
    "Expression",
    "FunctionCall",
    "Materialize",
    "Program",
    "Rule",
    "Variable",
    "FunctionRegistry",
    "default_registry",
    "parse_program",
    "parse_rule",
    "validate_program",
    "localize_program",
    "localize_rule",
    "DeltaRule",
    "delta_rules_for_program",
    "delta_rules_for_rule",
]
