"""Safety and well-formedness checks for NDlog programs.

The checks implemented here mirror the restrictions that declarative
networking engines (P2, RapidNet) place on NDlog programs so that they can be
executed as distributed dataflows:

* every rule head and every body atom of a distributed relation carries
  exactly one location specifier, and the specifier is a variable;
* rules are *safe*: every head variable and every variable used in a
  condition, assignment or negated atom is bound by a positive body atom or
  by an earlier assignment;
* at most one aggregate per head, and aggregates only appear in heads;
* rules are *link-restricted enough* to be localizable: the localization
  rewrite must be able to find, for every remote location variable, a body
  atom at an already-reachable location that mentions it (this is checked by
  actually running the rewrite);
* referenced builtin functions exist in the function registry;
* the program is stratifiable with respect to negation and aggregation.

``validate_program`` raises :class:`~repro.errors.NDlogValidationError` with
an explanatory message on the first violation, or returns a list of
(informational) warnings when the program is acceptable.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.errors import NDlogValidationError
from repro.ndlog.ast import (
    Aggregate,
    Assignment,
    Atom,
    Condition,
    FunctionCall,
    Literal,
    Program,
    Rule,
    Term,
    Variable,
)
from repro.ndlog.functions import FunctionRegistry, default_registry

#: Relations that the provenance machinery introduces; they are location-aware
#: but generated code may omit explicit specifiers for them.
PROVENANCE_RELATIONS = {"prov", "ruleExec"}


def _function_names(term: Term) -> Set[str]:
    names: Set[str] = set()
    if isinstance(term, FunctionCall):
        names.add(term.name)
        for arg in term.args:
            names |= _function_names(arg)
    elif hasattr(term, "left"):
        names |= _function_names(term.left)  # type: ignore[attr-defined]
        names |= _function_names(term.right)  # type: ignore[attr-defined]
    return names


def _check_location_specifier(atom: Atom, rule: Rule, role: str) -> Optional[str]:
    """Validate the location specifier of one atom; return a warning or None."""
    if atom.location_index is None:
        if atom.relation in PROVENANCE_RELATIONS:
            return None
        raise NDlogValidationError(
            f"rule {rule.name!r}: {role} atom {atom} has no location specifier (@)"
        )
    term = atom.location_term
    if not isinstance(term, Variable):
        # Constant locations are legal (tuples pinned to a node) but unusual.
        return f"rule {rule.name!r}: {role} atom {atom} uses a constant location"
    return None


def validate_rule(
    rule: Rule, registry: Optional[FunctionRegistry] = None
) -> List[str]:
    """Validate a single rule; return warnings, raise on hard errors."""
    registry = registry or default_registry()
    warnings: List[str] = []

    if not rule.literals and not rule.is_maybe:
        raise NDlogValidationError(f"rule {rule.name!r} has no body atoms")

    # Location specifiers -----------------------------------------------------
    warning = _check_location_specifier(rule.head, rule, "head")
    if warning:
        warnings.append(warning)
    for literal in rule.literals:
        warning = _check_location_specifier(literal.atom, rule, "body")
        if warning:
            warnings.append(warning)

    # Aggregates --------------------------------------------------------------
    aggregates = [t for t in rule.head.terms if isinstance(t, Aggregate)]
    if len(aggregates) > 1:
        raise NDlogValidationError(
            f"rule {rule.name!r} has {len(aggregates)} aggregates in its head; at most one is allowed"
        )
    for aggregate in aggregates:
        if aggregate.func not in Aggregate.SUPPORTED:
            raise NDlogValidationError(
                f"rule {rule.name!r}: unsupported aggregate function {aggregate.func!r}"
            )
    for literal in rule.literals:
        for term in literal.atom.terms:
            if isinstance(term, Aggregate):
                raise NDlogValidationError(
                    f"rule {rule.name!r}: aggregate {term} may only appear in the head"
                )

    # Safety ------------------------------------------------------------------
    bound: Set[str] = set()
    for literal in rule.positive_literals:
        bound |= literal.atom.variables()

    for element in rule.body:
        if isinstance(element, Assignment):
            unbound = element.expression.variables() - bound
            if unbound:
                raise NDlogValidationError(
                    f"rule {rule.name!r}: assignment {element} uses unbound variables "
                    f"{sorted(unbound)}"
                )
            bound.add(element.variable)

    for element in rule.body:
        if isinstance(element, Condition):
            unbound = element.variables() - bound
            if unbound and not rule.is_maybe:
                raise NDlogValidationError(
                    f"rule {rule.name!r}: condition {element} uses unbound variables "
                    f"{sorted(unbound)}"
                )
        elif isinstance(element, Literal) and element.negated:
            unbound = element.variables() - bound
            if unbound:
                raise NDlogValidationError(
                    f"rule {rule.name!r}: negated atom {element} uses unbound variables "
                    f"{sorted(unbound)}"
                )

    head_vars = {
        name
        for term in rule.head.terms
        if not isinstance(term, Aggregate)
        for name in term.variables()
    }
    unbound_head = head_vars - bound
    if unbound_head and not rule.is_maybe:
        raise NDlogValidationError(
            f"rule {rule.name!r}: head variables {sorted(unbound_head)} are not bound in the body"
        )
    if unbound_head and rule.is_maybe:
        # "maybe" rules may mention output attributes that are only observed,
        # never computed (the legacy application decides them internally).
        warnings.append(
            f"rule {rule.name!r}: maybe-rule head variables {sorted(unbound_head)} "
            "are bound only by observation"
        )

    # Builtin functions --------------------------------------------------------
    referenced: Set[str] = set()
    for element in rule.body:
        if isinstance(element, (Condition, Assignment)):
            referenced |= _function_names(element.expression)
        elif isinstance(element, Literal):
            for term in element.atom.terms:
                referenced |= _function_names(term)
    for term in rule.head.terms:
        referenced |= _function_names(term)
    for name in sorted(referenced):
        if not registry.registered(name):
            raise NDlogValidationError(
                f"rule {rule.name!r} calls unknown builtin function {name!r}"
            )

    return warnings


def validate_program(
    program: Program, registry: Optional[FunctionRegistry] = None
) -> List[str]:
    """Validate *program*; return accumulated warnings, raise on the first error."""
    registry = registry or default_registry()
    warnings: List[str] = []

    if not program.rules:
        raise NDlogValidationError(f"program {program.name!r} has no rules")

    names: Set[str] = set()
    for rule in program.rules:
        if rule.name in names:
            raise NDlogValidationError(
                f"program {program.name!r} has duplicate rule name {rule.name!r}"
            )
        names.add(rule.name)
        warnings.extend(validate_rule(rule, registry))

    # Consistent arities per relation ------------------------------------------
    arities = {}
    for rule in program.rules:
        atoms = [rule.head] + [lit.atom for lit in rule.literals]
        for atom in atoms:
            previous = arities.get(atom.relation)
            if previous is None:
                arities[atom.relation] = atom.arity
            elif previous != atom.arity:
                raise NDlogValidationError(
                    f"relation {atom.relation!r} used with inconsistent arities "
                    f"({previous} and {atom.arity})"
                )

    # Stratification ------------------------------------------------------------
    try:
        program.strata()
    except ValueError as exc:
        raise NDlogValidationError(str(exc)) from exc

    # Localizability: run the rewrite and surface its errors as validation errors.
    from repro.ndlog.localization import localize_rule  # local import avoids a cycle

    for rule in program.rules:
        if not rule.is_local():
            try:
                localize_rule(rule)
            except NDlogValidationError:
                raise
            except Exception as exc:  # pragma: no cover - defensive
                raise NDlogValidationError(
                    f"rule {rule.name!r} cannot be localized: {exc}"
                ) from exc

    return warnings
