"""Semi-naive (delta) rule rewrite for incremental evaluation.

ExSPAN maintains provenance *incrementally*: when a base tuple is inserted or
deleted, only the affected derivations are recomputed.  The standard way to
express this is the semi-naive rewrite: a rule

    h :- b1, b2, ..., bn

is expanded into *n* delta rules, one per body atom.  Delta rule *i* joins the
*delta* (newly inserted or deleted tuples) of ``bi`` with the full contents of
every other ``bj``.  The execution engine evaluates delta rules against each
batch of updates, which gives incremental view maintenance for insertions;
deletions are handled by the same rules combined with derivation counting in
the tuple store (see :mod:`repro.engine.store`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.ndlog.ast import Literal, Program, Rule


@dataclass(frozen=True)
class DeltaRule:
    """One semi-naive instantiation of a rule.

    ``delta_index`` is the index (into ``rule.positive_literals``) of the body
    atom that is joined against the update delta; all other positive atoms are
    joined against the full stored relations.
    """

    rule: Rule
    delta_index: int

    @property
    def delta_literal(self) -> Literal:
        return self.rule.positive_literals[self.delta_index]

    @property
    def delta_relation(self) -> str:
        return self.delta_literal.atom.relation

    def other_literals(self) -> Tuple[Literal, ...]:
        positives = self.rule.positive_literals
        return tuple(lit for index, lit in enumerate(positives) if index != self.delta_index)

    def __str__(self) -> str:
        return f"Δ[{self.delta_relation}] {self.rule.name}"


def delta_rules_for_rule(rule: Rule) -> List[DeltaRule]:
    """Return one :class:`DeltaRule` per positive body atom of *rule*."""
    return [DeltaRule(rule, index) for index in range(len(rule.positive_literals))]


def delta_rules_for_program(program: Program) -> List[DeltaRule]:
    """Return the delta rules for every rule in *program* (in rule order)."""
    result: List[DeltaRule] = []
    for rule in program.rules:
        result.extend(delta_rules_for_rule(rule))
    return result


def delta_rules_by_relation(program: Program) -> dict:
    """Index the program's delta rules by the relation whose delta triggers them."""
    index: dict = {}
    for delta_rule in delta_rules_for_program(program):
        index.setdefault(delta_rule.delta_relation, []).append(delta_rule)
    return index
