"""Localization rewrite for NDlog rules.

A rule whose body atoms are located at more than one node cannot be executed
as written: Datalog joins are evaluated at a single node.  The localization
rewrite (Loo et al., *Declarative Networking*) turns such a rule into an
equivalent set of rules in which every rule body is *local* — all body atoms
share one location specifier — and data flows between locations only through
the heads of intermediate "shipping" rules.

Example::

    r2 pathCost(@S,D,C1+C2) :- link(@S,Z,C1), pathCost(@Z,D,C2).

becomes::

    r2_loc1 e_ship_r2_1(@Z,S,C1)     :- link(@S,Z,C1).
    r2_loc2 pathCost(@S,D,C1+C2)     :- e_ship_r2_1(@Z,S,C1), pathCost(@Z,D,C2).

The rewrite requires the standard *link-restriction*: the next location
variable must already be bound by an atom in the current location group,
otherwise there is no way to know where to ship the intermediate tuples.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.errors import NDlogValidationError
from repro.ndlog.ast import (
    Assignment,
    Atom,
    BodyElement,
    Condition,
    Literal,
    Program,
    Rule,
    Variable,
)

#: Prefix used for intermediate shipping relations created by the rewrite.
INTERMEDIATE_PREFIX = "e_ship_"


def is_intermediate_relation(relation: str) -> bool:
    """True for relations introduced by :func:`localize_rule`."""
    return relation.startswith(INTERMEDIATE_PREFIX)


def _location_name(atom: Atom) -> str:
    term = atom.location_term
    if isinstance(term, Variable):
        return term.name
    # Constant location: use its rendered form as the group key.
    return f"<{term}>" if term is not None else "<local>"


def _ordered_location_groups(rule: Rule) -> List[Tuple[str, List[Literal]]]:
    """Group body literals by location variable, in order of first appearance."""
    order: List[str] = []
    groups: Dict[str, List[Literal]] = {}
    for literal in rule.literals:
        name = _location_name(literal.atom)
        if name not in groups:
            groups[name] = []
            order.append(name)
        groups[name].append(literal)
    return [(name, groups[name]) for name in order]


def localize_rule(rule: Rule, counter_start: int = 1) -> List[Rule]:
    """Rewrite *rule* into an equivalent list of local rules.

    Local rules are returned unchanged (as a single-element list).  Raises
    :class:`~repro.errors.NDlogValidationError` when the rule violates the
    link-restriction and cannot be localized.
    """
    if rule.is_local():
        return [rule]

    groups = _ordered_location_groups(rule)
    produced: List[Rule] = []
    remaining_rule = rule
    counter = counter_start

    while True:
        groups = _ordered_location_groups(remaining_rule)
        if len(groups) <= 1:
            # The final local remainder keeps the original rule's name so that
            # provenance records refer to the rule the user actually wrote.
            produced.append(
                Rule(
                    head=remaining_rule.head,
                    body=remaining_rule.body,
                    name=rule.name,
                    is_maybe=rule.is_maybe,
                )
            )
            return produced

        first_location, first_group = groups[0]
        next_location, _next_group = groups[1]

        bound_here: Set[str] = set()
        for literal in first_group:
            bound_here |= literal.atom.variables()

        if next_location not in bound_here:
            raise NDlogValidationError(
                f"rule {rule.name!r} is not link-restricted: location variable "
                f"{next_location!r} is not bound by any atom at {first_location!r}"
            )

        # Variables needed downstream: by the remaining groups, by conditions
        # and assignments, and by the head.
        needed: Set[str] = set(remaining_rule.head.variables())
        for _name, group in groups[1:]:
            for literal in group:
                needed |= literal.atom.variables()
        for element in remaining_rule.body:
            if isinstance(element, (Condition, Assignment)):
                needed |= element.variables()

        shipped = sorted((needed & bound_here) - {next_location})

        intermediate_relation = f"{INTERMEDIATE_PREFIX}{rule.name}_{counter}"
        intermediate_terms = tuple([Variable(next_location)] + [Variable(v) for v in shipped])
        intermediate_head = Atom(intermediate_relation, intermediate_terms, location_index=0)

        shipping_rule = Rule(
            head=intermediate_head,
            body=tuple(first_group),
            name=f"{rule.name}_loc{counter}",
            is_maybe=False,
        )
        produced.append(shipping_rule)

        # Rebuild the remaining rule: replace the first group's literals with
        # the intermediate atom, keep everything else (order preserved).
        new_body: List[BodyElement] = [Literal(intermediate_head)]
        first_group_set = set(id(lit) for lit in first_group)
        for element in remaining_rule.body:
            if isinstance(element, Literal) and id(element) in first_group_set:
                continue
            new_body.append(element)

        remaining_rule = Rule(
            head=remaining_rule.head,
            body=tuple(new_body),
            name=f"{rule.name}__rest{counter}",
            is_maybe=remaining_rule.is_maybe,
        )
        counter += 1


def localize_program(program: Program) -> Program:
    """Return a new program in which every rule is local.

    Rules that are already local are copied verbatim; non-local rules are
    replaced by their localized expansion.  Materialize declarations are
    preserved.
    """
    localized = Program(name=program.name, materialized=dict(program.materialized))
    for rule in program.rules:
        for rewritten in localize_rule(rule):
            localized.add_rule(rewritten)
    return localized
