"""Tokenizer for NDlog source text."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.errors import NDlogSyntaxError


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position (1-based)."""

    kind: str
    value: object
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.kind}({self.value!r})"


# Token kinds
IDENT = "IDENT"          # lowercase-initial identifiers (relations, functions, keywords)
VARIABLE = "VARIABLE"    # uppercase-initial identifiers and '_'
NUMBER = "NUMBER"
STRING = "STRING"
SYMBOL = "SYMBOL"
EOF = "EOF"

# Multi-character symbols, longest first so the scanner is greedy.
_MULTI_SYMBOLS = [":-", "?-", ":=", "<=", ">=", "==", "!="]
_SINGLE_SYMBOLS = set("()[]{},.@<>=!+-*/%;")


def tokenize(text: str) -> List[Token]:
    """Convert NDlog source text into a list of tokens (ending with EOF).

    Comments run from ``//`` or ``#`` or ``%%`` to end of line.  Raises
    :class:`NDlogSyntaxError` on unexpected characters or unterminated
    strings.
    """
    tokens: List[Token] = []
    line = 1
    column = 1
    index = 0
    length = len(text)

    def error(message: str) -> NDlogSyntaxError:
        return NDlogSyntaxError(message, line=line, column=column)

    while index < length:
        char = text[index]

        # Whitespace / newlines
        if char == "\n":
            line += 1
            column = 1
            index += 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue

        # Comments
        if text.startswith("//", index) or char == "#" or text.startswith("%%", index):
            while index < length and text[index] != "\n":
                index += 1
            continue

        start_line, start_column = line, column

        # Strings
        if char in "\"'":
            quote = char
            index += 1
            column += 1
            chars: List[str] = []
            while index < length and text[index] != quote:
                if text[index] == "\n":
                    raise error("unterminated string literal")
                chars.append(text[index])
                index += 1
                column += 1
            if index >= length:
                raise error("unterminated string literal")
            index += 1  # closing quote
            column += 1
            tokens.append(Token(STRING, "".join(chars), start_line, start_column))
            continue

        # Numbers (integers and floats)
        if char.isdigit():
            end = index
            seen_dot = False
            while end < length and (text[end].isdigit() or (text[end] == "." and not seen_dot)):
                if text[end] == ".":
                    # A '.' followed by a non-digit terminates the number (end of clause).
                    if end + 1 >= length or not text[end + 1].isdigit():
                        break
                    seen_dot = True
                end += 1
            raw = text[index:end]
            value: object = float(raw) if "." in raw else int(raw)
            tokens.append(Token(NUMBER, value, start_line, start_column))
            column += end - index
            index = end
            continue

        # Identifiers and variables
        if char.isalpha() or char == "_":
            end = index
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            word = text[index:end]
            kind = VARIABLE if (word[0].isupper() or word[0] == "_") else IDENT
            tokens.append(Token(kind, word, start_line, start_column))
            column += end - index
            index = end
            continue

        # Multi-character symbols
        matched: Optional[str] = None
        for symbol in _MULTI_SYMBOLS:
            if text.startswith(symbol, index):
                matched = symbol
                break
        if matched is not None:
            tokens.append(Token(SYMBOL, matched, start_line, start_column))
            index += len(matched)
            column += len(matched)
            continue

        # Single-character symbols
        if char in _SINGLE_SYMBOLS:
            tokens.append(Token(SYMBOL, char, start_line, start_column))
            index += 1
            column += 1
            continue

        raise error(f"unexpected character {char!r}")

    tokens.append(Token(EOF, None, line, column))
    return tokens


def iter_clauses(tokens: List[Token]) -> Iterator[List[Token]]:
    """Split a token stream into clauses terminated by '.' symbols.

    The trailing EOF token is not included in any clause.  A trailing clause
    without a terminating period raises :class:`NDlogSyntaxError`.
    """
    current: List[Token] = []
    for token in tokens:
        if token.kind == EOF:
            break
        if token.kind == SYMBOL and token.value == ".":
            if current:
                yield current
                current = []
            continue
        current.append(token)
    if current:
        first = current[0]
        raise NDlogSyntaxError(
            "clause is missing its terminating '.'", line=first.line, column=first.column
        )
