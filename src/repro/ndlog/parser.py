"""Recursive-descent parser for NDlog programs.

Grammar (informal)::

    program     := clause*
    clause      := materialize | rule
    materialize := 'materialize' '(' IDENT ',' lifetime ',' size ',' 'keys' '(' nums ')' ')' '.'
    rule        := [label] head (':-' | '?-') body '.'
    head        := atom
    body        := body_elem (',' body_elem)*
    body_elem   := '!' atom | atom | assignment | condition
    atom        := IDENT '(' arg (',' arg)* ')'
    arg         := ['@'] expr | aggregate
    aggregate   := ('min'|'max'|'count'|'sum'|'avg') '<' (VARIABLE | '*') '>'
    assignment  := VARIABLE ':=' expr
    condition   := expr (cmp expr)?
    expr        := arithmetic over variables, constants, lists, function calls

The rule label is optional; unlabeled rules get synthetic names.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.errors import NDlogSyntaxError
from repro.ndlog import lexer
from repro.ndlog.ast import (
    Aggregate,
    Assignment,
    Atom,
    Condition,
    Constant,
    Expression,
    FunctionCall,
    Literal,
    Materialize,
    Program,
    Rule,
    Term,
    Variable,
)
from repro.ndlog.lexer import IDENT, NUMBER, STRING, SYMBOL, VARIABLE, Token

_COMPARISON_OPS = {"==", "!=", "<", "<=", ">", ">="}
_AGGREGATE_FUNCS = set(Aggregate.SUPPORTED)


class _ClauseParser:
    """Parses a single clause (one rule or one materialize declaration)."""

    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._position = 0

    # -- token helpers --------------------------------------------------------

    def _peek(self, offset: int = 0) -> Optional[Token]:
        index = self._position + offset
        if index < len(self._tokens):
            return self._tokens[index]
        return None

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            last = self._tokens[-1] if self._tokens else None
            raise NDlogSyntaxError(
                "unexpected end of clause",
                line=last.line if last else 0,
                column=last.column if last else 0,
            )
        self._position += 1
        return token

    def _expect_symbol(self, symbol: str) -> Token:
        token = self._next()
        if token.kind != SYMBOL or token.value != symbol:
            raise NDlogSyntaxError(
                f"expected {symbol!r} but found {token.value!r}",
                line=token.line,
                column=token.column,
            )
        return token

    def _at_symbol(self, symbol: str, offset: int = 0) -> bool:
        token = self._peek(offset)
        return token is not None and token.kind == SYMBOL and token.value == symbol

    def _done(self) -> bool:
        return self._position >= len(self._tokens)

    def _error(self, message: str) -> NDlogSyntaxError:
        token = self._peek() or self._tokens[-1]
        return NDlogSyntaxError(message, line=token.line, column=token.column)

    # -- clause dispatch ------------------------------------------------------

    def parse_clause(self) -> Union[Rule, Materialize]:
        first = self._peek()
        if first is not None and first.kind == IDENT and first.value == "materialize":
            return self._parse_materialize()
        return self._parse_rule()

    # -- materialize ----------------------------------------------------------

    def _parse_materialize(self) -> Materialize:
        self._next()  # 'materialize'
        self._expect_symbol("(")
        relation_token = self._next()
        if relation_token.kind != IDENT:
            raise self._error("materialize expects a relation name")
        relation = str(relation_token.value)
        self._expect_symbol(",")
        lifetime = self._parse_bound()
        self._expect_symbol(",")
        max_size = self._parse_bound()
        self._expect_symbol(",")
        keys = self._parse_keys()
        self._expect_symbol(")")
        return Materialize(
            relation=relation,
            lifetime=lifetime,
            max_size=None if max_size is None else int(max_size),
            keys=keys,
        )

    def _parse_bound(self) -> Optional[float]:
        token = self._next()
        if token.kind == IDENT and token.value == "infinity":
            return None
        if token.kind == NUMBER:
            return float(token.value)
        raise NDlogSyntaxError(
            f"expected a number or 'infinity', found {token.value!r}",
            line=token.line,
            column=token.column,
        )

    def _parse_keys(self) -> Tuple[int, ...]:
        token = self._next()
        if token.kind != IDENT or token.value != "keys":
            raise NDlogSyntaxError(
                f"expected 'keys', found {token.value!r}", line=token.line, column=token.column
            )
        self._expect_symbol("(")
        keys: List[int] = []
        if not self._at_symbol(")"):
            while True:
                number = self._next()
                if number.kind != NUMBER:
                    raise NDlogSyntaxError(
                        f"expected a key position, found {number.value!r}",
                        line=number.line,
                        column=number.column,
                    )
                keys.append(int(number.value))
                if self._at_symbol(","):
                    self._next()
                    continue
                break
        self._expect_symbol(")")
        return tuple(keys)

    # -- rules ----------------------------------------------------------------

    def _parse_rule(self) -> Rule:
        name = ""
        # Optional rule label: IDENT immediately followed by another IDENT
        # (the head relation).  E.g. "r1 pathCost(@S,D,C) :- ...".
        first = self._peek()
        second = self._peek(1)
        if (
            first is not None
            and first.kind == IDENT
            and second is not None
            and second.kind == IDENT
        ):
            name = str(first.value)
            self._next()

        head = self._parse_atom(allow_aggregate=True)

        separator = self._next()
        if separator.kind != SYMBOL or separator.value not in (":-", "?-"):
            raise NDlogSyntaxError(
                f"expected ':-' or '?-', found {separator.value!r}",
                line=separator.line,
                column=separator.column,
            )
        is_maybe = separator.value == "?-"

        body: List[Union[Literal, Condition, Assignment]] = []
        while True:
            body.append(self._parse_body_element())
            if self._at_symbol(","):
                self._next()
                continue
            break

        if not self._done():
            raise self._error("unexpected tokens after rule body")

        return Rule(head=head, body=tuple(body), name=name, is_maybe=is_maybe)

    def _parse_body_element(self) -> Union[Literal, Condition, Assignment]:
        # Negated atom
        if self._at_symbol("!"):
            self._next()
            return Literal(self._parse_atom(allow_aggregate=False), negated=True)

        # Assignment: VARIABLE ':='
        token = self._peek()
        if token is not None and token.kind == VARIABLE and self._at_symbol(":=", 1):
            variable = str(self._next().value)
            self._next()  # ':='
            expression = self._parse_expression()
            return Assignment(variable, expression)

        # Atom: IDENT '(' ... but not a function call used as a condition.
        if (
            token is not None
            and token.kind == IDENT
            and self._at_symbol("(", 1)
            and not str(token.value).startswith("f_")
        ):
            return Literal(self._parse_atom(allow_aggregate=False))

        # Otherwise: a condition (comparison or bare boolean expression).
        expression = self._parse_expression()
        comparison = self._peek()
        if (
            comparison is not None
            and comparison.kind == SYMBOL
            and (comparison.value in _COMPARISON_OPS or comparison.value == "=")
        ):
            op = str(self._next().value)
            if op == "=":
                op = "=="
            right = self._parse_expression()
            expression = Expression(op, expression, right)
        return Condition(expression)

    def _parse_atom(self, allow_aggregate: bool) -> Atom:
        relation_token = self._next()
        if relation_token.kind != IDENT:
            raise NDlogSyntaxError(
                f"expected a relation name, found {relation_token.value!r}",
                line=relation_token.line,
                column=relation_token.column,
            )
        relation = str(relation_token.value)
        self._expect_symbol("(")
        terms: List[Term] = []
        location_index: Optional[int] = None
        if not self._at_symbol(")"):
            index = 0
            while True:
                if self._at_symbol("@"):
                    self._next()
                    if location_index is not None:
                        raise self._error(
                            f"atom {relation!r} has more than one location specifier"
                        )
                    location_index = index
                terms.append(self._parse_argument(allow_aggregate))
                index += 1
                if self._at_symbol(","):
                    self._next()
                    continue
                break
        self._expect_symbol(")")
        return Atom(relation, tuple(terms), location_index)

    def _parse_argument(self, allow_aggregate: bool) -> Term:
        token = self._peek()
        follower = self._peek(1)
        if (
            allow_aggregate
            and token is not None
            and token.kind == IDENT
            and token.value in _AGGREGATE_FUNCS
            and follower is not None
            and follower.kind == SYMBOL
            and follower.value == "<"
        ):
            func = str(self._next().value)
            self._next()  # '<'
            inner = self._next()
            variable: Optional[str]
            if inner.kind == VARIABLE:
                variable = str(inner.value)
            elif inner.kind == SYMBOL and inner.value == "*":
                variable = None
            else:
                raise NDlogSyntaxError(
                    f"expected a variable or '*' in aggregate, found {inner.value!r}",
                    line=inner.line,
                    column=inner.column,
                )
            self._expect_symbol(">")
            return Aggregate(func, variable)
        return self._parse_expression()

    # -- expressions -----------------------------------------------------------

    def _parse_expression(self) -> Term:
        left = self._parse_term()
        while self._at_symbol("+") or self._at_symbol("-"):
            op = str(self._next().value)
            right = self._parse_term()
            left = Expression(op, left, right)
        return left

    def _parse_term(self) -> Term:
        left = self._parse_factor()
        while self._at_symbol("*") or self._at_symbol("/") or self._at_symbol("%"):
            op = str(self._next().value)
            right = self._parse_factor()
            left = Expression(op, left, right)
        return left

    def _parse_factor(self) -> Term:
        token = self._peek()
        if token is None:
            raise self._error("unexpected end of expression")

        if token.kind == NUMBER:
            self._next()
            return Constant(token.value)
        if token.kind == STRING:
            self._next()
            return Constant(str(token.value))
        if token.kind == VARIABLE:
            self._next()
            return Variable(str(token.value))
        if token.kind == SYMBOL and token.value == "-":
            self._next()
            inner = self._parse_factor()
            return Expression("-", Constant(0), inner)
        if token.kind == SYMBOL and token.value == "(":
            self._next()
            inner = self._parse_expression()
            self._expect_symbol(")")
            return inner
        if token.kind == SYMBOL and token.value == "[":
            return self._parse_list()
        if token.kind == IDENT:
            # Function call or bare identifier constant (e.g. atom-like constants).
            if self._at_symbol("(", 1):
                name = str(self._next().value)
                self._next()  # '('
                args: List[Term] = []
                if not self._at_symbol(")"):
                    while True:
                        args.append(self._parse_expression())
                        if self._at_symbol(","):
                            self._next()
                            continue
                        break
                self._expect_symbol(")")
                return FunctionCall(name, tuple(args))
            self._next()
            return Constant(str(token.value))

        raise NDlogSyntaxError(
            f"unexpected token {token.value!r} in expression",
            line=token.line,
            column=token.column,
        )

    def _parse_list(self) -> Term:
        """Parse a literal list ``[a, b, c]`` into a tuple constant.

        Lists containing variables are represented as an ``f_makeList`` call so
        that they can be evaluated once bindings are known.
        """
        self._expect_symbol("[")
        elements: List[Term] = []
        if not self._at_symbol("]"):
            while True:
                elements.append(self._parse_expression())
                if self._at_symbol(","):
                    self._next()
                    continue
                break
        self._expect_symbol("]")
        if all(isinstance(element, Constant) for element in elements):
            return Constant(tuple(element.value for element in elements))  # type: ignore[union-attr]
        return FunctionCall("f_makeList", tuple(elements))


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


def parse_program(text: str, name: str = "program") -> Program:
    """Parse NDlog source text into a :class:`Program`."""
    tokens = lexer.tokenize(text)
    program = Program(name=name)
    rule_count = 0
    for clause_tokens in lexer.iter_clauses(tokens):
        clause = _ClauseParser(clause_tokens).parse_clause()
        if isinstance(clause, Materialize):
            program.add_materialize(clause)
        else:
            rule_count += 1
            if clause.name.startswith("rule"):
                # The rule had no explicit label; give it a program-scoped one.
                clause = clause.rename(f"{name}_r{rule_count}")
            program.add_rule(clause)
    return program


def parse_rule(text: str) -> Rule:
    """Parse a single NDlog rule (must end with '.')."""
    tokens = lexer.tokenize(text)
    clauses = list(lexer.iter_clauses(tokens))
    if len(clauses) != 1:
        raise NDlogSyntaxError(f"expected exactly one rule, found {len(clauses)} clauses")
    clause = _ClauseParser(clauses[0]).parse_clause()
    if isinstance(clause, Materialize):
        raise NDlogSyntaxError("expected a rule, found a materialize declaration")
    return clause
