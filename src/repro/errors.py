"""Shared exception hierarchy for the NetTrails reproduction.

Every error raised by the library derives from :class:`NetTrailsError`, so
callers can catch a single base class.  Sub-hierarchies mirror the major
subsystems: the NDlog language front-end, the distributed execution engine,
the provenance (ExSPAN) engine, and the legacy-application integration layer.
"""

from __future__ import annotations


class NetTrailsError(Exception):
    """Base class for all errors raised by the library."""


class NDlogError(NetTrailsError):
    """Base class for errors in the NDlog language front-end."""


class NDlogSyntaxError(NDlogError):
    """Raised when NDlog source text cannot be tokenized or parsed.

    Carries the ``line`` and ``column`` (1-based) of the offending token when
    they are known.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class NDlogValidationError(NDlogError):
    """Raised when a syntactically valid program violates safety rules."""


class UnknownFunctionError(NDlogError):
    """Raised when a rule references a builtin function that is not registered."""


class EngineError(NetTrailsError):
    """Base class for errors in the distributed execution engine."""


class SchemaError(EngineError):
    """Raised when tuples do not match their relation schema."""


class UnknownNodeError(EngineError):
    """Raised when a message or tuple targets a node that does not exist."""


class SimulationError(EngineError):
    """Raised when the discrete-event simulator is used incorrectly."""


class ProvenanceError(NetTrailsError):
    """Base class for errors in the ExSPAN provenance engine."""


class UnknownVertexError(ProvenanceError):
    """Raised when a provenance query references an unknown vertex id."""


class QueryError(ProvenanceError):
    """Raised when a provenance query is malformed or cannot be executed."""


class LegacyIntegrationError(NetTrailsError):
    """Base class for errors in the legacy-application (proxy/BGP) layer."""


class TraceFormatError(LegacyIntegrationError):
    """Raised when a routing trace record is malformed."""


class LogStoreError(NetTrailsError):
    """Raised when snapshots or replay logs are malformed or inconsistent."""


class DurabilityError(NetTrailsError):
    """Raised when the write-ahead log or recovery machinery meets corrupt,
    foreign or misused durable state (torn tails are *repaired*, not raised —
    this class covers the unrecoverable cases)."""


class VisualizationError(NetTrailsError):
    """Raised when a visualization export cannot be produced."""
