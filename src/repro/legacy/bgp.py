"""A BGP decision-process simulator (the Quagga substitute).

The paper's demonstration instantiates Quagga BGP daemons for several ASes on
one machine and intercepts their messages with a proxy.  NetTrails only cares
about the *message-level behaviour* of that black box: which route
advertisements enter a daemon, which leave it, and which routes it installs.
This module provides a faithful-enough substitute: per-AS daemons with
Adj-RIB-In, the standard decision process (local preference from business
relationships, then shortest AS path, then lowest neighbor ASN), AS-path loop
rejection and Gao-Rexford export filtering.

The simulator is deliberately observable: every message sent between daemons
and every RIB change can be intercepted through callbacks, which is what the
NetTrails proxy (:mod:`repro.legacy.proxy`) hooks into — without the daemons
knowing anything about provenance.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import LegacyIntegrationError
from repro.legacy.relationships import ASTopology


@dataclass(frozen=True)
class Route:
    """One BGP route: a prefix plus the AS path used to reach it."""

    prefix: str
    as_path: Tuple[int, ...]
    local_pref: int = 100

    @property
    def origin(self) -> int:
        return self.as_path[-1]

    @property
    def next_hop(self) -> int:
        return self.as_path[0]

    def __str__(self) -> str:
        return f"{self.prefix} via {list(self.as_path)} (pref {self.local_pref})"


@dataclass(frozen=True)
class BgpUpdate:
    """A BGP UPDATE message: an announcement or a withdrawal."""

    sender: int
    receiver: int
    prefix: str
    announce: bool
    as_path: Tuple[int, ...] = ()

    def __str__(self) -> str:
        kind = "announce" if self.announce else "withdraw"
        return f"{kind} {self.prefix} {list(self.as_path)} ({self.sender} -> {self.receiver})"


@dataclass
class BgpStats:
    updates_sent: int = 0
    announcements: int = 0
    withdrawals: int = 0
    best_route_changes: int = 0


class BgpDaemon:
    """One AS's BGP speaker."""

    def __init__(self, asn: int, topology: ASTopology):
        self.asn = asn
        self.topology = topology
        #: prefixes originated locally
        self.originated: Set[str] = set()
        #: Adj-RIB-In: (neighbor, prefix) -> Route
        self.adj_rib_in: Dict[Tuple[int, str], Route] = {}
        #: Loc-RIB: prefix -> (Route, learned_from or None for local origination)
        self.loc_rib: Dict[str, Tuple[Route, Optional[int]]] = {}
        #: what was last advertised to each neighbor: (neighbor, prefix) -> as_path
        self._advertised: Dict[Tuple[int, str], Tuple[int, ...]] = {}

    # -- local events --------------------------------------------------------------

    def originate(self, prefix: str) -> List[BgpUpdate]:
        """Originate *prefix* locally; returns the updates to send."""
        self.originated.add(prefix)
        return self._run_decision(prefix)

    def withdraw_origin(self, prefix: str) -> List[BgpUpdate]:
        """Stop originating *prefix*; returns the updates to send."""
        self.originated.discard(prefix)
        return self._run_decision(prefix)

    # -- message processing ------------------------------------------------------------

    def process(self, update: BgpUpdate) -> List[BgpUpdate]:
        """Process one incoming update; returns the updates to send in response."""
        if update.receiver != self.asn:
            raise LegacyIntegrationError(
                f"update for AS {update.receiver} delivered to AS {self.asn}"
            )
        key = (update.sender, update.prefix)
        if update.announce:
            if self.asn in update.as_path:
                # AS-path loop: reject, and forget any previous route from that neighbor.
                self.adj_rib_in.pop(key, None)
            else:
                self.adj_rib_in[key] = Route(
                    prefix=update.prefix,
                    as_path=update.as_path,
                    local_pref=self.topology.local_preference(self.asn, update.sender),
                )
        else:
            self.adj_rib_in.pop(key, None)
        return self._run_decision(update.prefix)

    # -- decision process -----------------------------------------------------------------

    def _candidates(self, prefix: str) -> List[Tuple[Route, Optional[int]]]:
        candidates: List[Tuple[Route, Optional[int]]] = []
        if prefix in self.originated:
            candidates.append((Route(prefix=prefix, as_path=(self.asn,), local_pref=1000), None))
        for (neighbor, candidate_prefix), route in self.adj_rib_in.items():
            if candidate_prefix == prefix:
                candidates.append((route, neighbor))
        return candidates

    @staticmethod
    def _preference_key(entry: Tuple[Route, Optional[int]]) -> Tuple[int, int, int]:
        route, learned_from = entry
        neighbor = learned_from if learned_from is not None else -1
        return (-route.local_pref, len(route.as_path), neighbor)

    def _run_decision(self, prefix: str) -> List[BgpUpdate]:
        """Re-run the decision process for *prefix*; return the resulting exports."""
        candidates = self._candidates(prefix)
        previous = self.loc_rib.get(prefix)
        if candidates:
            best = min(candidates, key=self._preference_key)
            self.loc_rib[prefix] = best
        else:
            best = None
            self.loc_rib.pop(prefix, None)
        if best == previous:
            return []
        return self._export(prefix, best)

    def _export(self, prefix: str, best: Optional[Tuple[Route, Optional[int]]]) -> List[BgpUpdate]:
        updates: List[BgpUpdate] = []
        for neighbor in self.topology.neighbors(self.asn):
            key = (neighbor, prefix)
            previously_advertised = self._advertised.get(key)
            should_advertise = False
            exported_path: Tuple[int, ...] = ()
            if best is not None:
                route, learned_from = best
                # Never advertise a route back to the neighbor it was learned from,
                # and apply the Gao-Rexford export policy.
                if learned_from != neighbor and self.topology.should_export(
                    self.asn, learned_from, neighbor
                ):
                    should_advertise = True
                    exported_path = (self.asn,) + route.as_path if learned_from is not None else (self.asn,)
            if should_advertise:
                if previously_advertised != exported_path:
                    self._advertised[key] = exported_path
                    updates.append(
                        BgpUpdate(
                            sender=self.asn,
                            receiver=neighbor,
                            prefix=prefix,
                            announce=True,
                            as_path=exported_path,
                        )
                    )
            else:
                if previously_advertised is not None:
                    del self._advertised[key]
                    updates.append(
                        BgpUpdate(
                            sender=self.asn,
                            receiver=neighbor,
                            prefix=prefix,
                            announce=False,
                        )
                    )
        return updates

    # -- inspection ---------------------------------------------------------------------------

    def best_route(self, prefix: str) -> Optional[Route]:
        entry = self.loc_rib.get(prefix)
        return entry[0] if entry is not None else None

    def rib_snapshot(self) -> Dict[str, Route]:
        return {prefix: entry[0] for prefix, entry in sorted(self.loc_rib.items())}


#: Observer signatures used by the proxy.
MessageObserver = Callable[[BgpUpdate], None]
RibObserver = Callable[[int, str, Optional[Route], Optional[Route]], None]


class BgpNetwork:
    """A set of BGP daemons exchanging updates over the AS topology.

    Message processing is deterministic: updates are queued FIFO and processed
    one at a time.  Observers see every message *before* it is processed by
    the receiving daemon (this is where the NetTrails proxy taps the wire) and
    every local-RIB change after it happens.
    """

    def __init__(self, topology: ASTopology):
        self.topology = topology
        self.daemons: Dict[int, BgpDaemon] = {
            asn: BgpDaemon(asn, topology) for asn in sorted(topology.ases)
        }
        self._queue: Deque[BgpUpdate] = deque()
        self._message_observers: List[MessageObserver] = []
        self._rib_observers: List[RibObserver] = []
        self.stats = BgpStats()

    # -- observers ----------------------------------------------------------------

    def add_message_observer(self, observer: MessageObserver) -> None:
        self._message_observers.append(observer)

    def add_rib_observer(self, observer: RibObserver) -> None:
        self._rib_observers.append(observer)

    # -- events --------------------------------------------------------------------

    def originate(self, asn: int, prefix: str) -> None:
        """AS *asn* starts originating *prefix*."""
        daemon = self._daemon(asn)
        before = daemon.best_route(prefix)
        updates = daemon.originate(prefix)
        self._notify_rib(asn, prefix, before, daemon.best_route(prefix))
        self._enqueue(updates)

    def withdraw(self, asn: int, prefix: str) -> None:
        """AS *asn* stops originating *prefix*."""
        daemon = self._daemon(asn)
        before = daemon.best_route(prefix)
        updates = daemon.withdraw_origin(prefix)
        self._notify_rib(asn, prefix, before, daemon.best_route(prefix))
        self._enqueue(updates)

    def run(self, max_messages: int = 1_000_000) -> int:
        """Deliver queued updates until quiescence; return messages processed."""
        processed = 0
        while self._queue:
            if processed >= max_messages:
                raise LegacyIntegrationError(
                    f"BGP network did not converge within {max_messages} messages"
                )
            update = self._queue.popleft()
            processed += 1
            for observer in self._message_observers:
                observer(update)
            daemon = self._daemon(update.receiver)
            before = daemon.best_route(update.prefix)
            responses = daemon.process(update)
            after = daemon.best_route(update.prefix)
            self._notify_rib(update.receiver, update.prefix, before, after)
            self._enqueue(responses)
        return processed

    # -- helpers ---------------------------------------------------------------------

    def _daemon(self, asn: int) -> BgpDaemon:
        if asn not in self.daemons:
            raise LegacyIntegrationError(f"unknown AS {asn}")
        return self.daemons[asn]

    def _enqueue(self, updates: Iterable[BgpUpdate]) -> None:
        for update in updates:
            self.stats.updates_sent += 1
            if update.announce:
                self.stats.announcements += 1
            else:
                self.stats.withdrawals += 1
            self._queue.append(update)

    def _notify_rib(
        self, asn: int, prefix: str, before: Optional[Route], after: Optional[Route]
    ) -> None:
        if before == after:
            return
        self.stats.best_route_changes += 1
        for observer in self._rib_observers:
            observer(asn, prefix, before, after)

    # -- inspection ---------------------------------------------------------------------

    def best_route(self, asn: int, prefix: str) -> Optional[Route]:
        return self._daemon(asn).best_route(prefix)

    def reachable_ases(self, prefix: str) -> List[int]:
        """ASes that currently have a route to *prefix*."""
        return sorted(
            asn for asn, daemon in self.daemons.items() if daemon.best_route(prefix) is not None
        )
