"""Legacy ("black box") application integration.

The paper's second use case tracks provenance for an *unmodified legacy
application* — the Quagga BGP routing suite — by interposing a proxy that
extracts state changes from intercepted application messages and by using
NDlog "maybe" rules to describe the possible causal relationships between
messages entering and leaving the black box.

This package provides the full substitute stack:

* :mod:`repro.legacy.relationships` — AS-level topologies with
  customer/provider/peer business relationships;
* :mod:`repro.legacy.bgp` — a BGP decision-process simulator standing in for
  the Quagga daemons (announcements, withdrawals, Gao-Rexford export
  policies, AS-path loop detection);
* :mod:`repro.legacy.routeviews` — a seeded generator of RouteViews-style
  update traces;
* :mod:`repro.legacy.maybe` — evaluation of "maybe" rules over observed
  input/output tuples;
* :mod:`repro.legacy.proxy` — the proxy that observes BGP messages and RIB
  changes and turns them into ``inputRoute`` / ``outputRoute`` /
  ``routeEntry`` tuples with provenance;
* :mod:`repro.legacy.quagga` — a facade wiring everything together into a
  queryable deployment.
"""

from repro.legacy.relationships import ASRelationship, ASTopology
from repro.legacy.bgp import BgpDaemon, BgpNetwork, BgpUpdate, Route
from repro.legacy.routeviews import TraceEvent, generate_trace, parse_trace, render_trace
from repro.legacy.maybe import MaybeRuleEvaluator
from repro.legacy.proxy import LegacyProxy, LEGACY_PROGRAM_SOURCE
from repro.legacy.quagga import QuaggaDeployment

__all__ = [
    "ASRelationship",
    "ASTopology",
    "BgpDaemon",
    "BgpNetwork",
    "BgpUpdate",
    "Route",
    "TraceEvent",
    "generate_trace",
    "parse_trace",
    "render_trace",
    "MaybeRuleEvaluator",
    "LegacyProxy",
    "LEGACY_PROGRAM_SOURCE",
    "QuaggaDeployment",
]
