"""The Quagga/BGP use case, end to end.

:class:`QuaggaDeployment` wires together everything the paper's second
demonstration use case needs: an AS-level topology of large and small ISPs
with customer/provider/peer relationships, one simulated BGP daemon per AS
(the Quagga substitute), the NetTrails proxy intercepting their messages, a
NetTrails runtime holding the captured tuples and their provenance, and the
distributed query engine for asking where routing entries came from.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.runtime import NetTrailsRuntime
from repro.engine.topology import Topology
from repro.core.query import DistributedQueryEngine
from repro.core.results import QueryResult
from repro.legacy import relationships
from repro.legacy.bgp import BgpNetwork
from repro.legacy.proxy import LEGACY_PROGRAM_SOURCE, LegacyProxy, ROUTE_ENTRY, as_node_id
from repro.legacy.relationships import ASTopology
from repro.legacy.routeviews import TraceEvent, generate_trace


def _node_topology(as_topology: ASTopology) -> Topology:
    """One NetTrails node per AS, linked along the AS-level adjacencies."""
    topology = Topology(name=f"{as_topology.name}-nodes")
    for asn in sorted(as_topology.ases):
        topology.add_node(as_node_id(asn))
    for a, b, _relationship in as_topology.links():
        topology.add_edge(as_node_id(a), as_node_id(b), 1.0)
    return topology


class QuaggaDeployment:
    """A complete legacy-application deployment with provenance tracking."""

    def __init__(
        self,
        as_topology: Optional[ASTopology] = None,
        tier1_count: int = 3,
        tier2_per_tier1: int = 2,
        stubs_per_tier2: int = 2,
        seed: int = 0,
    ):
        self.as_topology = as_topology or relationships.hierarchy(
            tier1_count=tier1_count,
            tier2_per_tier1=tier2_per_tier1,
            stubs_per_tier2=stubs_per_tier2,
            seed=seed,
        )
        self.node_topology = _node_topology(self.as_topology)
        self.runtime = NetTrailsRuntime(
            LEGACY_PROGRAM_SOURCE,
            self.node_topology,
            provenance=True,
            program_name="quagga_bgp",
        )
        self.bgp = BgpNetwork(self.as_topology)
        self.proxy = LegacyProxy(self.runtime, self.bgp)
        self.queries = DistributedQueryEngine(self.runtime)
        self.events_played: List[TraceEvent] = []

    # -- driving the deployment ---------------------------------------------------------

    def play_event(self, event: TraceEvent) -> None:
        """Apply one trace event (origination or withdrawal) and converge BGP."""
        if event.announce:
            self.bgp.originate(event.asn, event.prefix)
        else:
            self.bgp.withdraw(event.asn, event.prefix)
        self.bgp.run()
        self.runtime.run_to_quiescence()
        self.events_played.append(event)

    def play_trace(self, events: Sequence[TraceEvent]) -> int:
        """Apply a whole trace in order; return the number of events played."""
        for event in events:
            self.play_event(event)
        return len(events)

    def play_generated_trace(self, prefixes_per_stub: int = 1, seed: int = 0, **kwargs) -> int:
        """Generate a RouteViews-style trace for this topology and play it."""
        events = generate_trace(
            self.as_topology, prefixes_per_stub=prefixes_per_stub, seed=seed, **kwargs
        )
        return self.play_trace(events)

    # -- inspection -----------------------------------------------------------------------

    @property
    def provenance(self):
        return self.runtime.provenance

    def route_entry(self, asn: int, prefix: str) -> Optional[Tuple[str, str, Tuple[int, ...]]]:
        """The currently installed routeEntry tuple values of *asn* for *prefix*."""
        fact = self.proxy.current_route_entry(asn, prefix)
        return fact.values if fact is not None else None  # type: ignore[return-value]

    def route_entries(self, prefix: str) -> Dict[int, Tuple[int, ...]]:
        """AS -> installed AS path for *prefix*, across the whole deployment."""
        result: Dict[int, Tuple[int, ...]] = {}
        for asn in sorted(self.as_topology.ases):
            entry = self.proxy.current_route_entry(asn, prefix)
            if entry is not None:
                result[asn] = entry.values[2]  # type: ignore[assignment]
        return result

    # -- provenance queries ------------------------------------------------------------------

    def derivation_of_route(self, asn: int, prefix: str, **kwargs) -> QueryResult:
        """Lineage of the routing entry *asn* installs for *prefix*.

        The returned base tuples are the intercepted advertisements (and the
        origin AS's own announcements) that the entry ultimately derives from
        — "derivation histories and origins of routing entries" in the
        paper's words.
        """
        fact = self.proxy.current_route_entry(asn, prefix)
        if fact is None:
            raise KeyError(f"AS {asn} has no installed route for {prefix}")
        return self.queries.lineage(ROUTE_ENTRY, list(fact.values), **kwargs)

    def participants_of_route(self, asn: int, prefix: str, **kwargs) -> QueryResult:
        """The set of ASes involved in the derivation of a routing entry."""
        fact = self.proxy.current_route_entry(asn, prefix)
        if fact is None:
            raise KeyError(f"AS {asn} has no installed route for {prefix}")
        return self.queries.participants(ROUTE_ENTRY, list(fact.values), **kwargs)
