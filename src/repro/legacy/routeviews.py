"""Synthetic RouteViews-style BGP update traces.

The paper drives its Quagga/BGP demonstration with "actual BGP traces from
RouteViews".  RouteViews archives are not available offline, so this module
generates *synthetic* traces with the same shape: a time-ordered stream of
prefix originations and withdrawals from stub/edge ASes, including flapping
prefixes (announce → withdraw → re-announce bursts).  Traces are fully
deterministic for a given seed and can be rendered to / parsed from a simple
MRT-inspired text format so they can be stored alongside experiments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.errors import TraceFormatError
from repro.legacy.relationships import ASTopology


@dataclass(frozen=True)
class TraceEvent:
    """One trace record: an AS announcing or withdrawing a prefix it originates."""

    time: float
    asn: int
    prefix: str
    announce: bool

    def __str__(self) -> str:
        kind = "A" if self.announce else "W"
        return f"{self.time!r}|{kind}|{self.asn}|{self.prefix}"


def _prefix_for(index: int) -> str:
    """A deterministic, unique /24 prefix for the *index*-th origination."""
    second = 1 + (index // 255) % 255
    third = index % 255
    return f"10.{second}.{third}.0/24"


def generate_trace(
    topology: ASTopology,
    prefixes_per_stub: int = 1,
    flap_probability: float = 0.3,
    flaps_max: int = 2,
    duration: float = 100.0,
    seed: int = 0,
    origin_ases: Optional[Sequence[int]] = None,
) -> List[TraceEvent]:
    """Generate a synthetic RouteViews-like update trace for *topology*.

    Every origin AS (by default the lowest-tier ASes) announces
    ``prefixes_per_stub`` prefixes at a random time; with probability
    ``flap_probability`` a prefix later flaps (withdraw + re-announce) up to
    ``flaps_max`` times.  Events are returned sorted by time.
    """
    rng = random.Random(seed)
    if origin_ases is None:
        max_tier = max(topology.tiers.values()) if topology.tiers else 3
        origin_ases = sorted(asn for asn, tier in topology.tiers.items() if tier == max_tier)
        if not origin_ases:
            origin_ases = sorted(topology.ases)

    events: List[TraceEvent] = []
    prefix_index = 0
    for asn in origin_ases:
        for _ in range(prefixes_per_stub):
            prefix = _prefix_for(prefix_index)
            prefix_index += 1
            announce_time = rng.uniform(0.0, duration * 0.4)
            events.append(TraceEvent(announce_time, asn, prefix, announce=True))
            if rng.random() < flap_probability:
                flap_count = rng.randint(1, flaps_max)
                time = announce_time
                for _ in range(flap_count):
                    withdraw_time = rng.uniform(time + 1.0, duration * 0.7)
                    reannounce_time = rng.uniform(withdraw_time + 1.0, duration)
                    events.append(TraceEvent(withdraw_time, asn, prefix, announce=False))
                    events.append(TraceEvent(reannounce_time, asn, prefix, announce=True))
                    time = reannounce_time
    events.sort(key=lambda event: (event.time, event.asn, event.prefix))
    return events


def render_trace(events: Iterable[TraceEvent]) -> str:
    """Serialise a trace to the text format ``time|A/W|asn|prefix`` (one per line)."""
    return "\n".join(str(event) for event in events) + "\n"


def parse_trace(text: str) -> List[TraceEvent]:
    """Parse the text format produced by :func:`render_trace`."""
    events: List[TraceEvent] = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split("|")
        if len(parts) != 4:
            raise TraceFormatError(f"line {line_number}: expected 4 fields, found {len(parts)}")
        time_text, kind, asn_text, prefix = parts
        if kind not in ("A", "W"):
            raise TraceFormatError(f"line {line_number}: unknown record type {kind!r}")
        try:
            time = float(time_text)
            asn = int(asn_text)
        except ValueError as exc:
            raise TraceFormatError(f"line {line_number}: {exc}") from exc
        events.append(TraceEvent(time=time, asn=asn, prefix=prefix, announce=kind == "A"))
    return events
