"""Evaluation of NDlog "maybe" rules over observed tuples.

The paper (§2.2): *"we utilize NDlog's concept of 'maybe' rules, which
describe possible causal relationships between messages entering and leaving
the legacy application.  In contrast to ordinary derivation rules, the output
tuple of a 'maybe' rule is not necessarily always derived (depending on
internal decisions in the legacy application)."*

A :class:`MaybeRuleEvaluator` is attached to the node of one legacy
application instance.  When the proxy observes an *output* tuple (e.g. an
``outputRoute``), the evaluator unifies it with the heads of the installed
"maybe" rules, matches the rule bodies against the tuples previously observed
at that node, checks the conditions (e.g. ``f_isExtend``) and, for every
match, fabricates a derivation linking the output tuple to its probable
inputs.  The derivation is then injected into the node through
:meth:`repro.engine.node.Node.apply_external_derivation`, so it lands in the
same provenance tables as ordinary rule firings.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.errors import LegacyIntegrationError
from repro.ndlog.ast import Assignment, Condition, Rule
from repro.ndlog.functions import FunctionRegistry
from repro.engine.dataflow import (
    Bindings,
    bound_positions,
    evaluate_term,
    match_atom,
    satisfies,
)
from repro.engine.evaluator import DerivationEffect
from repro.engine.node import Node
from repro.engine.tuples import Fact


@dataclass
class _MaybeFiring:
    firing_id: str
    rule_name: str
    head_fact: Fact
    body_facts: Tuple[Fact, ...]


class MaybeRuleEvaluator:
    """Matches observed output tuples against "maybe" rules at one node."""

    def __init__(self, node: Node, rules: List[Rule], registry: FunctionRegistry, program_name: str):
        for rule in rules:
            if not rule.is_maybe:
                raise LegacyIntegrationError(
                    f"rule {rule.name!r} is not a maybe rule; only '?-' rules belong here"
                )
        self.node = node
        self.rules = list(rules)
        self.registry = registry
        self.program_name = program_name
        self._firing_seq = itertools.count(1)
        self._firings: Dict[str, _MaybeFiring] = {}
        self._by_body_fact: Dict[Fact, Set[str]] = {}
        self._by_head_fact: Dict[Fact, Set[str]] = {}

    # -- observation entry points --------------------------------------------------------

    def observe_input(self, fact: Fact) -> None:
        """Record an observed input tuple (stored as a base tuple at the node)."""
        self.node.insert_base(fact)

    def retract_input(self, fact: Fact) -> None:
        """Retract an observed input tuple and every maybe-derivation that used it."""
        for firing_id in sorted(self._by_body_fact.get(fact, set())):
            self._retract_firing(firing_id)
        self.node.delete_base(fact)

    def observe_output(self, fact: Fact) -> int:
        """Record an observed output tuple, inferring its provenance via maybe rules.

        Returns the number of inferred derivations.  When no maybe rule
        matches, the tuple is recorded as a base tuple (the legacy application
        produced it for reasons the rules cannot explain — e.g. a locally
        originated route).
        """
        matches = self._match(fact)
        if not matches:
            self.node.insert_base(fact)
            return 0
        for rule, body_facts in matches:
            firing_id = f"{self.node.id}#maybe{next(self._firing_seq)}"
            firing = _MaybeFiring(
                firing_id=firing_id,
                rule_name=rule.name,
                head_fact=fact,
                body_facts=body_facts,
            )
            self._firings[firing_id] = firing
            self._by_head_fact.setdefault(fact, set()).add(firing_id)
            for body_fact in set(body_facts):
                self._by_body_fact.setdefault(body_fact, set()).add(firing_id)
            self.node.apply_external_derivation(self._effect(firing, sign=+1))
        return len(matches)

    def retract_output(self, fact: Fact) -> None:
        """Retract an observed output tuple and all its inferred derivations."""
        firing_ids = sorted(self._by_head_fact.get(fact, set()))
        if not firing_ids:
            # It was recorded as an unexplained base tuple.
            if self.node.store.contains(fact):
                self.node.delete_base(fact)
            return
        for firing_id in firing_ids:
            self._retract_firing(firing_id)

    # -- internals -------------------------------------------------------------------------

    def _retract_firing(self, firing_id: str) -> None:
        firing = self._firings.pop(firing_id, None)
        if firing is None:
            return
        heads = self._by_head_fact.get(firing.head_fact)
        if heads is not None:
            heads.discard(firing_id)
            if not heads:
                del self._by_head_fact[firing.head_fact]
        for body_fact in set(firing.body_facts):
            bodies = self._by_body_fact.get(body_fact)
            if bodies is not None:
                bodies.discard(firing_id)
                if not bodies:
                    del self._by_body_fact[body_fact]
        self.node.apply_external_derivation(self._effect(firing, sign=-1))

    def _effect(self, firing: _MaybeFiring, sign: int) -> DerivationEffect:
        return DerivationEffect(
            sign=sign,
            firing_id=firing.firing_id,
            rule_name=firing.rule_name,
            program_name=self.program_name,
            head_fact=firing.head_fact,
            head_location=self.node.id,
            body_facts=firing.body_facts,
        )

    def _match(self, output: Fact) -> List[Tuple[Rule, Tuple[Fact, ...]]]:
        """Find every (rule, body facts) combination explaining *output*."""
        matches: List[Tuple[Rule, Tuple[Fact, ...]]] = []
        for rule in self.rules:
            head_bindings = match_atom(rule.head, output, {}, self.registry)
            if head_bindings is None:
                continue
            for bindings, body_facts in self._enumerate_body(rule, head_bindings):
                matches.append((rule, body_facts))
        return matches

    def _enumerate_body(
        self, rule: Rule, bindings: Bindings
    ) -> List[Tuple[Bindings, Tuple[Fact, ...]]]:
        positives = rule.positive_literals
        results: List[Tuple[Bindings, Tuple[Fact, ...]]] = []
        store = self.node.store

        def recurse(index: int, current: Bindings, facts: Tuple[Fact, ...]) -> None:
            if index == len(positives):
                final = dict(current)
                for element in rule.body:
                    if isinstance(element, Assignment):
                        final[element.variable] = evaluate_term(
                            element.expression, final, self.registry
                        )
                    elif isinstance(element, Condition):
                        if not satisfies(element, final, self.registry):
                            return
                results.append((final, facts))
                return
            literal = positives[index]
            bound = bound_positions(literal.atom, current)
            for candidate in sorted(
                store.matching(literal.atom.relation, bound), key=lambda fact: repr(fact.values)
            ):
                extended = match_atom(literal.atom, candidate, current, self.registry)
                if extended is None:
                    continue
                recurse(index + 1, extended, facts + (candidate,))

        recurse(0, dict(bindings), ())
        return results
