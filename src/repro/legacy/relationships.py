"""AS-level topologies with business relationships.

The paper's BGP use case builds "a topology of ASes that consists of several
large and small ISPs connected by a mix of customer/provider/peer
relationships".  :class:`ASTopology` models exactly that: a set of AS numbers
connected by links annotated with either a customer→provider or a peer↔peer
relationship, plus the standard Gao-Rexford export policy that the BGP
simulator applies.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import LegacyIntegrationError


class ASRelationship(Enum):
    """The business relationship on one AS-level link, seen from the first AS."""

    CUSTOMER_OF = "customer-of"   # first AS is a customer of the second (pays it)
    PROVIDER_OF = "provider-of"   # first AS is a provider of the second
    PEER = "peer"                 # settlement-free peering


@dataclass
class ASTopology:
    """ASes plus annotated relationships.

    Relationships are stored once per unordered pair in canonical form:
    ``(customer, provider)`` for transit links and ``(min, max)`` for peering
    links.
    """

    name: str = "as-topology"
    ases: Set[int] = field(default_factory=set)
    tiers: Dict[int, int] = field(default_factory=dict)
    _transit: Set[Tuple[int, int]] = field(default_factory=set)  # (customer, provider)
    _peering: Set[Tuple[int, int]] = field(default_factory=set)  # (a, b) with a < b

    # -- construction --------------------------------------------------------------

    def add_as(self, asn: int, tier: int = 3) -> None:
        self.ases.add(asn)
        self.tiers[asn] = tier

    def add_customer_provider(self, customer: int, provider: int) -> None:
        """Record that *customer* buys transit from *provider*."""
        self.add_as(customer, self.tiers.get(customer, 3))
        self.add_as(provider, self.tiers.get(provider, 3))
        self._transit.add((customer, provider))

    def add_peering(self, a: int, b: int) -> None:
        """Record a settlement-free peering between *a* and *b*."""
        self.add_as(a, self.tiers.get(a, 3))
        self.add_as(b, self.tiers.get(b, 3))
        self._peering.add((min(a, b), max(a, b)))

    # -- queries ---------------------------------------------------------------------

    def relationship(self, a: int, b: int) -> Optional[ASRelationship]:
        """The relationship of *a* towards *b*, or None when not adjacent."""
        if (a, b) in self._transit:
            return ASRelationship.CUSTOMER_OF
        if (b, a) in self._transit:
            return ASRelationship.PROVIDER_OF
        if (min(a, b), max(a, b)) in self._peering:
            return ASRelationship.PEER
        return None

    def neighbors(self, asn: int) -> List[int]:
        result = set()
        for customer, provider in self._transit:
            if customer == asn:
                result.add(provider)
            elif provider == asn:
                result.add(customer)
        for a, b in self._peering:
            if a == asn:
                result.add(b)
            elif b == asn:
                result.add(a)
        return sorted(result)

    def customers(self, asn: int) -> List[int]:
        return sorted(customer for customer, provider in self._transit if provider == asn)

    def providers(self, asn: int) -> List[int]:
        return sorted(provider for customer, provider in self._transit if customer == asn)

    def peers(self, asn: int) -> List[int]:
        result = []
        for a, b in self._peering:
            if a == asn:
                result.append(b)
            elif b == asn:
                result.append(a)
        return sorted(result)

    def links(self) -> List[Tuple[int, int, ASRelationship]]:
        """Every adjacency once, annotated with the first AS's relationship."""
        result: List[Tuple[int, int, ASRelationship]] = []
        for customer, provider in sorted(self._transit):
            result.append((customer, provider, ASRelationship.CUSTOMER_OF))
        for a, b in sorted(self._peering):
            result.append((a, b, ASRelationship.PEER))
        return result

    def as_count(self) -> int:
        return len(self.ases)

    # -- export policy ------------------------------------------------------------------

    def should_export(self, exporter: int, learned_from: Optional[int], to_neighbor: int) -> bool:
        """Gao-Rexford export policy.

        Routes learned from customers (or originated locally,
        ``learned_from is None``) are exported to every neighbor; routes
        learned from peers or providers are exported only to customers.
        """
        if self.relationship(exporter, to_neighbor) is None:
            raise LegacyIntegrationError(
                f"AS {exporter} and AS {to_neighbor} are not adjacent"
            )
        if learned_from is None:
            return True
        relationship = self.relationship(exporter, learned_from)
        if relationship is None:
            raise LegacyIntegrationError(
                f"AS {exporter} did not learn routes from non-neighbor AS {learned_from}"
            )
        if relationship == ASRelationship.PROVIDER_OF:
            # learned from a customer: export everywhere
            return True
        # learned from a peer or provider: only export to customers
        return self.relationship(exporter, to_neighbor) == ASRelationship.PROVIDER_OF

    def local_preference(self, asn: int, learned_from: int) -> int:
        """Standard preference: customer routes > peer routes > provider routes."""
        relationship = self.relationship(asn, learned_from)
        if relationship == ASRelationship.PROVIDER_OF:
            return 300
        if relationship == ASRelationship.PEER:
            return 200
        return 100


def hierarchy(
    tier1_count: int = 3,
    tier2_per_tier1: int = 2,
    stubs_per_tier2: int = 2,
    seed: int = 0,
    base_asn: int = 100,
) -> ASTopology:
    """A hierarchical inter-domain topology: tier-1 clique, tier-2 customers, stubs.

    Mirrors :func:`repro.engine.topology.isp_hierarchy` but with business
    relationships: tier-1s peer with each other, tier-2s buy transit from
    tier-1s (with occasional tier-2 lateral peering), stubs buy transit from
    tier-2s.
    """
    rng = random.Random(seed)
    topology = ASTopology(name=f"hierarchy-{tier1_count}x{tier2_per_tier1}x{stubs_per_tier2}")

    tier1 = [base_asn + index for index in range(tier1_count)]
    for asn in tier1:
        topology.add_as(asn, tier=1)
    for i, a in enumerate(tier1):
        for b in tier1[i + 1 :]:
            topology.add_peering(a, b)

    next_asn = base_asn + tier1_count
    for provider in tier1:
        previous_tier2: Optional[int] = None
        for _ in range(tier2_per_tier1):
            tier2 = next_asn
            next_asn += 1
            topology.add_as(tier2, tier=2)
            topology.add_customer_provider(tier2, provider)
            if previous_tier2 is not None and rng.random() < 0.5:
                topology.add_peering(tier2, previous_tier2)
            previous_tier2 = tier2
            for _ in range(stubs_per_tier2):
                stub = next_asn
                next_asn += 1
                topology.add_as(stub, tier=3)
                topology.add_customer_provider(stub, tier2)
    return topology
