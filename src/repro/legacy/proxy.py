"""The NetTrails proxy for legacy applications.

The proxy sits on the wire between legacy application instances (here: the
BGP daemons of :mod:`repro.legacy.bgp`).  It turns every intercepted message
and every observed routing-table change into NDlog tuples located at the node
of the corresponding application instance:

* ``outputRoute(@AS, ToNeighbor, Prefix, Path)`` — an advertisement leaving
  ``AS`` towards ``ToNeighbor`` (recorded as the message is intercepted);
* ``inputRoute(@AS, FromNeighbor, Prefix, Path)`` — the same advertisement as
  it arrives at its receiver; it is *derived* from the sender's
  ``outputRoute`` by the ordinary rule ``tr1`` below, which gives the
  provenance graph its cross-AS edges;
* ``routeEntry(@AS, Prefix, Path)`` — the route ``AS`` currently installs for
  ``Prefix`` (recorded when the proxy observes a RIB change).

Dependencies *inside* the black box are inferred by the "maybe" rules of
:data:`LEGACY_PROGRAM_SOURCE` — rule ``br1`` is taken verbatim from the paper
— evaluated by :class:`repro.legacy.maybe.MaybeRuleEvaluator`.  The result is
that provenance of the legacy application's state lands in the very same
distributed ``prov`` / ``ruleExec`` tables as provenance of declarative
networks, and can be queried with the same distributed query engine.

AS paths inside tuples use NetTrails node identifiers (``"as104"``), so the
``f_isExtend(Route2, Route1, AS)`` check of rule ``br1`` compares like with
like.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import LegacyIntegrationError
from repro.engine.runtime import NetTrailsRuntime
from repro.engine.tuples import Fact
from repro.legacy.bgp import BgpNetwork, BgpUpdate, Route
from repro.legacy.maybe import MaybeRuleEvaluator

#: The NDlog program installed for the Quagga/BGP use case.  Rule ``br1`` is
#: the "maybe" rule shown in the paper (Section 2.2); ``br2`` additionally
#: explains installed routing entries by the advertisements that carried
#: them, and the ordinary rule ``tr1`` models the transmission of an
#: advertisement from the sending AS to the receiving AS.
LEGACY_PROGRAM_SOURCE = """
materialize(outputRoute, infinity, infinity, keys(1, 2, 3)).
materialize(inputRoute, infinity, infinity, keys(1, 2, 3)).
materialize(routeEntry, infinity, infinity, keys(1, 2)).

tr1 inputRoute(@Receiver, Sender, Prefix, Path) :-
    outputRoute(@Sender, Receiver, Prefix, Path).

br1 outputRoute(@AS, R2, Prefix, Route2) ?-
    inputRoute(@AS, R1, Prefix, Route1),
    f_isExtend(Route2, Route1, AS) == 1.

br2 routeEntry(@AS, Prefix, Route) ?-
    inputRoute(@AS, R1, Prefix, Route).
"""

INPUT_ROUTE = "inputRoute"
OUTPUT_ROUTE = "outputRoute"
ROUTE_ENTRY = "routeEntry"


def as_node_id(asn: int) -> str:
    """The NetTrails node identifier used for one AS."""
    return f"as{asn}"


def as_path_values(as_path: Tuple[int, ...]) -> Tuple[str, ...]:
    """An AS path rendered with node identifiers (``(104, 105)`` -> ``("as104", "as105")``)."""
    return tuple(as_node_id(asn) for asn in as_path)


@dataclass
class ProxyStats:
    """Counters describing what the proxy has observed and inferred."""

    messages_observed: int = 0
    outputs_recorded: int = 0
    outputs_explained: int = 0
    outputs_unexplained: int = 0
    route_entries_recorded: int = 0
    withdrawals_processed: int = 0


class LegacyProxy:
    """Observes a :class:`BgpNetwork` and feeds a NetTrails runtime."""

    def __init__(self, runtime: NetTrailsRuntime, bgp_network: BgpNetwork):
        self.runtime = runtime
        self.bgp = bgp_network
        self.stats = ProxyStats()

        maybe_rules = runtime.compiled.maybe_rules
        if not maybe_rules:
            raise LegacyIntegrationError(
                "the runtime's program has no maybe rules; the proxy cannot infer dependencies"
            )
        self._evaluators: Dict[object, MaybeRuleEvaluator] = {}
        for node_id, node in runtime.nodes.items():
            self._evaluators[node_id] = MaybeRuleEvaluator(
                node, maybe_rules, runtime.compiled.registry, runtime.compiled.name
            )

        # Currently-live facts keyed by their logical identity, so that
        # replacements and withdrawals retract exactly what was recorded.
        self._outputs: Dict[Tuple[int, int, str], Fact] = {}
        self._route_entries: Dict[Tuple[int, str], Fact] = {}

        bgp_network.add_message_observer(self.on_message)
        bgp_network.add_rib_observer(self.on_rib_change)

    # -- helpers -----------------------------------------------------------------------

    def _evaluator(self, asn: int) -> MaybeRuleEvaluator:
        node_id = as_node_id(asn)
        if node_id not in self._evaluators:
            raise LegacyIntegrationError(f"no NetTrails node registered for AS {asn}")
        return self._evaluators[node_id]

    # -- observation callbacks ------------------------------------------------------------

    def on_message(self, update: BgpUpdate) -> None:
        """Intercept one BGP update message (called by the BGP network)."""
        self.stats.messages_observed += 1
        evaluator = self._evaluator(update.sender)
        key = (update.sender, update.receiver, update.prefix)
        previous = self._outputs.pop(key, None)
        if previous is not None:
            evaluator.retract_output(previous)
        if update.announce:
            fact = Fact.make(
                OUTPUT_ROUTE,
                [
                    as_node_id(update.sender),
                    as_node_id(update.receiver),
                    update.prefix,
                    as_path_values(update.as_path),
                ],
            )
            self._outputs[key] = fact
            explained = evaluator.observe_output(fact)
            self.stats.outputs_recorded += 1
            if explained:
                self.stats.outputs_explained += 1
            else:
                self.stats.outputs_unexplained += 1
        else:
            self.stats.withdrawals_processed += 1
        # Deliver the derived inputRoute (rule tr1) before the receiving
        # daemon processes the message, mirroring the fact that the real
        # message reaches the receiver at that point.
        self.runtime.run_to_quiescence()

    def on_rib_change(
        self, asn: int, prefix: str, before: Optional[Route], after: Optional[Route]
    ) -> None:
        """Observe a change of the route an AS installs for a prefix."""
        evaluator = self._evaluator(asn)
        key = (asn, prefix)
        previous = self._route_entries.pop(key, None)
        if previous is not None:
            evaluator.retract_output(previous)
        if after is not None:
            fact = Fact.make(
                ROUTE_ENTRY, [as_node_id(asn), prefix, as_path_values(after.as_path)]
            )
            self._route_entries[key] = fact
            evaluator.observe_output(fact)
            self.stats.route_entries_recorded += 1
        self.runtime.run_to_quiescence()

    # -- inspection ------------------------------------------------------------------------------

    def current_route_entry(self, asn: int, prefix: str) -> Optional[Fact]:
        return self._route_entries.get((asn, prefix))

    def current_output(self, sender: int, receiver: int, prefix: str) -> Optional[Fact]:
        return self._outputs.get((sender, receiver, prefix))

    def input_routes(self, asn: int) -> List[Tuple[object, ...]]:
        """The ``inputRoute`` tuples currently derived at one AS's node."""
        return self.runtime.node_state(as_node_id(asn), INPUT_ROUTE)
