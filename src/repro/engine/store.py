"""Per-node tuple store with derivation counting and lazy secondary indexes.

Each node of the distributed system holds the horizontal partition of every
relation whose location attribute names that node.  The store implements
*set semantics with derivation counting*: a fact is present as long as it has
at least one derivation (a base insertion counts as the ``__base__``
derivation).  Incremental deletion removes derivations; only when the last
derivation disappears does the fact itself disappear, which is exactly the
behaviour the ExSPAN maintenance engine relies on.

Three store implementations share this contract:

* :class:`TupleStore` — the flat single-partition store, facts in Python
  dicts and secondary indexes as ``{key -> set of facts}`` (the reference /
  ablation representation);
* :class:`ColumnarTupleStore` — the same API with a dictionary-encoded
  columnar core: every fact of a relation is interned once into a dense
  integer id by a per-relation :class:`FactInterner`, and secondary indexes
  hold sorted ``array('q')`` id lists instead of fact sets.  Joins probe the
  id arrays directly (:meth:`ColumnarTupleStore.probe_columns`), the delta
  batch path operates on interned ids, and the evaluator's batch exclusion
  sets become per-relation id sets (:meth:`ColumnarTupleStore.begin_batch_probe`).
  Selected with ``NetTrailsRuntime(columnar=True)`` / ``NETTRAILS_COLUMNAR``;
  the dict-based store remains the default and the equivalence baseline.
* :class:`ShardedTupleStore` — a second horizontal partitioning *inside* one
  logical node: facts are hash-partitioned by their key columns across K
  worker shards (each shard is a private :class:`TupleStore` with its own
  secondary indexes), while the sharded store itself presents the merged
  single-store API.  Delta batches are split into per-shard sub-batches and
  absorbed through a pluggable :class:`ShardExecutor` — serially in the
  deterministic reference mode, or on a thread pool when a node is configured
  with ``shard_workers=N``.  Because every fact hashes to exactly one shard,
  the per-fact delta sub-sequences are preserved verbatim and the merged
  result of :meth:`ShardedTupleStore.apply_delta_batch` is bit-identical to
  the unsharded store's, whatever K and whichever executor.
"""

from __future__ import annotations

import zlib
from array import array
from bisect import bisect_left, insort
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import EngineError
from repro.engine.tuples import Fact

#: Synthetic derivation id used for base-tuple insertions.
BASE_DERIVATION = "__base__"


# ---------------------------------------------------------------------------
# Shard executors
# ---------------------------------------------------------------------------


class ShardExecutor:
    """Strategy for running independent per-shard jobs.

    Implementations must return results in submission order — that order is
    what makes the cross-shard merges of :class:`ShardedTupleStore` and
    :meth:`repro.engine.evaluator.LocalEvaluator.on_batch` deterministic.
    """

    def map(self, fn: Callable, items: Sequence) -> List:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        """Release any worker resources (threads); idempotent."""


class SerialShardExecutor(ShardExecutor):
    """The deterministic reference mode: shards are processed one by one."""

    def map(self, fn: Callable, items: Sequence) -> List:
        return [fn(item) for item in items]


class ThreadShardExecutor(ShardExecutor):
    """Run per-shard jobs on a lazily-created thread pool.

    Each shard's private store is only ever touched by the one job working on
    that shard, so jobs share no mutable state; results are collected in
    submission order, keeping the merge deterministic regardless of thread
    scheduling.
    """

    def __init__(self, workers: int):
        if workers < 1:
            raise EngineError(f"ThreadShardExecutor needs >= 1 worker, got {workers}")
        self.workers = workers
        self._pool = None

    def map(self, fn: Callable, items: Sequence) -> List:
        items = list(items)
        if len(items) <= 1:
            return [fn(item) for item in items]
        if self._pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="shard"
            )
        return list(self._pool.map(fn, items))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def shard_hash(relation: str, key_values: Tuple[object, ...]) -> int:
    """A process-independent hash of a fact's partitioning key.

    Python's built-in ``hash`` is salted per process for strings, so it would
    scatter the same fact to different shards across runs; CRC32 of the
    canonical repr is stable, which is what makes shard assignment (and hence
    sharded execution traces) reproducible.
    """
    return zlib.crc32(repr((relation, key_values)).encode("utf-8"))


class TupleStore:
    """Facts grouped by relation, each with its set of derivation ids."""

    #: True for the dictionary-encoded columnar implementation; consumers
    #: (the evaluator's batch join) feature-test this instead of the class.
    columnar = False

    def __init__(self) -> None:
        self._facts: Dict[str, Dict[Fact, Set[str]]] = {}
        # (relation, positions) -> {projected values -> set of facts}
        self._indexes: Dict[Tuple[str, Tuple[int, ...]], Dict[Tuple[object, ...], Set[Fact]]] = {}
        # Memoized sorted non-empty relation names; invalidated only when a
        # relation transitions between empty and non-empty, so the common
        # relations() call is allocation- and sort-free.
        self._relations_cache: Optional[List[str]] = None

    # -- basic accessors --------------------------------------------------------

    def relations(self) -> List[str]:
        """Sorted names of the non-empty relations.

        The sorted order is load-bearing: it is the deterministic iteration
        order used by :meth:`snapshot` and by the cross-shard merges of
        :class:`ShardedTupleStore`.  The result is memoized across calls and
        recomputed only when a relation becomes (non-)empty.
        """
        if not self._facts:
            return []
        if self._relations_cache is None:
            self._relations_cache = sorted(
                relation for relation, facts in self._facts.items() if facts
            )
        return list(self._relations_cache)

    def facts(self, relation: str) -> Iterator[Fact]:
        yield from self._facts.get(relation, {})

    def all_facts(self) -> Iterator[Fact]:
        for facts in self._facts.values():
            yield from facts

    def contains(self, fact: Fact) -> bool:
        return fact in self._facts.get(fact.relation, {})

    def count(self, relation: Optional[str] = None) -> int:
        if relation is not None:
            return len(self._facts.get(relation, {}))
        return sum(len(facts) for facts in self._facts.values())

    def derivations(self, fact: Fact) -> Set[str]:
        """Return the derivation ids currently supporting *fact* (empty if absent)."""
        return set(self._facts.get(fact.relation, {}).get(fact, set()))

    def derivation_count(self, fact: Fact) -> int:
        return len(self._facts.get(fact.relation, {}).get(fact, ()))

    # -- mutation ----------------------------------------------------------------

    def add_derivation(self, fact: Fact, derivation_id: str) -> bool:
        """Add one derivation of *fact*; return True when the fact is newly present."""
        by_fact = self._facts.setdefault(fact.relation, {})
        existing = by_fact.get(fact)
        if existing is None:
            if not by_fact:
                self._relations_cache = None
            by_fact[fact] = {derivation_id}
            self._index_add(fact)
            return True
        existing.add(derivation_id)
        return False

    def remove_derivation(self, fact: Fact, derivation_id: str) -> bool:
        """Remove one derivation of *fact*; return True when the fact disappears.

        Removing a derivation that is not present is a no-op returning False,
        which makes retraction idempotent (retraction messages may race with
        the derivations they cancel).
        """
        by_fact = self._facts.get(fact.relation)
        if not by_fact or fact not in by_fact:
            return False
        derivations = by_fact[fact]
        derivations.discard(derivation_id)
        if derivations:
            return False
        del by_fact[fact]
        if not by_fact:
            self._relations_cache = None
        self._index_remove(fact)
        return True

    def apply_delta_batch(
        self, deltas: Iterable[Tuple[int, Fact, str]]
    ) -> Tuple[List[Fact], List[Fact], List[bool]]:
        """Apply an ordered batch of ``(sign, fact, derivation_id)`` deltas.

        Returns ``(newly_present, disappeared, applied)``:

        * *newly_present* / *disappeared* are the facts whose *net* presence
          changed over the whole batch, in first-transition order.  A fact
          that flickers (appears and disappears within the batch, or vice
          versa) is reported in neither list — its net effect on the
          evaluator is nil, which is exactly what lets
          :meth:`repro.engine.evaluator.LocalEvaluator.on_batch` skip the
          derive-then-retract churn a one-at-a-time replay would produce.
        * *applied* has one flag per input delta: for insertions it is always
          True, for deletions it is True iff the derivation was actually
          present (callers mirror it into their provenance support records,
          keeping retraction idempotent).
        """
        before: Dict[Fact, bool] = {}
        order: List[Fact] = []
        applied: List[bool] = []
        for sign, fact, derivation_id in deltas:
            if fact not in before:
                before[fact] = self.contains(fact)
                order.append(fact)
            if sign > 0:
                self.add_derivation(fact, derivation_id)
                applied.append(True)
            else:
                had = derivation_id in self._facts.get(fact.relation, {}).get(fact, ())
                self.remove_derivation(fact, derivation_id)
                applied.append(had)
        newly_present: List[Fact] = []
        disappeared: List[Fact] = []
        for fact in order:
            now = self.contains(fact)
            if now and not before[fact]:
                newly_present.append(fact)
            elif before[fact] and not now:
                disappeared.append(fact)
        return newly_present, disappeared, applied

    def remove_fact(self, fact: Fact) -> Set[str]:
        """Forcibly remove *fact*, returning the derivation ids it had."""
        by_fact = self._facts.get(fact.relation)
        if not by_fact or fact not in by_fact:
            return set()
        derivations = by_fact.pop(fact)
        if not by_fact:
            self._relations_cache = None
        self._index_remove(fact)
        return derivations

    # -- scans and indexes ---------------------------------------------------------

    def matching(self, relation: str, bound: Dict[int, object]) -> Iterator[Fact]:
        """Iterate facts of *relation* whose attributes match the *bound* positions.

        When *bound* is non-empty a hash index on those positions is created
        lazily and maintained incrementally afterwards.
        """
        if not bound:
            yield from self.facts(relation)
            return
        positions = tuple(sorted(bound))
        key = tuple(bound[position] for position in positions)
        index = self._ensure_index(relation, positions)
        yield from index.get(key, ())

    def prepare_index(self, relation: str, positions: Tuple[int, ...]) -> None:
        """Build (or reuse) the secondary index on *positions* of *relation*.

        Batch evaluation calls this up front so index construction is paid
        once per (relation, positions) pair rather than being interleaved
        with the first matching scan of a join pass.
        """
        if positions:
            self._ensure_index(relation, tuple(sorted(positions)))

    def _ensure_index(
        self, relation: str, positions: Tuple[int, ...]
    ) -> Dict[Tuple[object, ...], Set[Fact]]:
        index_key = (relation, positions)
        if index_key not in self._indexes:
            index: Dict[Tuple[object, ...], Set[Fact]] = {}
            for fact in self.facts(relation):
                projected = tuple(fact.values[position] for position in positions)
                index.setdefault(projected, set()).add(fact)
            self._indexes[index_key] = index
        return self._indexes[index_key]

    def _index_add(self, fact: Fact) -> None:
        for (relation, positions), index in self._indexes.items():
            if relation != fact.relation:
                continue
            if any(position >= fact.arity for position in positions):
                raise EngineError(
                    f"fact {fact} has arity {fact.arity}, too small for index on {positions}"
                )
            projected = tuple(fact.values[position] for position in positions)
            index.setdefault(projected, set()).add(fact)

    def _index_remove(self, fact: Fact) -> None:
        for (relation, positions), index in self._indexes.items():
            if relation != fact.relation:
                continue
            projected = tuple(fact.values[position] for position in positions)
            bucket = index.get(projected)
            if bucket is not None:
                bucket.discard(fact)
                if not bucket:
                    del index[projected]

    # -- snapshots -------------------------------------------------------------------

    def snapshot(self) -> Dict[str, List[Tuple[Tuple[object, ...], int]]]:
        """Return a serialisable snapshot: relation -> [(values, derivation count)]."""
        return _snapshot_of(self)


def _snapshot_of(store) -> Dict[str, List[Tuple[Tuple[object, ...], int]]]:
    """Canonical snapshot of any store implementing the TupleStore contract.

    The row order is fully determined by the store *contents* (sorted
    relations, then facts sorted by value repr), so sharded and unsharded
    stores holding the same facts produce bit-identical snapshots.
    """
    result: Dict[str, List[Tuple[Tuple[object, ...], int]]] = {}
    for relation in store.relations():
        rows = []
        for fact in sorted(store.facts(relation), key=lambda f: repr(f.values)):
            rows.append((fact.values, store.derivation_count(fact)))
        result[relation] = rows
    return result


# ---------------------------------------------------------------------------
# Columnar store (fact interning + array-backed indexes)
# ---------------------------------------------------------------------------


class FactInterner:
    """Dense integer ids for the facts of one relation.

    Ids are assigned in first-appearance order and never reused: a fact that
    disappears and later reappears keeps its id, so index maintenance under
    churn never invalidates previously-built id arrays.  ``facts`` is the
    id -> fact column (a plain list, indexed directly on the join hot path).
    """

    __slots__ = ("facts", "_ids")

    def __init__(self) -> None:
        self.facts: List[Fact] = []
        self._ids: Dict[Fact, int] = {}

    def __len__(self) -> int:
        return len(self.facts)

    def intern(self, fact: Fact) -> int:
        """The id of *fact*, assigning the next dense id on first sight."""
        fid = self._ids.get(fact)
        if fid is None:
            fid = len(self.facts)
            self._ids[fact] = fid
            self.facts.append(fact)
        return fid

    def id_of(self, fact: Fact) -> Optional[int]:
        """The id of *fact* if it has ever been interned, else ``None``."""
        return self._ids.get(fact)


def _sorted_id_remove(ids: array, fid: int) -> None:
    """Remove *fid* from a sorted id array (no-op when absent)."""
    position = bisect_left(ids, fid)
    if position < len(ids) and ids[position] == fid:
        ids.pop(position)


class ColumnarTupleStore(TupleStore):
    """A :class:`TupleStore` with an interned, column-oriented join core.

    The public contract — presence, derivation counting, delta-batch
    semantics, snapshots — is byte-identical to the base class; what changes
    is the physical representation behind scans:

    * every fact is interned once per relation (:class:`FactInterner`);
    * secondary indexes map a key tuple to a *sorted* ``array('q')`` of fact
      ids instead of a set of fact objects, so a join probe walks a compact
      machine-typed array in ascending-id (deterministic) order;
    * :meth:`apply_delta_batch` tracks net presence transitions by interned
      id rather than by fact hashing;
    * :meth:`probe_columns` exposes the raw (facts column, id array) pair to
      the evaluator's compiled join plans, and
      :meth:`begin_batch_probe` / :meth:`end_batch_probe` turn the current
      batch's delta facts into per-relation id sets — the batch-level probe
      tables the semi-naive exclusion rule checks against.

    Enumeration order of a bound :meth:`matching` scan is ascending intern
    id, which differs from the dict store's set order; every compared
    observable (sorted snapshots, content-addressed provenance, counts,
    query answers) is insensitive to within-batch enumeration order, and
    the columnar × dict property matrix pins that equivalence.
    """

    columnar = True

    def __init__(self) -> None:
        super().__init__()
        self._interners: Dict[str, FactInterner] = {}
        # (relation, positions) -> {projected values -> sorted id array}.
        # ``positions == ()`` is the whole-relation index (one bucket under
        # the empty key), serving unconstrained join probes.
        self._col_indexes: Dict[
            Tuple[str, Tuple[int, ...]], Dict[Tuple[object, ...], array]
        ] = {}
        # relation -> [(positions, max position, bucket dict)] — the per-add
        # maintenance registry, so mutating one fact touches only its own
        # relation's indexes (with the arity guard precomputed).
        self._col_by_relation: Dict[
            str, List[Tuple[Tuple[int, ...], int, Dict[Tuple[object, ...], array]]]
        ] = {}
        # relation -> interned ids of the current batch's delta facts; only
        # populated between begin_batch_probe/end_batch_probe.
        self._delta_ids: Dict[str, Set[int]] = {}

    # -- interning ---------------------------------------------------------------

    def interner(self, relation: str) -> FactInterner:
        interner = self._interners.get(relation)
        if interner is None:
            interner = self._interners[relation] = FactInterner()
        return interner

    # -- batch probe tables --------------------------------------------------------

    def begin_batch_probe(self, delta_facts: Iterable[Fact]) -> None:
        """Build the per-relation id sets of the current batch's delta facts.

        The evaluator calls this once per :meth:`on_batch` insert pass; the
        ids feed the batch exclusion rule (body positions before the delta
        position skip every delta fact of that relation) as O(1) integer-set
        probes instead of fact-hash lookups.
        """
        interners = self._interners
        tables: Dict[str, Set[int]] = {}
        for fact in delta_facts:
            relation = fact.relation
            interner = interners.get(relation)
            if interner is None:
                interner = interners[relation] = FactInterner()
            fid = interner.intern(fact)
            table = tables.get(relation)
            if table is None:
                table = tables[relation] = set()
            table.add(fid)
        self._delta_ids = tables

    def end_batch_probe(self) -> None:
        self._delta_ids = {}

    # -- columnar scans ------------------------------------------------------------

    _NO_BUCKETS: List[Tuple[List[Fact], Sequence[int], Optional[Set[int]]]] = []

    def probe_columns(
        self, relation: str, positions: Tuple[int, ...], key: Tuple[object, ...]
    ) -> List[Tuple[List[Fact], Sequence[int], Optional[Set[int]]]]:
        """Return ``(facts column, sorted id array, delta id set)`` buckets.

        One bucket per store partition (a flat store returns at most one; the
        sharded wrapper concatenates its shards').  ``positions`` empty means
        the whole relation.  The delta id set is ``None`` outside a batch
        probe or when the batch has no deltas of *relation*.  A plain list —
        not a generator — because this is the innermost allocation of the
        join hot loop.
        """
        interner = self._interners.get(relation)
        if interner is None:
            return self._NO_BUCKETS
        ids = self._ensure_col_index(relation, positions).get(key)
        if ids:
            return [(interner.facts, ids, self._delta_ids.get(relation))]
        return self._NO_BUCKETS

    def matching(self, relation: str, bound: Dict[int, object]) -> Iterator[Fact]:
        """Iterate matching facts via the id arrays (ascending intern id)."""
        if not bound:
            yield from self.facts(relation)
            return
        positions = tuple(sorted(bound))
        key = tuple(bound[position] for position in positions)
        ids = self._ensure_col_index(relation, positions).get(key)
        if ids:
            facts_column = self._interners[relation].facts
            for fid in ids:
                yield facts_column[fid]

    def prepare_index(self, relation: str, positions: Tuple[int, ...]) -> None:
        # Unlike the base class, the empty-positions (whole relation) index
        # is a real index here — prewarming it keeps the batch enumeration
        # stage free of index construction even for unconstrained probes.
        self._ensure_col_index(relation, tuple(sorted(positions)))

    def _ensure_col_index(
        self, relation: str, positions: Tuple[int, ...]
    ) -> Dict[Tuple[object, ...], array]:
        index_key = (relation, positions)
        index = self._col_indexes.get(index_key)
        if index is None:
            index = {}
            interner = self.interner(relation)
            for fact in self.facts(relation):
                fid = interner.intern(fact)
                projected = tuple(fact.values[position] for position in positions)
                bucket = index.get(projected)
                if bucket is None:
                    bucket = index[projected] = array("q")
                insort(bucket, fid)
            self._col_indexes[index_key] = index
            self._col_by_relation.setdefault(relation, []).append(
                (positions, max(positions, default=-1), index)
            )
        return index

    # -- index maintenance ---------------------------------------------------------

    def _index_add(self, fact: Fact) -> None:
        indexes = self._col_by_relation.get(fact.relation)
        if not indexes:
            return
        fid = self.interner(fact.relation).intern(fact)
        self._index_add_interned(indexes, fid, fact)

    def _index_add_interned(
        self,
        indexes: List[Tuple[Tuple[int, ...], int, Dict[Tuple[object, ...], array]]],
        fid: int,
        fact: Fact,
    ) -> None:
        values = fact.values
        arity = len(values)
        for positions, max_position, index in indexes:
            if max_position >= arity:
                raise EngineError(
                    f"fact {fact} has arity {arity}, too small for index on {positions}"
                )
            projected = tuple([values[position] for position in positions])
            bucket = index.get(projected)
            if bucket is None:
                bucket = index[projected] = array("q")
                bucket.append(fid)
            elif fid > bucket[-1]:
                # Fresh ids are assigned densely, so an id larger than the
                # current tail appends in O(1); only a re-appearing fact
                # pays the insort.
                bucket.append(fid)
            else:
                insort(bucket, fid)

    def _index_remove(self, fact: Fact) -> None:
        indexes = self._col_by_relation.get(fact.relation)
        if not indexes:
            return
        fid = self.interner(fact.relation).id_of(fact)
        if fid is None:
            return
        self._index_remove_interned(indexes, fid, fact)

    def _index_remove_interned(
        self,
        indexes: List[Tuple[Tuple[int, ...], int, Dict[Tuple[object, ...], array]]],
        fid: int,
        fact: Fact,
    ) -> None:
        values = fact.values
        for positions, _max_position, index in indexes:
            projected = tuple([values[position] for position in positions])
            bucket = index.get(projected)
            if bucket is not None:
                _sorted_id_remove(bucket, fid)
                if not bucket:
                    del index[projected]

    # -- id-based delta batch --------------------------------------------------------

    def apply_delta_batch(
        self, deltas: Iterable[Tuple[int, Fact, str]]
    ) -> Tuple[List[Fact], List[Fact], List[bool]]:
        """The :meth:`TupleStore.apply_delta_batch` contract, tracked by id.

        Each delta's fact is interned exactly once up front; the first-seen /
        net-transition bookkeeping then runs on per-relation integer maps
        instead of hashing fact objects per delta.
        """
        interners = self._interners
        facts_by_relation = self._facts
        col_by_relation = self._col_by_relation
        before: Dict[str, Dict[int, bool]] = {}
        order: List[Tuple[str, int, Fact]] = []
        applied: List[bool] = []
        # Deltas arrive in long same-relation runs (a batch is grouped by the
        # effects that produced it), so the per-relation lookups are hoisted
        # behind a one-entry cache instead of being repeated per delta.
        last_relation: Optional[str] = None
        interner = by_fact = seen = indexes = None
        for sign, fact, derivation_id in deltas:
            relation = fact.relation
            if relation != last_relation:
                last_relation = relation
                interner = interners.get(relation)
                if interner is None:
                    interner = interners[relation] = FactInterner()
                by_fact = facts_by_relation.get(relation)
                if by_fact is None:
                    by_fact = facts_by_relation[relation] = {}
                seen = before.get(relation)
                if seen is None:
                    seen = before[relation] = {}
                indexes = col_by_relation.get(relation)
            fid = interner.intern(fact)
            # Swap in the canonical interned instance: every downstream
            # fact-keyed dict/set operation (presence, derivation sets,
            # aggregate memberships, effect routing) then hits CPython's
            # identity fast path instead of comparing value tuples.
            fact = interner.facts[fid]
            derivs = by_fact.get(fact)
            if fid not in seen:
                seen[fid] = derivs is not None
                order.append((relation, fid, fact))
            # The derivation bookkeeping below inlines add_derivation /
            # remove_derivation with the relation's presence dict and the
            # fact's derivation set already in hand — the batch loop touches
            # each dict once per delta instead of once per helper call.
            if sign > 0:
                if derivs is None:
                    if not by_fact:
                        self._relations_cache = None
                    by_fact[fact] = {derivation_id}
                    if indexes:
                        self._index_add_interned(indexes, fid, fact)
                else:
                    derivs.add(derivation_id)
                applied.append(True)
            else:
                if derivs is None:
                    applied.append(False)
                else:
                    applied.append(derivation_id in derivs)
                    derivs.discard(derivation_id)
                    if not derivs:
                        del by_fact[fact]
                        if not by_fact:
                            self._relations_cache = None
                        if indexes:
                            self._index_remove_interned(indexes, fid, fact)
        newly_present: List[Fact] = []
        disappeared: List[Fact] = []
        for relation, fid, fact in order:
            now = fact in facts_by_relation.get(relation, ())
            was = before[relation][fid]
            if now and not was:
                newly_present.append(fact)
            elif was and not now:
                disappeared.append(fact)
        return newly_present, disappeared, applied


# ---------------------------------------------------------------------------
# Sharded store
# ---------------------------------------------------------------------------


class ShardedTupleStore:
    """A logical node's relations hash-partitioned across K worker shards.

    Facts are routed by a stable hash of their partitioning key — by default
    the full value tuple, but callers that know the relation catalog pass a
    ``key_fn`` projecting the primary-key columns, so all versions of a keyed
    row stay on one shard.  Each shard is a private :class:`TupleStore` with
    its own lazily-built secondary indexes; the sharded store presents the
    merged single-store API on top (scans and index lookups chain the shards
    in shard order), so evaluators and queries are oblivious to K.

    ``apply_delta_batch`` is the parallel entry point: the ordered batch is
    split into per-shard sub-batches (each fact's deltas all land on its one
    shard, preserving their relative order), the sub-batches are absorbed
    through the configured :class:`ShardExecutor`, and the per-shard results
    are merged back into the global batch order — the net-transition lists
    and per-delta applied flags are bit-identical to a flat
    :class:`TupleStore` absorbing the same batch.
    """

    def __init__(
        self,
        num_shards: int,
        key_fn: Optional[Callable[[Fact], Tuple[object, ...]]] = None,
        executor: Optional[ShardExecutor] = None,
        columnar: bool = False,
    ):
        if num_shards < 1:
            raise EngineError(f"a sharded store needs >= 1 shard, got {num_shards}")
        self.num_shards = num_shards
        self.columnar = columnar
        store_cls = ColumnarTupleStore if columnar else TupleStore
        self.shards: List[TupleStore] = [store_cls() for _ in range(num_shards)]
        self._key_fn = key_fn if key_fn is not None else (lambda fact: fact.values)
        self._executor: ShardExecutor = executor if executor is not None else SerialShardExecutor()
        # Fact -> shard number.  shard_hash serialises the partitioning key
        # with repr() on every call; under churn the same facts are routed
        # over and over (every delta, scan merge, and provenance lookup), so
        # the canonical-bytes hash is computed once per distinct fact and
        # memoized here.  Ids never change (the hash is content-based), so
        # the cache needs no invalidation.
        self._shard_cache: Dict[Fact, int] = {}

    # -- partitioning ------------------------------------------------------------

    def shard_index(self, fact: Fact) -> int:
        """The shard number *fact* is assigned to (stable across processes)."""
        shard = self._shard_cache.get(fact)
        if shard is None:
            shard = shard_hash(fact.relation, self._key_fn(fact)) % self.num_shards
            self._shard_cache[fact] = shard
        return shard

    def shard_of(self, fact: Fact) -> TupleStore:
        return self.shards[self.shard_index(fact)]

    def split_delta_batch(
        self, deltas: Iterable[Tuple[int, Fact, str]]
    ) -> List[List[Tuple[int, int, Fact, str]]]:
        """Split an ordered delta batch into per-shard sub-batches.

        Each sub-batch entry carries the delta's position in the original
        batch (``(original_index, sign, fact, derivation_id)``) so the merge
        can restore global ordering for applied flags and first-transition
        reporting.
        """
        per_shard: List[List[Tuple[int, int, Fact, str]]] = [
            [] for _ in range(self.num_shards)
        ]
        for position, (sign, fact, derivation_id) in enumerate(deltas):
            per_shard[self.shard_index(fact)].append((position, sign, fact, derivation_id))
        return per_shard

    # -- basic accessors ----------------------------------------------------------

    def relations(self) -> List[str]:
        merged: Set[str] = set()
        for shard in self.shards:
            merged.update(shard.relations())
        return sorted(merged)

    def facts(self, relation: str) -> Iterator[Fact]:
        for shard in self.shards:
            yield from shard.facts(relation)

    def all_facts(self) -> Iterator[Fact]:
        for shard in self.shards:
            yield from shard.all_facts()

    def contains(self, fact: Fact) -> bool:
        return self.shard_of(fact).contains(fact)

    def count(self, relation: Optional[str] = None) -> int:
        return sum(shard.count(relation) for shard in self.shards)

    def derivations(self, fact: Fact) -> Set[str]:
        return self.shard_of(fact).derivations(fact)

    def derivation_count(self, fact: Fact) -> int:
        return self.shard_of(fact).derivation_count(fact)

    # -- mutation -----------------------------------------------------------------

    def add_derivation(self, fact: Fact, derivation_id: str) -> bool:
        return self.shard_of(fact).add_derivation(fact, derivation_id)

    def remove_derivation(self, fact: Fact, derivation_id: str) -> bool:
        return self.shard_of(fact).remove_derivation(fact, derivation_id)

    def remove_fact(self, fact: Fact) -> Set[str]:
        return self.shard_of(fact).remove_fact(fact)

    def apply_delta_batch(
        self, deltas: Iterable[Tuple[int, Fact, str]]
    ) -> Tuple[List[Fact], List[Fact], List[bool]]:
        """Absorb a batch shard-parallel; results match the flat store exactly.

        See :meth:`TupleStore.apply_delta_batch` for the contract.  All of a
        fact's deltas share its shard, so every per-fact delta sub-sequence is
        replayed verbatim by exactly one shard; the merge orders net
        transitions by each fact's first occurrence in the *global* batch and
        scatters the applied flags back to their original positions, making
        the result independent of both K and the executor.
        """
        per_shard = self.split_delta_batch(deltas)
        jobs = [
            (shard_number, sub_batch)
            for shard_number, sub_batch in enumerate(per_shard)
            if sub_batch
        ]

        def absorb(job):
            shard_number, sub_batch = job
            newly, gone, applied = self.shards[shard_number].apply_delta_batch(
                (sign, fact, derivation_id) for _, sign, fact, derivation_id in sub_batch
            )
            return sub_batch, newly, gone, applied

        total = sum(len(sub_batch) for _, sub_batch in jobs)
        applied_flags: List[bool] = [False] * total
        transitions: List[Tuple[int, int, Fact]] = []  # (first position, sign, fact)
        for sub_batch, newly, gone, applied in self._executor.map(absorb, jobs):
            for (position, _, _, _), flag in zip(sub_batch, applied):
                applied_flags[position] = flag
            first_seen: Dict[Fact, int] = {}
            for position, _, fact, _ in sub_batch:
                if fact not in first_seen:
                    first_seen[fact] = position
            transitions.extend((first_seen[fact], +1, fact) for fact in newly)
            transitions.extend((first_seen[fact], -1, fact) for fact in gone)
        transitions.sort(key=lambda item: item[0])
        newly_present = [fact for _, sign, fact in transitions if sign > 0]
        disappeared = [fact for _, sign, fact in transitions if sign < 0]
        return newly_present, disappeared, applied_flags

    # -- scans and indexes ----------------------------------------------------------

    def matching(self, relation: str, bound: Dict[int, object]) -> Iterator[Fact]:
        """Chain the shards' (index-accelerated) scans, in shard order."""
        for shard in self.shards:
            yield from shard.matching(relation, bound)

    def prepare_index(self, relation: str, positions: Tuple[int, ...]) -> None:
        for shard in self.shards:
            shard.prepare_index(relation, positions)

    # -- columnar delegation ---------------------------------------------------------

    def probe_columns(
        self, relation: str, positions: Tuple[int, ...], key: Tuple[object, ...]
    ) -> List[Tuple[List[Fact], Sequence[int], Optional[Set[int]]]]:
        """Concatenate the shards' columnar probe buckets, in shard order.

        Intern ids are shard-local, so each bucket pairs a shard's id array
        with *that shard's* facts column and delta-id set; consumers never
        mix ids across buckets.
        """
        buckets: List[Tuple[List[Fact], Sequence[int], Optional[Set[int]]]] = []
        for shard in self.shards:
            buckets.extend(shard.probe_columns(relation, positions, key))  # type: ignore[attr-defined]
        return buckets

    def begin_batch_probe(self, delta_facts: Iterable[Fact]) -> None:
        """Route each delta fact to its shard's batch probe table."""
        per_shard: List[List[Fact]] = [[] for _ in range(self.num_shards)]
        for fact in delta_facts:
            per_shard[self.shard_index(fact)].append(fact)
        for shard, facts in zip(self.shards, per_shard):
            shard.begin_batch_probe(facts)  # type: ignore[attr-defined]

    def end_batch_probe(self) -> None:
        for shard in self.shards:
            shard.end_batch_probe()  # type: ignore[attr-defined]

    # -- snapshots -------------------------------------------------------------------

    def snapshot(self) -> Dict[str, List[Tuple[Tuple[object, ...], int]]]:
        """Return the canonical snapshot (bit-identical to an unsharded store's)."""
        return _snapshot_of(self)
