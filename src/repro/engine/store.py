"""Per-node tuple store with derivation counting and lazy secondary indexes.

Each node of the distributed system holds the horizontal partition of every
relation whose location attribute names that node.  The store implements
*set semantics with derivation counting*: a fact is present as long as it has
at least one derivation (a base insertion counts as the ``__base__``
derivation).  Incremental deletion removes derivations; only when the last
derivation disappears does the fact itself disappear, which is exactly the
behaviour the ExSPAN maintenance engine relies on.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import EngineError
from repro.engine.tuples import Fact

#: Synthetic derivation id used for base-tuple insertions.
BASE_DERIVATION = "__base__"


class TupleStore:
    """Facts grouped by relation, each with its set of derivation ids."""

    def __init__(self) -> None:
        self._facts: Dict[str, Dict[Fact, Set[str]]] = {}
        # (relation, positions) -> {projected values -> set of facts}
        self._indexes: Dict[Tuple[str, Tuple[int, ...]], Dict[Tuple[object, ...], Set[Fact]]] = {}

    # -- basic accessors --------------------------------------------------------

    def relations(self) -> List[str]:
        return sorted(relation for relation, facts in self._facts.items() if facts)

    def facts(self, relation: str) -> Iterator[Fact]:
        yield from self._facts.get(relation, {})

    def all_facts(self) -> Iterator[Fact]:
        for facts in self._facts.values():
            yield from facts

    def contains(self, fact: Fact) -> bool:
        return fact in self._facts.get(fact.relation, {})

    def count(self, relation: Optional[str] = None) -> int:
        if relation is not None:
            return len(self._facts.get(relation, {}))
        return sum(len(facts) for facts in self._facts.values())

    def derivations(self, fact: Fact) -> Set[str]:
        """Return the derivation ids currently supporting *fact* (empty if absent)."""
        return set(self._facts.get(fact.relation, {}).get(fact, set()))

    def derivation_count(self, fact: Fact) -> int:
        return len(self._facts.get(fact.relation, {}).get(fact, ()))

    # -- mutation ----------------------------------------------------------------

    def add_derivation(self, fact: Fact, derivation_id: str) -> bool:
        """Add one derivation of *fact*; return True when the fact is newly present."""
        by_fact = self._facts.setdefault(fact.relation, {})
        existing = by_fact.get(fact)
        if existing is None:
            by_fact[fact] = {derivation_id}
            self._index_add(fact)
            return True
        existing.add(derivation_id)
        return False

    def remove_derivation(self, fact: Fact, derivation_id: str) -> bool:
        """Remove one derivation of *fact*; return True when the fact disappears.

        Removing a derivation that is not present is a no-op returning False,
        which makes retraction idempotent (retraction messages may race with
        the derivations they cancel).
        """
        by_fact = self._facts.get(fact.relation)
        if not by_fact or fact not in by_fact:
            return False
        derivations = by_fact[fact]
        derivations.discard(derivation_id)
        if derivations:
            return False
        del by_fact[fact]
        self._index_remove(fact)
        return True

    def apply_delta_batch(
        self, deltas: Iterable[Tuple[int, Fact, str]]
    ) -> Tuple[List[Fact], List[Fact], List[bool]]:
        """Apply an ordered batch of ``(sign, fact, derivation_id)`` deltas.

        Returns ``(newly_present, disappeared, applied)``:

        * *newly_present* / *disappeared* are the facts whose *net* presence
          changed over the whole batch, in first-transition order.  A fact
          that flickers (appears and disappears within the batch, or vice
          versa) is reported in neither list — its net effect on the
          evaluator is nil, which is exactly what lets
          :meth:`repro.engine.evaluator.LocalEvaluator.on_batch` skip the
          derive-then-retract churn a one-at-a-time replay would produce.
        * *applied* has one flag per input delta: for insertions it is always
          True, for deletions it is True iff the derivation was actually
          present (callers mirror it into their provenance support records,
          keeping retraction idempotent).
        """
        before: Dict[Fact, bool] = {}
        order: List[Fact] = []
        applied: List[bool] = []
        for sign, fact, derivation_id in deltas:
            if fact not in before:
                before[fact] = self.contains(fact)
                order.append(fact)
            if sign > 0:
                self.add_derivation(fact, derivation_id)
                applied.append(True)
            else:
                had = derivation_id in self._facts.get(fact.relation, {}).get(fact, ())
                self.remove_derivation(fact, derivation_id)
                applied.append(had)
        newly_present: List[Fact] = []
        disappeared: List[Fact] = []
        for fact in order:
            now = self.contains(fact)
            if now and not before[fact]:
                newly_present.append(fact)
            elif before[fact] and not now:
                disappeared.append(fact)
        return newly_present, disappeared, applied

    def remove_fact(self, fact: Fact) -> Set[str]:
        """Forcibly remove *fact*, returning the derivation ids it had."""
        by_fact = self._facts.get(fact.relation)
        if not by_fact or fact not in by_fact:
            return set()
        derivations = by_fact.pop(fact)
        self._index_remove(fact)
        return derivations

    # -- scans and indexes ---------------------------------------------------------

    def matching(self, relation: str, bound: Dict[int, object]) -> Iterator[Fact]:
        """Iterate facts of *relation* whose attributes match the *bound* positions.

        When *bound* is non-empty a hash index on those positions is created
        lazily and maintained incrementally afterwards.
        """
        if not bound:
            yield from self.facts(relation)
            return
        positions = tuple(sorted(bound))
        key = tuple(bound[position] for position in positions)
        index = self._ensure_index(relation, positions)
        yield from index.get(key, ())

    def prepare_index(self, relation: str, positions: Tuple[int, ...]) -> None:
        """Build (or reuse) the secondary index on *positions* of *relation*.

        Batch evaluation calls this up front so index construction is paid
        once per (relation, positions) pair rather than being interleaved
        with the first matching scan of a join pass.
        """
        if positions:
            self._ensure_index(relation, tuple(sorted(positions)))

    def _ensure_index(
        self, relation: str, positions: Tuple[int, ...]
    ) -> Dict[Tuple[object, ...], Set[Fact]]:
        index_key = (relation, positions)
        if index_key not in self._indexes:
            index: Dict[Tuple[object, ...], Set[Fact]] = {}
            for fact in self.facts(relation):
                projected = tuple(fact.values[position] for position in positions)
                index.setdefault(projected, set()).add(fact)
            self._indexes[index_key] = index
        return self._indexes[index_key]

    def _index_add(self, fact: Fact) -> None:
        for (relation, positions), index in self._indexes.items():
            if relation != fact.relation:
                continue
            if any(position >= fact.arity for position in positions):
                raise EngineError(
                    f"fact {fact} has arity {fact.arity}, too small for index on {positions}"
                )
            projected = tuple(fact.values[position] for position in positions)
            index.setdefault(projected, set()).add(fact)

    def _index_remove(self, fact: Fact) -> None:
        for (relation, positions), index in self._indexes.items():
            if relation != fact.relation:
                continue
            projected = tuple(fact.values[position] for position in positions)
            bucket = index.get(projected)
            if bucket is not None:
                bucket.discard(fact)
                if not bucket:
                    del index[projected]

    # -- snapshots -------------------------------------------------------------------

    def snapshot(self) -> Dict[str, List[Tuple[Tuple[object, ...], int]]]:
        """Return a serialisable snapshot: relation -> [(values, derivation count)]."""
        result: Dict[str, List[Tuple[Tuple[object, ...], int]]] = {}
        for relation in self.relations():
            rows = []
            for fact in sorted(self.facts(relation), key=lambda f: repr(f.values)):
                rows.append((fact.values, self.derivation_count(fact)))
            result[relation] = rows
        return result
