"""Dataflow primitives: unification, expression evaluation, head instantiation.

These are the building blocks the per-node evaluator uses to execute NDlog
rules against the local tuple store: matching body atoms against stored
facts (producing variable bindings), evaluating arithmetic / builtin-function
expressions and boolean conditions under a binding, and instantiating rule
heads into concrete facts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import EngineError
from repro.ndlog.ast import (
    Aggregate,
    Atom,
    Condition,
    Constant,
    Expression,
    FunctionCall,
    Term,
    Variable,
)
from repro.ndlog.functions import FunctionRegistry
from repro.engine.tuples import Fact

Bindings = Dict[str, object]


# ---------------------------------------------------------------------------
# Expression evaluation
# ---------------------------------------------------------------------------

_ARITHMETIC = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "%": lambda a, b: a % b,
}

_COMPARISON = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def evaluate_term(term: Term, bindings: Bindings, registry: FunctionRegistry) -> object:
    """Evaluate *term* to a concrete value under *bindings*.

    Raises :class:`EngineError` if the term mentions an unbound variable or
    an aggregate (aggregates are handled by the evaluator, not here).
    """
    if isinstance(term, Constant):
        return term.value
    if isinstance(term, Variable):
        if term.name not in bindings:
            raise EngineError(f"variable {term.name!r} is unbound")
        return bindings[term.name]
    if isinstance(term, FunctionCall):
        args = [evaluate_term(arg, bindings, registry) for arg in term.args]
        return registry.call(term.name, args)
    if isinstance(term, Expression):
        left = evaluate_term(term.left, bindings, registry)
        right = evaluate_term(term.right, bindings, registry)
        if term.op in _ARITHMETIC:
            return _ARITHMETIC[term.op](left, right)
        if term.op in _COMPARISON:
            return _COMPARISON[term.op](left, right)
        raise EngineError(f"unsupported operator {term.op!r}")
    if isinstance(term, Aggregate):
        raise EngineError("aggregate terms cannot be evaluated directly")
    raise EngineError(f"cannot evaluate term {term!r}")


def term_is_ground(term: Term, bindings: Bindings) -> bool:
    """True when every variable mentioned by *term* is bound."""
    return all(name in bindings for name in term.variables())


def satisfies(condition: Condition, bindings: Bindings, registry: FunctionRegistry) -> bool:
    """Evaluate a body condition to a boolean under *bindings*.

    Numeric results follow the NDlog convention that nonzero means true, so
    conditions like ``f_member(P, D) == 0`` and bare ``f_isSomething(X)``
    both work.
    """
    value = evaluate_term(condition.expression, bindings, registry)
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    raise EngineError(
        f"condition {condition} evaluated to non-boolean, non-numeric value {value!r}"
    )


# ---------------------------------------------------------------------------
# Atom matching (unification against facts)
# ---------------------------------------------------------------------------


def match_atom(
    atom: Atom, fact: Fact, bindings: Bindings, registry: FunctionRegistry
) -> Optional[Bindings]:
    """Try to match *atom* against *fact* under existing *bindings*.

    Returns the extended bindings on success or ``None`` on mismatch.  Terms
    that are ground expressions under the current bindings are evaluated and
    compared by value; non-ground complex terms cannot be matched and raise
    :class:`EngineError` (they should only appear in heads).
    """
    if atom.relation != fact.relation or atom.arity != fact.arity:
        return None
    extended = dict(bindings)
    for term, value in zip(atom.terms, fact.values):
        if isinstance(term, Variable):
            if term.name == "_":
                continue
            if term.name in extended:
                if extended[term.name] != value:
                    return None
            else:
                extended[term.name] = value
        elif isinstance(term, Constant):
            if term.value != value:
                return None
        else:
            if not term_is_ground(term, extended):
                raise EngineError(
                    f"cannot match non-ground term {term} in body atom {atom}"
                )
            if evaluate_term(term, extended, registry) != value:
                return None
    return extended


def bound_positions(atom: Atom, bindings: Bindings) -> Dict[int, object]:
    """Return {attribute position: value} for atom arguments ground under *bindings*.

    Used to pick an index when scanning the store for matching facts.
    """
    positions: Dict[int, object] = {}
    for index, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            positions[index] = term.value
        elif isinstance(term, Variable) and term.name in bindings:
            positions[index] = bindings[term.name]
    return positions


# ---------------------------------------------------------------------------
# Head instantiation
# ---------------------------------------------------------------------------


def instantiate_head(
    atom: Atom,
    bindings: Bindings,
    registry: FunctionRegistry,
    aggregate_value: object = None,
) -> Fact:
    """Build the concrete head fact for a rule firing.

    ``aggregate_value`` replaces the (single) aggregate term, if present.
    """
    values: List[object] = []
    for term in atom.terms:
        if isinstance(term, Aggregate):
            if aggregate_value is None:
                raise EngineError(
                    f"head atom {atom} has an aggregate but no aggregate value was provided"
                )
            values.append(aggregate_value)
        else:
            values.append(evaluate_term(term, bindings, registry))
    return Fact.make(atom.relation, values)


def group_key_of(
    atom: Atom, bindings: Bindings, registry: FunctionRegistry
) -> Tuple[object, ...]:
    """Return the group-by key of an aggregate head under *bindings*.

    The key is the tuple of evaluated non-aggregate head terms, in order.
    """
    key: List[object] = []
    for term in atom.terms:
        if isinstance(term, Aggregate):
            continue
        key.append(evaluate_term(term, bindings, registry))
    return tuple(key)
