"""Tuples (facts) and relation schemas for the execution engine.

A :class:`Fact` is an immutable, hashable relational tuple: a relation name
plus a tuple of attribute values.  Values are plain Python scalars (ints,
floats, strings, booleans) or tuples of scalars (used for paths / AS paths).

A :class:`Schema` optionally names the attributes of a relation and records
its primary-key positions (from ``materialize`` declarations), which the
runtime uses for key-based overwrite semantics on base relations.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.errors import SchemaError

#: ``dataclass(**SLOTTED)`` makes hot dataclasses ``__slots__``-backed where
#: the interpreter supports it (3.10+).  Slots shrink the per-instance
#: footprint and take the objects' ``__dict__``s off the GC's plate, which
#: is a measurable share of the join inner loop (see
#: ``docs/performance.md`` § Single-core performance); on 3.9 the classes
#: fall back to plain dataclasses with identical behaviour.
SLOTTED = {"slots": True} if sys.version_info >= (3, 10) else {}

#: Types allowed as attribute values.
SCALAR_TYPES = (int, float, str, bool)


def _check_value(value: object) -> object:
    """Validate (and normalise) one attribute value."""
    if isinstance(value, list):
        value = tuple(value)
    if isinstance(value, tuple):
        for item in value:
            if not isinstance(item, SCALAR_TYPES):
                raise SchemaError(
                    f"nested value {item!r} in {value!r} is not a supported scalar type"
                )
        return value
    if not isinstance(value, SCALAR_TYPES):
        raise SchemaError(f"attribute value {value!r} has unsupported type {type(value).__name__}")
    return value


@dataclass(frozen=True)
class Fact:
    """An immutable relational tuple (``relation`` + attribute ``values``)."""

    relation: str
    values: Tuple[object, ...]

    def __post_init__(self) -> None:
        # Facts are hashed millions of times on the store/join hot path;
        # compute the content hash once at construction.
        object.__setattr__(self, "_hash", hash((self.relation, self.values)))

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    def __reduce__(self):
        # Rebuild through __init__ so the cached hash is recomputed in the
        # receiving process (string hashes are per-process under hash
        # randomisation) and the pickle carries no instance dict.
        return (Fact, (self.relation, self.values))

    def __repr__(self) -> str:
        # Byte-identical to the dataclass-generated repr, but rendered once
        # per instance: repr-derived sort keys and message size accounting
        # hit facts over and over, and interned (columnar) stores reuse the
        # same canonical instance for the lifetime of a fact.
        rendered = self.__dict__.get("_repr")
        if rendered is None:
            rendered = (
                f"{self.__class__.__qualname__}"
                f"(relation={self.relation!r}, values={self.values!r})"
            )
            object.__setattr__(self, "_repr", rendered)
        return rendered

    @staticmethod
    def make(relation: str, values: Sequence[object]) -> "Fact":
        """Build a fact, validating and normalising attribute values."""
        return Fact(relation, tuple(_check_value(v) for v in values))

    @property
    def arity(self) -> int:
        return len(self.values)

    def value(self, index: int) -> object:
        return self.values[index]

    def __str__(self) -> str:
        rendered = ", ".join(_render_value(v) for v in self.values)
        return f"{self.relation}({rendered})"


def _render_value(value: object) -> str:
    if isinstance(value, str):
        return f'"{value}"'
    if isinstance(value, tuple):
        return "[" + ", ".join(_render_value(v) for v in value) + "]"
    return str(value)


@dataclass(frozen=True)
class Schema:
    """Schema metadata for one relation."""

    relation: str
    arity: int
    attribute_names: Tuple[str, ...] = ()
    key_positions: Tuple[int, ...] = ()  # 0-based positions of primary-key attributes
    location_index: int = 0

    def __post_init__(self) -> None:
        if self.attribute_names and len(self.attribute_names) != self.arity:
            raise SchemaError(
                f"relation {self.relation!r}: {len(self.attribute_names)} attribute names "
                f"given for arity {self.arity}"
            )
        for position in self.key_positions:
            if not 0 <= position < self.arity:
                raise SchemaError(
                    f"relation {self.relation!r}: key position {position} out of range "
                    f"for arity {self.arity}"
                )
        if not 0 <= self.location_index < max(self.arity, 1):
            raise SchemaError(
                f"relation {self.relation!r}: location index {self.location_index} out of range"
            )

    def check(self, fact: Fact) -> None:
        """Raise :class:`SchemaError` if *fact* does not conform to this schema."""
        if fact.relation != self.relation:
            raise SchemaError(
                f"fact {fact} does not belong to relation {self.relation!r}"
            )
        if fact.arity != self.arity:
            raise SchemaError(
                f"fact {fact} has arity {fact.arity}, expected {self.arity}"
            )

    def key_of(self, fact: Fact) -> Tuple[object, ...]:
        """Return the primary-key projection of *fact* (empty tuple when keyless)."""
        return tuple(fact.values[position] for position in self.key_positions)

    def location_of(self, fact: Fact) -> object:
        """Return the location attribute (node identifier) of *fact*."""
        return fact.values[self.location_index]
