"""Topology generators for the simulated network.

A :class:`Topology` is a set of node identifiers plus a set of undirected
weighted edges.  Generators cover the shapes used in the paper's use cases:
small static graphs for MINCOST and path-vector, random connected graphs for
scaling experiments, grids for wireless/DSR scenarios, and a hierarchical
ISP-like AS graph for the BGP/Quagga use case.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.errors import EngineError


@dataclass
class Topology:
    """A named, undirected, weighted topology.

    An adjacency index (node -> neighbor set) is maintained alongside the
    canonical ``edges`` dict, so :meth:`neighbors` is O(degree) rather than a
    full edge scan — the difference between O(E) and O(deg) per call matters
    once generated AS graphs reach thousands of nodes and the scenario driver
    touches neighbors per node per wave.  Always mutate through
    :meth:`add_edge` / :meth:`remove_edge` (the index is private and kept out
    of equality comparisons; it is rebuilt if a topology is constructed from
    an explicit ``edges`` dict).
    """

    name: str
    nodes: List[str] = field(default_factory=list)
    edges: Dict[Tuple[str, str], float] = field(default_factory=dict)
    _adjacency: Dict[str, Set[str]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self._adjacency = {node: set() for node in self.nodes}
        for (a, b) in self.edges:
            for node in (a, b):
                if node not in self._adjacency:
                    self.nodes.append(node)
                    self._adjacency[node] = set()
            self._adjacency[a].add(b)
            self._adjacency[b].add(a)

    # -- construction ---------------------------------------------------------

    def add_node(self, node: str) -> None:
        if node not in self._adjacency:
            self.nodes.append(node)
            self._adjacency[node] = set()

    def add_edge(self, a: str, b: str, cost: float = 1.0) -> None:
        """Add an undirected edge between *a* and *b* (stored once, normalised)."""
        if a == b:
            raise EngineError(f"self-loop on node {a!r} is not allowed")
        self.add_node(a)
        self.add_node(b)
        self.edges[self._key(a, b)] = cost
        self._adjacency[a].add(b)
        self._adjacency[b].add(a)

    def remove_edge(self, a: str, b: str) -> None:
        if self.edges.pop(self._key(a, b), None) is not None:
            self._adjacency[a].discard(b)
            self._adjacency[b].discard(a)

    @staticmethod
    def _key(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    # -- queries ----------------------------------------------------------------

    def has_edge(self, a: str, b: str) -> bool:
        return self._key(a, b) in self.edges

    def cost(self, a: str, b: str) -> float:
        return self.edges[self._key(a, b)]

    def neighbors(self, node: str) -> List[str]:
        return sorted(self._adjacency.get(node, ()))

    def degree(self, node: str) -> int:
        """The number of incident edges, O(1) via the adjacency index."""
        return len(self._adjacency.get(node, ()))

    def directed_edges(self) -> List[Tuple[str, str, float]]:
        """Both directions of every undirected edge, with its cost."""
        result = []
        for (a, b), cost in sorted(self.edges.items()):
            result.append((a, b, cost))
            result.append((b, a, cost))
        return result

    def edge_count(self) -> int:
        return len(self.edges)

    def node_count(self) -> int:
        return len(self.nodes)

    def is_connected(self) -> bool:
        if not self.nodes:
            return True
        seen: Set[str] = set()
        frontier = [self.nodes[0]]
        while frontier:
            node = frontier.pop()
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(n for n in self.neighbors(node) if n not in seen)
        return len(seen) == len(self.nodes)

    def shortest_path_costs(self) -> Dict[Tuple[str, str], float]:
        """All-pairs shortest path costs (Dijkstra per source).

        This is the *offline reference* that tests and benchmarks compare the
        distributed MINCOST computation against.
        """
        import heapq

        result: Dict[Tuple[str, str], float] = {}
        adjacency: Dict[str, List[Tuple[str, float]]] = {node: [] for node in self.nodes}
        for a, b, cost in self.directed_edges():
            adjacency[a].append((b, cost))
        for source in self.nodes:
            distances: Dict[str, float] = {source: 0.0}
            heap: List[Tuple[float, str]] = [(0.0, source)]
            while heap:
                distance, node = heapq.heappop(heap)
                if distance > distances.get(node, float("inf")):
                    continue
                for neighbor, cost in adjacency[node]:
                    candidate = distance + cost
                    if candidate < distances.get(neighbor, float("inf")):
                        distances[neighbor] = candidate
                        heapq.heappush(heap, (candidate, neighbor))
            for target, distance in distances.items():
                if target != source:
                    result[(source, target)] = distance
        return result


# ---------------------------------------------------------------------------
# Generators
# ---------------------------------------------------------------------------


def _node_names(count: int, prefix: str) -> List[str]:
    return [f"{prefix}{index}" for index in range(count)]


def line(count: int, cost: float = 1.0, prefix: str = "n") -> Topology:
    """A simple chain n0 - n1 - ... - n(count-1)."""
    topology = Topology(name=f"line-{count}")
    names = _node_names(count, prefix)
    for name in names:
        topology.add_node(name)
    for a, b in zip(names, names[1:]):
        topology.add_edge(a, b, cost)
    return topology


def ring(count: int, cost: float = 1.0, prefix: str = "n") -> Topology:
    """A cycle of *count* nodes."""
    topology = line(count, cost, prefix)
    topology.name = f"ring-{count}"
    if count > 2:
        topology.add_edge(f"{prefix}{count - 1}", f"{prefix}0", cost)
    return topology


def star(count: int, cost: float = 1.0, prefix: str = "n") -> Topology:
    """A hub-and-spoke topology; node 0 is the hub."""
    topology = Topology(name=f"star-{count}")
    names = _node_names(count, prefix)
    for name in names:
        topology.add_node(name)
    for name in names[1:]:
        topology.add_edge(names[0], name, cost)
    return topology


def grid(rows: int, columns: int, cost: float = 1.0, prefix: str = "n") -> Topology:
    """A rows x columns grid, nodes named ``<prefix><row>_<column>``."""
    topology = Topology(name=f"grid-{rows}x{columns}")
    for row in range(rows):
        for column in range(columns):
            topology.add_node(f"{prefix}{row}_{column}")
    for row in range(rows):
        for column in range(columns):
            name = f"{prefix}{row}_{column}"
            if column + 1 < columns:
                topology.add_edge(name, f"{prefix}{row}_{column + 1}", cost)
            if row + 1 < rows:
                topology.add_edge(name, f"{prefix}{row + 1}_{column}", cost)
    return topology


def random_connected(
    count: int,
    edge_probability: float = 0.3,
    seed: int = 0,
    max_cost: int = 5,
    prefix: str = "n",
) -> Topology:
    """A random connected graph with integer edge costs in [1, max_cost].

    A random spanning tree guarantees connectivity; additional edges are added
    independently with *edge_probability*.  Fully deterministic for a given
    seed.
    """
    rng = random.Random(seed)
    topology = Topology(name=f"random-{count}-p{edge_probability}-s{seed}")
    names = _node_names(count, prefix)
    for name in names:
        topology.add_node(name)

    shuffled = list(names)
    rng.shuffle(shuffled)
    for index in range(1, len(shuffled)):
        attach_to = shuffled[rng.randrange(index)]
        topology.add_edge(shuffled[index], attach_to, float(rng.randint(1, max_cost)))

    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            if not topology.has_edge(a, b) and rng.random() < edge_probability:
                topology.add_edge(a, b, float(rng.randint(1, max_cost)))
    return topology


def isp_hierarchy(
    tier1_count: int = 3,
    tier2_per_tier1: int = 2,
    stubs_per_tier2: int = 2,
    seed: int = 0,
) -> Topology:
    """A hierarchical ISP-like topology used by the BGP/Quagga use case.

    Tier-1 providers form a full mesh ("peer" links); each tier-1 has a number
    of tier-2 customers, which in turn serve stub ASes.  Node names encode the
    tier: ``t1_0``, ``t2_0_1``, ``stub_0_1_0``.
    """
    rng = random.Random(seed)
    topology = Topology(name=f"isp-{tier1_count}x{tier2_per_tier1}x{stubs_per_tier2}")
    tier1 = [f"t1_{index}" for index in range(tier1_count)]
    for name in tier1:
        topology.add_node(name)
    for i, a in enumerate(tier1):
        for b in tier1[i + 1 :]:
            topology.add_edge(a, b, 1.0)

    for i, provider in enumerate(tier1):
        for j in range(tier2_per_tier1):
            tier2 = f"t2_{i}_{j}"
            topology.add_edge(provider, tier2, 1.0)
            # occasional lateral peering between tier-2 networks
            if j > 0 and rng.random() < 0.5:
                topology.add_edge(tier2, f"t2_{i}_{j - 1}", 1.0)
            for k in range(stubs_per_tier2):
                stub = f"stub_{i}_{j}_{k}"
                topology.add_edge(tier2, stub, 1.0)
    return topology


def power_law(
    count: int,
    attach: int = 2,
    seed: int = 0,
    cost: float = 1.0,
    prefix: str = "n",
) -> Topology:
    """A preferential-attachment (Barabási–Albert style) AS-like topology.

    Growth starts from a connected clique of ``attach + 1`` nodes; every
    subsequent node attaches to *attach* distinct existing nodes chosen with
    probability proportional to their current degree.  The result has the
    heavy-tailed degree skew of real AS graphs — a few hub "providers" with
    very high degree, many low-degree stubs — and is **connected by
    construction**: every new node links into the already-connected
    component, so no connectivity repair pass is needed.  Fully deterministic
    for a given seed.

    >>> net = power_law(50, attach=2, seed=3)
    >>> net.node_count(), net.is_connected()
    (50, True)
    >>> max(net.degree(n) for n in net.nodes) >= 8  # hub skew
    True
    """
    if attach < 1:
        raise EngineError(f"power_law attach must be >= 1, got {attach}")
    if count < attach + 1:
        raise EngineError(
            f"power_law needs count >= attach + 1 ({attach + 1}), got {count}"
        )
    rng = random.Random(seed)
    topology = Topology(name=f"powerlaw-{count}-m{attach}-s{seed}")
    names = _node_names(count, prefix)
    core = names[: attach + 1]
    for name in core:
        topology.add_node(name)
    for i, a in enumerate(core):
        for b in core[i + 1 :]:
            topology.add_edge(a, b, cost)

    # Degree-proportional sampling via the repeated-endpoints list: every
    # edge contributes both endpoints, so drawing uniformly from the list is
    # exactly preferential attachment.
    endpoints: List[str] = []
    for (a, b) in topology.edges:
        endpoints.append(a)
        endpoints.append(b)
    for name in names[attach + 1 :]:
        chosen: Set[str] = set()
        while len(chosen) < attach:
            chosen.add(endpoints[rng.randrange(len(endpoints))])
        topology.add_node(name)
        for target in sorted(chosen):
            topology.add_edge(name, target, cost)
            endpoints.append(name)
            endpoints.append(target)
    return topology


def from_edges(edges: Sequence[Tuple[str, str, float]], name: str = "custom") -> Topology:
    """Build a topology from an explicit undirected edge list."""
    topology = Topology(name=name)
    for a, b, cost in edges:
        topology.add_edge(a, b, cost)
    return topology
