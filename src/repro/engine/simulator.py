"""Deterministic discrete-event simulator with pluggable execution backends.

The simulator keeps virtual time as a float (seconds) and an event queue of
``(time, sequence, callback)`` entries.  Events scheduled at the same time are
executed in scheduling order, which together with seeded random generators
makes every run of the system fully reproducible.

*How* the events of one virtual instant are executed is delegated to an
:class:`~repro.engine.backends.ExecutionBackend`.  The default
:class:`~repro.engine.backends.SerialBackend` runs them strictly one at a
time (the historical reference behaviour); the concurrent backends run
same-instant events of distinct serialization keys in parallel while
deferring their side effects so the observable outcome stays bit-identical
(see :mod:`repro.engine.backends` for the full scheduling contract).
"""

from __future__ import annotations

import heapq
import itertools
import threading
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import SimulationError
from repro.engine.backends import ExecutionBackend, SerialBackend


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    #: Serialization key: events sharing a key are executed in sequence order
    #: by one worker; events with distinct keys may run concurrently under a
    #: concurrent backend.  ``None`` marks a barrier event (runs alone).
    key: Optional[object] = field(compare=False, default=None)


class Simulator:
    """A minimal, deterministic discrete-event loop.

    Events scheduled at the same virtual time share a *round* (see
    :attr:`rounds`); the round count is how the benchmarks measure the
    latency of parallel versus sequential provenance-query traversal.

    >>> sim = Simulator()
    >>> sim.schedule(1.0, lambda: None)
    >>> sim.schedule(1.0, lambda: None)   # same instant: same round
    >>> sim.schedule(2.0, lambda: None)
    >>> sim.run()
    3
    >>> (sim.processed_events, sim.rounds, sim.now)
    (3, 2, 2.0)
    """

    def __init__(self, backend: Optional[ExecutionBackend] = None) -> None:
        self._now = 0.0
        self._queue: List[_ScheduledEvent] = []
        self._sequence = itertools.count()
        self._processed = 0
        self._rounds = 0
        self._last_round_time: Optional[float] = None
        self._running = False
        #: Execution strategy for same-instant event waves.
        self.backend: ExecutionBackend = backend if backend is not None else SerialBackend()
        # Per-thread deferred side-effect buffer, active only while a
        # concurrent backend executes an event (see :meth:`defer`).
        self._effects = threading.local()

    # -- inspection -----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    @property
    def processed_events(self) -> int:
        return self._processed

    @property
    def rounds(self) -> int:
        """Number of distinct virtual-time instants at which events executed.

        With a uniform link latency every message hop lands on a new instant,
        so this counts the *communication rounds* of the simulated system:
        events that run at the same virtual time (e.g. a parallel query
        fan-out delivering all its requests at once) share a round, whereas
        work serialized behind earlier replies (sequential traversal) pays
        one round per wave.  The paper's "latency versus network traffic"
        trade-off is exactly rounds versus messages.
        """
        return self._rounds

    # -- scheduling -----------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        label: str = "",
        key: Optional[object] = None,
    ) -> None:
        """Schedule *callback* to run ``delay`` seconds from now.

        *key* is the serialization domain of the event (typically the node it
        executes on): a concurrent backend may run same-instant events with
        distinct keys in parallel, while keyless events act as barriers.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay} seconds in the past")
        time = self._now + delay
        buffer = self.deferred_buffer()
        if buffer is not None:
            buffer.append(lambda: self._push(time, callback, label, key))
            return
        self._push(time, callback, label, key)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        label: str = "",
        key: Optional[object] = None,
    ) -> None:
        """Schedule *callback* at absolute virtual time *time*."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at {time}, which is before current time {self._now}"
            )
        buffer = self.deferred_buffer()
        if buffer is not None:
            buffer.append(lambda: self._push(time, callback, label, key))
            return
        self._push(time, callback, label, key)

    def _push(self, time: float, callback: Callable[[], None], label: str, key: Optional[object]) -> None:
        heapq.heappush(self._queue, _ScheduledEvent(time, next(self._sequence), callback, label, key))

    # -- deferred side effects (concurrent backends) ---------------------------

    def deferred_buffer(self) -> Optional[List[Callable[[], None]]]:
        """The calling thread's active side-effect buffer, or ``None``.

        Concurrent backends execute same-instant events of distinct nodes in
        parallel; any side effect that touches shared simulator or network
        state (queue pushes, traffic accounting, delivery logging) must be
        appended to this buffer instead of applied directly, so it can be
        replayed in event-sequence order after the wave — the deterministic
        merge that keeps every backend bit-identical to serial execution.
        ``None`` outside deferred execution (the common, serial case), in
        which case the caller applies the effect directly; callers check
        before building a thunk so the hot path allocates nothing.
        """
        return getattr(self._effects, "buffer", None)

    def _execute_event_deferred(
        self, event: _ScheduledEvent, buffer: List[Callable[[], None]]
    ) -> None:
        """Run one event with side-effect deferral active (backend internal)."""
        self._effects.buffer = buffer
        try:
            event.callback()
        finally:
            self._effects.buffer = None

    def _take_wave(self, limit: Optional[int] = None) -> List[_ScheduledEvent]:
        """Pop every event queued at the earliest time (up to *limit*), in order.

        Advances the clock and the processed/round counters exactly as serial
        single-stepping would; used by concurrent backends.
        """
        wave: List[_ScheduledEvent] = []
        if not self._queue:
            return wave
        wave_time = self._queue[0].time
        while self._queue and self._queue[0].time == wave_time:
            if limit is not None and len(wave) >= limit:
                break
            event = heapq.heappop(self._queue)
            self._now = event.time
            self._processed += 1
            if self._last_round_time is None or event.time != self._last_round_time:
                self._rounds += 1
                self._last_round_time = event.time
            wave.append(event)
        return wave

    # -- execution ------------------------------------------------------------

    def step(self) -> bool:
        """Execute the next event serially; return False when the queue is empty.

        This is the single-event primitive of the serial reference mode (and
        of :class:`~repro.engine.backends.SerialBackend`); it never runs
        anything concurrently, whatever backend is installed.
        """
        if not self._queue:
            return False
        event = heapq.heappop(self._queue)
        self._now = event.time
        self._processed += 1
        if self._last_round_time is None or event.time != self._last_round_time:
            self._rounds += 1
            self._last_round_time = event.time
        event.callback()
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, *until* is reached, or *max_events* fire.

        Returns the number of events executed by this call.  Execution is
        delegated wave-by-wave to the installed :attr:`backend`.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run call)")
        self._running = True
        executed = 0
        try:
            while self._queue:
                if max_events is not None and executed >= max_events:
                    break
                next_time = self._queue[0].time
                if until is not None and next_time > until:
                    self._now = until
                    break
                budget = None if max_events is None else max_events - executed
                executed += self.backend.execute_wave(self, budget)
        finally:
            self._running = False
        return executed

    def run_to_quiescence(self, max_events: int = 1_000_000) -> int:
        """Run until no events remain; raise if *max_events* is exceeded.

        The cap guards against non-terminating NDlog programs (e.g. a
        cost-accumulating recursion over a cyclic topology written without an
        aggregate or a loop check).
        """
        executed = self.run(max_events=max_events)
        if self._queue:
            raise SimulationError(
                f"simulation did not quiesce within {max_events} events; "
                "the installed program may not terminate on this topology"
            )
        return executed
