"""Deterministic discrete-event simulator.

The simulator keeps virtual time as a float (seconds) and an event queue of
``(time, sequence, callback)`` entries.  Events scheduled at the same time are
executed in scheduling order, which together with seeded random generators
makes every run of the system fully reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")


class Simulator:
    """A minimal, deterministic discrete-event loop.

    Events scheduled at the same virtual time share a *round* (see
    :attr:`rounds`); the round count is how the benchmarks measure the
    latency of parallel versus sequential provenance-query traversal.

    >>> sim = Simulator()
    >>> sim.schedule(1.0, lambda: None)
    >>> sim.schedule(1.0, lambda: None)   # same instant: same round
    >>> sim.schedule(2.0, lambda: None)
    >>> sim.run()
    3
    >>> (sim.processed_events, sim.rounds, sim.now)
    (3, 2, 2.0)
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[_ScheduledEvent] = []
        self._sequence = itertools.count()
        self._processed = 0
        self._rounds = 0
        self._last_round_time: Optional[float] = None
        self._running = False

    # -- inspection -----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    @property
    def processed_events(self) -> int:
        return self._processed

    @property
    def rounds(self) -> int:
        """Number of distinct virtual-time instants at which events executed.

        With a uniform link latency every message hop lands on a new instant,
        so this counts the *communication rounds* of the simulated system:
        events that run at the same virtual time (e.g. a parallel query
        fan-out delivering all its requests at once) share a round, whereas
        work serialized behind earlier replies (sequential traversal) pays
        one round per wave.  The paper's "latency versus network traffic"
        trade-off is exactly rounds versus messages.
        """
        return self._rounds

    # -- scheduling -----------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[[], None], label: str = "") -> None:
        """Schedule *callback* to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay} seconds in the past")
        event = _ScheduledEvent(self._now + delay, next(self._sequence), callback, label)
        heapq.heappush(self._queue, event)

    def schedule_at(self, time: float, callback: Callable[[], None], label: str = "") -> None:
        """Schedule *callback* at absolute virtual time *time*."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at {time}, which is before current time {self._now}"
            )
        event = _ScheduledEvent(time, next(self._sequence), callback, label)
        heapq.heappush(self._queue, event)

    # -- execution ------------------------------------------------------------

    def step(self) -> bool:
        """Execute the next event; return False when the queue is empty."""
        if not self._queue:
            return False
        event = heapq.heappop(self._queue)
        self._now = event.time
        self._processed += 1
        if self._last_round_time is None or event.time != self._last_round_time:
            self._rounds += 1
            self._last_round_time = event.time
        event.callback()
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, *until* is reached, or *max_events* fire.

        Returns the number of events executed by this call.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run call)")
        self._running = True
        executed = 0
        try:
            while self._queue:
                if max_events is not None and executed >= max_events:
                    break
                next_time = self._queue[0].time
                if until is not None and next_time > until:
                    self._now = until
                    break
                self.step()
                executed += 1
        finally:
            self._running = False
        return executed

    def run_to_quiescence(self, max_events: int = 1_000_000) -> int:
        """Run until no events remain; raise if *max_events* is exceeded.

        The cap guards against non-terminating NDlog programs (e.g. a
        cost-accumulating recursion over a cyclic topology written without an
        aggregate or a loop check).
        """
        executed = self.run(max_events=max_events)
        if self._queue:
            raise SimulationError(
                f"simulation did not quiesce within {max_events} events; "
                "the installed program may not terminate on this topology"
            )
        return executed
