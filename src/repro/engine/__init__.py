"""RapidNet-equivalent distributed execution engine.

This package provides the substrate that NetTrails' provenance engine runs
on: a per-node incremental NDlog evaluator, a simulated network with
explicit messages and latencies, a discrete-event simulator, topology
generators and a mobility model.

The public entry point for most users is
:class:`repro.engine.runtime.NetTrailsRuntime`, which wires a parsed NDlog
program, a topology and (optionally) a provenance engine into a runnable
distributed system.
"""

from repro.engine.tuples import Fact, Schema
from repro.engine.backends import (
    AsyncioBackend,
    ExecutionBackend,
    SerialBackend,
    ThreadPoolBackend,
    resolve_backend,
)
from repro.engine.catalog import Catalog
from repro.engine.compiler import CompiledProgram, compile_program
from repro.engine.network import Link, Network
from repro.engine.simulator import Simulator
from repro.engine.node import Node
from repro.engine.runtime import NetTrailsRuntime
from repro.engine.store import (
    SerialShardExecutor,
    ShardedTupleStore,
    ThreadShardExecutor,
    TupleStore,
)
from repro.engine.topology import Topology

__all__ = [
    "Fact",
    "Schema",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadPoolBackend",
    "AsyncioBackend",
    "resolve_backend",
    "Catalog",
    "CompiledProgram",
    "compile_program",
    "Link",
    "Network",
    "Simulator",
    "Node",
    "NetTrailsRuntime",
    "TupleStore",
    "ShardedTupleStore",
    "SerialShardExecutor",
    "ThreadShardExecutor",
    "Topology",
]
