"""Waypoint mobility model for the DSR (mobile ad-hoc) use case.

The paper's first use case runs declarative protocols "in different
environments (e.g. static vs mobile network)".  This module provides a
deterministic random-waypoint model: nodes move on a square field, and a
radio range determines which links exist.  Stepping the model produces link
up/down events, which the runtime applies as insertions and deletions of
``link`` base tuples — exactly the topology churn the provenance engine must
track incrementally.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Set, Tuple


@dataclass(frozen=True)
class LinkEvent:
    """A link coming up or going down at a point in virtual time."""

    time: float
    kind: str  # "up" or "down"
    source: str
    target: str

    def __str__(self) -> str:
        return f"{self.time:.2f}s {self.kind} {self.source}<->{self.target}"


@dataclass
class _MobileNode:
    name: str
    x: float
    y: float
    waypoint_x: float
    waypoint_y: float
    speed: float


class WaypointMobilityModel:
    """Deterministic random-waypoint mobility over a square field."""

    def __init__(
        self,
        node_names: List[str],
        field_size: float = 100.0,
        radio_range: float = 40.0,
        min_speed: float = 1.0,
        max_speed: float = 5.0,
        seed: int = 0,
    ):
        self.field_size = field_size
        self.radio_range = radio_range
        self._rng = random.Random(seed)
        self._nodes: Dict[str, _MobileNode] = {}
        self._min_speed = min_speed
        self._max_speed = max_speed
        for name in node_names:
            x, y = self._random_point(), self._random_point()
            node = _MobileNode(
                name=name,
                x=x,
                y=y,
                waypoint_x=self._random_point(),
                waypoint_y=self._random_point(),
                speed=self._rng.uniform(min_speed, max_speed),
            )
            self._nodes[name] = node

    # -- geometry ---------------------------------------------------------------

    def _random_point(self) -> float:
        return self._rng.uniform(0.0, self.field_size)

    def positions(self) -> Dict[str, Tuple[float, float]]:
        return {name: (node.x, node.y) for name, node in sorted(self._nodes.items())}

    def in_range(self, a: str, b: str) -> bool:
        node_a, node_b = self._nodes[a], self._nodes[b]
        distance = math.hypot(node_a.x - node_b.x, node_a.y - node_b.y)
        return distance <= self.radio_range

    def current_links(self) -> Set[Tuple[str, str]]:
        """The set of undirected links implied by the current positions."""
        names = sorted(self._nodes)
        links: Set[Tuple[str, str]] = set()
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                if self.in_range(a, b):
                    links.add((a, b))
        return links

    # -- movement ------------------------------------------------------------------

    def step(self, dt: float) -> None:
        """Advance every node by *dt* seconds along its current waypoint."""
        for node in self._nodes.values():
            remaining = dt
            while remaining > 0:
                dx = node.waypoint_x - node.x
                dy = node.waypoint_y - node.y
                distance = math.hypot(dx, dy)
                travel = node.speed * remaining
                if distance <= travel or distance == 0:
                    node.x, node.y = node.waypoint_x, node.waypoint_y
                    node.waypoint_x = self._random_point()
                    node.waypoint_y = self._random_point()
                    node.speed = self._rng.uniform(self._min_speed, self._max_speed)
                    remaining -= distance / node.speed if node.speed else remaining
                    if distance == 0:
                        break
                else:
                    node.x += dx / distance * travel
                    node.y += dy / distance * travel
                    remaining = 0

    def events(self, duration: float, dt: float = 1.0) -> Iterator[LinkEvent]:
        """Yield link up/down events over *duration* seconds, sampled every *dt*.

        The initial link set is reported as "up" events at time 0.
        """
        current = self.current_links()
        for a, b in sorted(current):
            yield LinkEvent(0.0, "up", a, b)
        time = 0.0
        while time < duration:
            time = round(time + dt, 9)
            self.step(dt)
            updated = self.current_links()
            for a, b in sorted(updated - current):
                yield LinkEvent(time, "up", a, b)
            for a, b in sorted(current - updated):
                yield LinkEvent(time, "down", a, b)
            current = updated
