"""NetTrails runtime: a cluster of nodes executing one NDlog program.

:class:`NetTrailsRuntime` is the facade most users interact with.  It wires
together a compiled NDlog program, a topology, the simulated network, one
:class:`~repro.engine.node.Node` per topology node, and (by default) the
ExSPAN provenance engine.  It offers convenience methods for seeding base
tuples from the topology, mutating the topology at runtime (the dynamic /
mobile scenarios of the paper), inspecting global state and taking snapshots
for the log store.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import EngineError, UnknownNodeError
from repro.ndlog.ast import Program
from repro.ndlog.functions import FunctionRegistry
from repro.ndlog.parser import parse_program
from repro.engine.backends import BackendSpec, ExecutionBackend, resolve_backend
from repro.engine.compiler import CompiledProgram, compile_program
from repro.engine.network import Network, TrafficStats
from repro.engine.node import Node
from repro.engine.simulator import Simulator
from repro.engine.store import BASE_DERIVATION
from repro.engine.topology import Topology
from repro.engine.tuples import Fact
from repro.obs import Observability, resolve_observability

#: Environment variable consulted when ``query_cache_capacity`` is not set
#: explicitly (parity with ``NETTRAILS_BACKEND``): an integer per-node LRU
#: entry limit, ``0`` meaning uncapped.  Profiles and CI jobs use it to
#: sweep cache capacities without code changes.
CACHE_CAPACITY_ENV_VAR = "NETTRAILS_QUERY_CACHE_CAPACITY"


#: Environment variable consulted when ``use_interval_index`` is not set
#: explicitly: a boolean (``1/true/yes/on`` vs ``0/false/no/off``) that makes
#: eligible provenance queries use the per-partition interval index instead
#: of the per-edge traversal.  The CI property matrix exports it so the whole
#: equivalence suite runs with the interval path on.
INTERVAL_INDEX_ENV_VAR = "NETTRAILS_INTERVAL_INDEX"

#: Environment variable consulted when ``columnar`` is not set explicitly: a
#: boolean (``1/true/yes/on`` vs ``0/false/no/off``) selecting the
#: dictionary-encoded columnar store and the evaluator's compiled columnar
#: join (see :class:`repro.engine.store.ColumnarTupleStore`).  The CI
#: property matrix exports it so the whole equivalence suite runs on both
#: representations.
COLUMNAR_ENV_VAR = "NETTRAILS_COLUMNAR"

#: Environment variable consulted when ``durable_dir`` is not set explicitly
#: (parity with the other ``NETTRAILS_*`` hooks): a directory path that turns
#: on durable mode — every committed quiescence window is appended to a
#: write-ahead log there (see :mod:`repro.durability`).  Unset or empty means
#: non-durable; a path that exists but is not a writable directory raises
#: :class:`~repro.errors.EngineError` rather than being silently ignored.
DURABLE_DIR_ENV_VAR = "NETTRAILS_DURABLE_DIR"

#: Environment variable consulted when ``observability`` is not set
#: explicitly: a boolean (``1/true/yes/on`` vs ``0/false/no/off``) that
#: attaches the :mod:`repro.obs` subsystem (metrics registry, distributed
#: query tracing, flight recorder) to the runtime.  Observability is purely
#: additive telemetry: it is excluded from :func:`_durable_knobs`, from
#: every ``deterministic_view`` and from all bit-identity contracts — the
#: CI property matrix runs a leg with it enabled to prove that.
OBSERVABILITY_ENV_VAR = "NETTRAILS_OBSERVABILITY"

_TRUE_WORDS = ("1", "true", "yes", "on")
_FALSE_WORDS = ("0", "false", "no", "off")


def default_durable_dir() -> Optional[str]:
    """The durable directory used when none is requested: the env hook, else ``None``.

    Only reads the environment; path validation happens in
    :func:`validate_durable_dir` when a runtime actually goes durable, so a
    malformed value fails loudly at construction time (the same contract as
    the other hooks) rather than at first commit.
    """
    raw = os.environ.get(DURABLE_DIR_ENV_VAR, "").strip()
    return raw or None


def validate_durable_dir(path: Union[str, "os.PathLike[str]"]) -> str:
    """Check (and create, if missing) a durable directory; returns its path.

    Raises :class:`~repro.errors.EngineError` when the path names an
    existing non-directory, cannot be created, or is not writable — the
    rejection semantics shared by every ``NETTRAILS_*`` hook.
    """
    text = os.fspath(path)
    if not text:
        raise EngineError(f"{DURABLE_DIR_ENV_VAR} / durable_dir must not be empty")
    if os.path.exists(text) and not os.path.isdir(text):
        raise EngineError(
            f"durable_dir {text!r} exists but is not a directory "
            f"(check {DURABLE_DIR_ENV_VAR})"
        )
    try:
        os.makedirs(text, exist_ok=True)
    except OSError as exc:
        raise EngineError(f"cannot create durable_dir {text!r}: {exc}") from exc
    if not os.access(text, os.W_OK):
        raise EngineError(
            f"durable_dir {text!r} is not writable (check {DURABLE_DIR_ENV_VAR})"
        )
    return text


def default_use_interval_index() -> bool:
    """The interval-index default: the env hook, else ``False``.

    A value that is neither a true-word nor a false-word raises
    :class:`~repro.errors.EngineError` rather than being silently ignored.
    """
    raw = os.environ.get(INTERVAL_INDEX_ENV_VAR, "").strip().lower()
    if not raw:
        return False
    if raw in _TRUE_WORDS:
        return True
    if raw in _FALSE_WORDS:
        return False
    raise EngineError(
        f"{INTERVAL_INDEX_ENV_VAR}={raw!r} is not a boolean; use one of "
        f"{_TRUE_WORDS + _FALSE_WORDS}"
    )


def default_columnar() -> bool:
    """The columnar-store default: the env hook, else ``False``.

    A value that is neither a true-word nor a false-word raises
    :class:`~repro.errors.EngineError` rather than being silently ignored.
    """
    raw = os.environ.get(COLUMNAR_ENV_VAR, "").strip().lower()
    if not raw:
        return False
    if raw in _TRUE_WORDS:
        return True
    if raw in _FALSE_WORDS:
        return False
    raise EngineError(
        f"{COLUMNAR_ENV_VAR}={raw!r} is not a boolean; use one of "
        f"{_TRUE_WORDS + _FALSE_WORDS}"
    )


def default_observability() -> bool:
    """The observability default: the env hook, else ``False``.

    A value that is neither a true-word nor a false-word raises
    :class:`~repro.errors.EngineError` rather than being silently ignored.
    """
    raw = os.environ.get(OBSERVABILITY_ENV_VAR, "").strip().lower()
    if not raw:
        return False
    if raw in _TRUE_WORDS:
        return True
    if raw in _FALSE_WORDS:
        return False
    raise EngineError(
        f"{OBSERVABILITY_ENV_VAR}={raw!r} is not a boolean; use one of "
        f"{_TRUE_WORDS + _FALSE_WORDS}"
    )


def default_query_cache_capacity() -> Optional[int]:
    """The capacity used when none is requested: the env hook, else ``None``.

    ``None`` (variable unset or empty) defers to the query engine's default
    (:data:`repro.core.optimizations.DEFAULT_CACHE_CAPACITY`).  A
    malformed or negative value raises :class:`~repro.errors.EngineError`
    rather than being silently ignored.
    """
    raw = os.environ.get(CACHE_CAPACITY_ENV_VAR, "").strip()
    if not raw:
        return None
    try:
        capacity = int(raw)
    except ValueError:
        raise EngineError(
            f"{CACHE_CAPACITY_ENV_VAR}={raw!r} is not an integer query-cache capacity"
        )
    if capacity < 0:
        raise EngineError(
            f"{CACHE_CAPACITY_ENV_VAR} must be >= 0 (0 = uncapped), got {capacity}"
        )
    return capacity


class NetTrailsRuntime:
    """A running (simulated) distributed system with provenance tracking.

    The runtime accepts an NDlog program (source text or parsed
    :class:`~repro.ndlog.ast.Program`) and a :class:`Topology`; it compiles
    and localizes the program, builds one node per topology vertex and wires
    them through the simulated network.  Base tuples go in through
    :meth:`insert` / :meth:`insert_batch`, virtual time advances through
    :meth:`run` / :meth:`run_to_quiescence`, and global state comes back out
    through :meth:`state`.  The runtime is a context manager —
    ``with NetTrailsRuntime(...) as runtime:`` releases backend workers,
    shard threads and forked worker processes on exit, which is the
    leak-proof way to use worker-backed configurations in tests.

    **Constructor knobs** (this is the canonical table; every other
    docstring defers to it):

    ================================ ==========================================
    knob (default)                   effect
    ================================ ==========================================
    ``program``                      NDlog source text or a parsed ``Program``
    ``topology``                     the :class:`Topology` to build nodes for
    ``provenance`` (True)            ``True`` = ExSPAN prov/ruleExec engine,
                                     ``False``/``None`` = off, or a duck-typed
                                     recorder object
    ``default_latency`` (0.01)       virtual seconds per non-link message hop
    ``link_latency`` (0.01)          virtual seconds per topology-link hop
    ``registry`` (None)              a custom :class:`FunctionRegistry`
    ``program_name`` (None)          name used when parsing source text
    ``aggregate_retract_first``      legacy retract-then-assert aggregate
    (False)                          ordering
    ``batch_deltas`` (True)          batch-first evaluation; ``False`` replays
                                     deltas one at a time (the E11 baseline)
    ``num_shards`` (None)            hash-shard every node's store across K
                                     partitions
    ``shard_workers`` (0)            threads absorbing sharded sub-batches
    ``columnar`` (None)              dictionary-encoded columnar stores +
                                     compiled columnar batch joins (``None``
                                     = env hook then off; the dict path is
                                     the reference/ablation)
    ``backend`` (None)               execution backend: ``"serial"`` |
                                     ``"thread"`` | ``"asyncio"`` |
                                     ``"process"``, a constructed
                                     ``ExecutionBackend``, or ``None`` = env
                                     hook then serial
    ``backend_workers`` (None)       worker bound for concurrent backends
                                     (``None`` = env hook then
                                     ``min(8, cpu_count)``)
    ``batch_commit_stall_s`` (0.0)   emulated per-batch commit latency (an
                                     fsync stand-in the concurrent backends
                                     overlap)
    ``query_cache_capacity`` (None)  per-node query-cache bound (``None`` =
                                     env hook then default, ``0`` = uncapped)
    ``use_interval_index`` (None)    interval-indexed provenance queries
                                     (``None`` = env hook then off)
    ``durable_dir`` (None)           write-ahead-log directory; turns on
                                     durable commit-per-quiescence-window mode
    ``wal_fsync`` (True)             fsync barrier per WAL append
    ``observability`` (None)         attach the :mod:`repro.obs` telemetry
                                     bundle (metrics registry, query tracing,
                                     flight recorder): ``None`` = env hook
                                     then off, ``True``/``False`` pin it, an
                                     ``Observability`` instance is adopted
                                     (several runtimes may share one)
    ================================ ==========================================

    **Environment hooks** — each is consulted only when the matching
    constructor argument is left at ``None`` (an explicit argument always
    wins), and a malformed value raises :class:`~repro.errors.EngineError`
    at construction (``tests/engine/test_env_hooks.py`` pins the contract):

    ================================ ==========================================
    variable                         stands in for
    ================================ ==========================================
    ``NETTRAILS_BACKEND``            ``backend`` (``serial``/``thread``/
                                     ``asyncio``/``process``)
    ``NETTRAILS_BACKEND_WORKERS``    ``backend_workers`` (integer ≥ 1)
    ``NETTRAILS_QUERY_CACHE_CAPACITY`` ``query_cache_capacity`` (integer ≥ 0)
    ``NETTRAILS_INTERVAL_INDEX``     ``use_interval_index`` (boolean words)
    ``NETTRAILS_COLUMNAR``           ``columnar`` (boolean words)
    ``NETTRAILS_DURABLE_DIR``        ``durable_dir`` (a writable path)
    ``NETTRAILS_OBSERVABILITY``      ``observability`` (boolean words)
    ================================ ==========================================

    See ``docs/performance.md`` for which backend/worker/shard/batch
    configuration pays off when.

    >>> from repro.engine import topology
    >>> runtime = NetTrailsRuntime("r1 reach(@D, S) :- edge(@S, D).", topology.line(2))
    >>> _ = runtime.insert_batch("edge", [["n0", "n1"], ["n1", "n0"]], run=True)
    >>> runtime.state("reach")
    [('n0', 'n1'), ('n1', 'n0')]

    Concurrent backends — forked worker processes included — are drop-in and
    bit-identical on everything but wall-clock time:

    >>> with NetTrailsRuntime("r1 reach(@D, S) :- edge(@S, D).", topology.line(2),
    ...                       backend="process", backend_workers=2) as multicore:
    ...     _ = multicore.insert_batch("edge", [["n0", "n1"], ["n1", "n0"]], run=True)
    ...     multicore.state("reach")
    [('n0', 'n1'), ('n1', 'n0')]
    """

    def __init__(
        self,
        program: Union[Program, str],
        topology: Topology,
        provenance: Union[bool, object] = True,
        default_latency: float = 0.01,
        link_latency: float = 0.01,
        registry: Optional[FunctionRegistry] = None,
        program_name: Optional[str] = None,
        aggregate_retract_first: bool = False,
        batch_deltas: bool = True,
        num_shards: Optional[int] = None,
        shard_workers: int = 0,
        columnar: Optional[bool] = None,
        backend: BackendSpec = None,
        backend_workers: Optional[int] = None,
        batch_commit_stall_s: float = 0.0,
        query_cache_capacity: Optional[int] = None,
        use_interval_index: Optional[bool] = None,
        durable_dir: Optional[Union[str, "os.PathLike[str]"]] = None,
        wal_fsync: bool = True,
        observability: Union[None, bool, "Observability"] = None,
    ):
        self._program_source = program if isinstance(program, str) else None
        if isinstance(program, str):
            program = parse_program(program, name=program_name or "program")
        self.program = program
        self.compiled: CompiledProgram = compile_program(program, registry)
        self.topology = topology
        #: Execution backend draining same-instant simulator events.  Accepts
        #: a name (``"serial"`` / ``"thread"`` / ``"asyncio"`` /
        #: ``"process"``), a constructed
        #: :class:`~repro.engine.backends.ExecutionBackend`, or ``None`` —
        #: which consults the ``NETTRAILS_BACKEND`` environment variable and
        #: defaults to the deterministic serial reference mode.
        #: ``backend_workers`` bounds the concurrent backends' worker pools
        #: (``None`` consults ``NETTRAILS_BACKEND_WORKERS``).
        self.backend: ExecutionBackend = resolve_backend(backend, backend_workers)
        self.simulator = Simulator(backend=self.backend)
        self.network = Network(self.simulator, default_latency=default_latency)
        self._default_latency = default_latency
        self._link_latency = link_latency
        self._aggregate_retract_first = aggregate_retract_first
        self._batch_commit_stall_s = batch_commit_stall_s
        self._link_relation: Optional[str] = None
        self._link_symmetric = True
        self._link_include_cost = True

        if provenance is True:
            from repro.core.maintenance import ProvenanceEngine  # avoid an import cycle

            self.provenance: Optional[object] = ProvenanceEngine(self.compiled)
        elif provenance is False or provenance is None:
            self.provenance = None
        else:
            self.provenance = provenance

        #: Batch-first delta processing (see :class:`repro.engine.node.Node`).
        #: ``False`` restores the historical per-delta path; the batching
        #: benchmarks construct one runtime of each kind and compare them.
        self.batch_deltas = batch_deltas
        #: Per-node store sharding (see :class:`repro.engine.store.ShardedTupleStore`):
        #: ``num_shards=K`` hash-partitions every node's relations across K
        #: shards so a hot node can absorb a delta batch shard-parallel;
        #: ``shard_workers=N`` (N > 1) absorbs the per-shard sub-batches and
        #: runs the per-shard join passes on a thread pool.  The default
        #: (``None`` / ``0``) is the flat, fully serial reference mode; every
        #: configuration converges to bit-identical protocol state and
        #: provenance tables.
        self.num_shards = num_shards
        self.shard_workers = shard_workers
        #: Store/join representation (see
        #: :class:`repro.engine.store.ColumnarTupleStore`): ``True`` interns
        #: every fact into dense per-relation ids, keeps secondary indexes as
        #: sorted id arrays and runs the evaluator's batch joins as compiled
        #: slot programs over them.  ``None`` consults ``NETTRAILS_COLUMNAR``
        #: (parity with ``NETTRAILS_BACKEND``); the default dict-based path
        #: is the reference every columnar run must match bit-for-bit.
        if columnar is None:
            columnar = default_columnar()
        self.columnar = bool(columnar)
        #: Per-node provenance-query-cache capacity consumed by
        #: :class:`repro.core.query.DistributedQueryEngine`: ``None`` keeps
        #: the engine default (:data:`repro.core.optimizations.DEFAULT_CACHE_CAPACITY`),
        #: ``0`` disables the cap entirely, any other value is the LRU entry
        #: limit per node.  When not set explicitly, the
        #: ``NETTRAILS_QUERY_CACHE_CAPACITY`` environment variable is
        #: consulted (parity with ``NETTRAILS_BACKEND``).
        if query_cache_capacity is None:
            query_cache_capacity = default_query_cache_capacity()
        elif query_cache_capacity < 0:
            raise EngineError(
                f"query_cache_capacity must be >= 0 or None, got {query_cache_capacity}"
            )
        self.query_cache_capacity = query_cache_capacity
        #: Whether :class:`repro.core.query.DistributedQueryEngine` answers
        #: eligible queries (cache-off lineage/participants with no
        #: threshold/depth bound) through the per-partition interval index
        #: (:mod:`repro.core.interval_index`) instead of the per-edge
        #: traversal.  ``None`` consults ``NETTRAILS_INTERVAL_INDEX`` (parity
        #: with ``NETTRAILS_BACKEND``); the traversal path always remains
        #: available per-engine via
        #: ``DistributedQueryEngine(use_interval_index=False)``.
        if use_interval_index is None:
            use_interval_index = default_use_interval_index()
        self.use_interval_index = bool(use_interval_index)
        #: The attached :class:`repro.obs.Observability` bundle, or ``None``
        #: when the subsystem is off (the default).  ``None`` as the knob
        #: consults ``NETTRAILS_OBSERVABILITY``.  Purely observational:
        #: excluded from ``_durable_knobs()`` and every bit-identity surface.
        self.obs: Optional[Observability] = resolve_observability(
            observability, default_observability()
        )
        self.nodes: Dict[object, Node] = {}
        for name in topology.nodes:
            self.nodes[name] = Node(
                name,
                self.compiled,
                self.network,
                self.provenance,
                aggregate_retract_first=aggregate_retract_first,
                batch_deltas=batch_deltas,
                num_shards=num_shards,
                shard_workers=shard_workers,
                batch_commit_stall_s=batch_commit_stall_s,
                columnar=self.columnar,
                observability=self.obs,
            )
        for source, target, cost in topology.directed_edges():
            self.network.add_link(source, target, cost=cost, latency=link_latency)
        # Bind the backend to the fully-built node set.  The process-pool
        # backend forks its workers here: after the nodes (and their stores)
        # exist, before any event has run, and before durable mode opens its
        # WAL — so workers inherit byte-identical stores and no file handles
        # they must not share.
        self.backend.attach(self)
        self._bind_observability()

        #: Durable mode (see :mod:`repro.durability`): with ``durable_dir=``
        #: set — or the ``NETTRAILS_DURABLE_DIR`` hook — every mutator call
        #: is buffered as a logical op and committed as one write-ahead-log
        #: ``batch`` record when :meth:`run_to_quiescence` begins (append +
        #: flush *before* the simulator drains, so a crash mid-window
        #: replays the whole window).  ``wal_fsync`` is the fsync barrier
        #: knob: ``True`` fsyncs every append, ``False`` only flushes.
        self.wal_fsync = bool(wal_fsync)
        self.durable_dir: Optional[str] = None
        self._wal = None
        self._pending_ops: List[List[object]] = []
        self._oplog_suspended = 0
        self._committed_batches = 0
        if durable_dir is None:
            durable_dir = default_durable_dir()
        if durable_dir is not None:
            self._open_durable(durable_dir)

    # -- observability -------------------------------------------------------------

    @property
    def observability(self) -> bool:
        """Whether the :mod:`repro.obs` subsystem is attached (see :attr:`obs`)."""
        return self.obs is not None

    def _bind_observability(self) -> None:
        """Register registry views over the existing counter surfaces.

        Views are lazy closures: the instrumented code keeps mutating its
        plain counters and the registry only reads them at collect time, so
        this costs nothing per event.  The ``subsystem.metric`` naming scheme
        unifies what used to be five differently-shaped dict accessors (the
        query-engine ``cache``/``interval`` views register themselves when a
        :class:`~repro.core.query.DistributedQueryEngine` is built).
        """
        obs = self.obs
        if obs is None:
            return
        import dataclasses

        registry = obs.registry

        def node_totals() -> Dict[str, object]:
            totals: Dict[str, int] = {}
            for node in self.nodes.values():
                for key, value in dataclasses.asdict(node.stats).items():
                    totals[key] = totals.get(key, 0) + value
            return dict(totals)

        registry.register_view("node", node_totals)
        registry.register_view(
            "simulator",
            lambda: {
                "rounds": self.simulator.rounds,
                "events": self.simulator.processed_events,
            },
        )
        registry.register_view(
            "traffic",
            lambda: {
                key: value
                for key, value in self.network.stats.snapshot().items()
                if isinstance(value, (int, float))
            },
        )
        provenance = self.provenance
        if provenance is not None and hasattr(provenance, "vid_version_stats"):
            registry.register_view("vid_versions", provenance.vid_version_stats)
        if provenance is not None and hasattr(provenance, "interval_totals"):
            registry.register_view("interval", provenance.interval_totals)
        transport = getattr(self.backend, "transport_stats", None)
        if transport is not None:
            registry.register_view("transport", transport)

        def wal_stats() -> Dict[str, object]:
            wal = self._wal
            if wal is None:
                return {}
            return wal.counters()

        registry.register_view("wal", wal_stats)

    # -- durability -----------------------------------------------------------------

    def _open_durable(self, durable_dir: Union[str, "os.PathLike[str]"]) -> None:
        from repro.durability import checkpoint as checkpoint_mod
        from repro.durability import wal as wal_mod

        if self._program_source is None:
            raise EngineError(
                "durable mode needs the NDlog source text to journal; construct "
                "the runtime from source (e.g. protocol module SOURCE) rather "
                "than a parsed Program"
            )
        path = validate_durable_dir(durable_dir)
        wal_file = wal_mod.wal_path(path)
        if wal_file.exists() and wal_file.stat().st_size > len(wal_mod.MAGIC):
            raise EngineError(
                f"durable_dir {path!r} already holds a WAL; a fresh runtime "
                "would fork its history — recover it with "
                "repro.durability.RecoveryManager instead"
            )
        self.durable_dir = path
        self._wal = wal_mod.WriteAheadLog(path, fsync=self.wal_fsync)
        self._wal.append(
            wal_mod.RECORD_INIT,
            {
                "program_name": self.compiled.name,
                "source": self._program_source,
                "topology": checkpoint_mod.topology_doc(self.topology),
                "knobs": self._durable_knobs(),
            },
        )

    def _durable_knobs(self) -> Dict[str, object]:
        """The construction knobs recovery must reproduce.

        The execution backend is deliberately absent: the determinism
        contract makes every backend produce bit-identical state, so a
        recovering process picks its own (or the ``NETTRAILS_BACKEND`` hook).
        ``observability`` is absent for the same reason — telemetry is
        invisible to replayed state, so a recovering process decides afresh.
        """
        return {
            "default_latency": self._default_latency,
            "link_latency": self._link_latency,
            "aggregate_retract_first": self._aggregate_retract_first,
            "batch_deltas": self.batch_deltas,
            "num_shards": self.num_shards,
            "shard_workers": self.shard_workers,
            "columnar": self.columnar,
            "batch_commit_stall_s": self._batch_commit_stall_s,
            "query_cache_capacity": self.query_cache_capacity,
            "use_interval_index": self.use_interval_index,
        }

    def _attach_wal(self, wal, durable_dir: str, committed_batches: int) -> None:
        """Adopt an already-positioned WAL (recovery's tail-append hook)."""
        self.durable_dir = durable_dir
        self.wal_fsync = wal.fsync
        self._wal = wal
        self._committed_batches = committed_batches

    def _log_op(self, op: List[object]) -> None:
        if self._wal is not None and not self._oplog_suspended:
            self._pending_ops.append(op)

    class _SuspendOplog:
        def __init__(self, runtime: "NetTrailsRuntime"):
            self._runtime = runtime

        def __enter__(self) -> None:
            self._runtime._oplog_suspended += 1

        def __exit__(self, exc_type, exc_value, traceback) -> None:
            self._runtime._oplog_suspended -= 1

    def _suspend_oplog(self) -> "NetTrailsRuntime._SuspendOplog":
        """Composite mutators (``seed_links``, ``add_link``) journal one op
        and suppress the journalling of their internal primitive calls."""
        return NetTrailsRuntime._SuspendOplog(self)

    def _commit_pending(self) -> None:
        if self._wal is None or not self._pending_ops:
            return
        ops = self._pending_ops
        self._pending_ops = []
        self._committed_batches += 1
        from repro.durability.wal import RECORD_BATCH

        self._wal.append(
            RECORD_BATCH, {"batch": self._committed_batches, "ops": ops}
        )

    def checkpoint(self, label: str = "", keep: int = 3):
        """Compact the WAL prefix into a logstore snapshot (durable mode only).

        Writes the full system snapshot to
        ``<durable_dir>/snapshots/ckpt-NNNNNN.json`` (pruning all but the
        newest *keep* files) and appends a ``checkpoint`` WAL record carrying
        the state digest plus an embedded base-fact bootstrap, which is what
        ``RecoveryManager.recover(mode="checkpoint")`` restores from.  The
        runtime must be quiescent (no uncommitted ops).  Returns the
        snapshot file path.
        """
        if self._wal is None:
            raise EngineError("checkpoint() requires a durable runtime (durable_dir=)")
        if self._pending_ops:
            raise EngineError(
                "uncommitted mutations pending; call run_to_quiescence() "
                "before checkpoint()"
            )
        from repro.durability import checkpoint as checkpoint_mod
        from repro.durability.wal import RECORD_CHECKPOINT
        from repro.logstore.snapshot import take_snapshot

        batch = self._committed_batches
        snapshot = take_snapshot(self, label=label or f"checkpoint-{batch}")
        path = checkpoint_mod.write_snapshot_file(self.durable_dir, batch, snapshot)
        self._wal.append(
            RECORD_CHECKPOINT,
            checkpoint_mod.checkpoint_payload(self, snapshot, batch, path),
        )
        checkpoint_mod.prune_snapshot_files(self.durable_dir, keep)
        if self.obs is not None:
            self.obs.record_event("checkpoint", batch=batch, path=str(path))
        return path

    # -- node access ----------------------------------------------------------------

    def node(self, node_id: object) -> Node:
        if node_id not in self.nodes:
            raise UnknownNodeError(f"unknown node {node_id!r}")
        return self.nodes[node_id]

    def node_ids(self) -> List[object]:
        return sorted(self.nodes, key=repr)

    # -- base tuple management ---------------------------------------------------------

    def seed_links(
        self,
        relation: str = "link",
        include_cost: bool = True,
        symmetric: bool = True,
        run: bool = False,
    ) -> int:
        """Insert one *relation* base tuple per topology edge (both directions).

        Returns the number of tuples inserted.  With ``run=True`` the
        simulator is run to quiescence afterwards.
        """
        self._link_relation = relation
        self._link_symmetric = symmetric
        self._link_include_cost = include_cost
        edges = self.topology.directed_edges() if symmetric else [
            (a, b, c) for (a, b), c in sorted(self.topology.edges.items())
        ]
        rows: List[List[object]] = []
        for source, target, cost in edges:
            values: List[object] = [source, target]
            if include_cost:
                values.append(cost)
            rows.append(values)
        self._log_op(["seed_links", relation, bool(include_cost), bool(symmetric)])
        with self._suspend_oplog():
            self.insert_batch(relation, rows)
        if run:
            self.run_to_quiescence()
        return len(rows)

    def _link_values(self, source: object, target: object, cost: float) -> List[object]:
        values: List[object] = [source, target]
        if self._link_include_cost:
            values.append(cost)
        return values

    def insert(self, relation: str, values: Sequence[object]) -> Fact:
        """Insert a base tuple; it is routed to the node its location attribute names.

        If the relation has a ``materialize`` primary key and a tuple with the
        same key is already stored, the old tuple is deleted first (key-based
        overwrite, as in RapidNet/P2).
        """
        fact = Fact.make(relation, values)
        location = self.compiled.catalog.location_of(fact)
        node = self.node(location)

        key = self.compiled.catalog.key_of(fact)
        if key is not None:
            schema = self.compiled.catalog.schema_or_default(relation, fact.arity)
            for existing in list(node.store.facts(relation)):
                if existing != fact and schema.key_of(existing) == key:
                    if BASE_DERIVATION in node.store.derivations(existing):
                        node.delete_base(existing)
        node.insert_base(fact)
        self._log_op(["insert", relation, list(fact.values)])
        return fact

    def delete(self, relation: str, values: Sequence[object]) -> Fact:
        """Delete a base tuple previously inserted with :meth:`insert`."""
        fact = Fact.make(relation, values)
        location = self.compiled.catalog.location_of(fact)
        self.node(location).delete_base(fact)
        self._log_op(["delete", relation, list(fact.values)])
        return fact

    def insert_batch(
        self, relation: str, rows: Sequence[Sequence[object]], run: bool = False
    ) -> List[Fact]:
        """Insert many base tuples of *relation*, delivered as per-node batches.

        The rows are routed to their home nodes and each node absorbs its
        whole share in one evaluation batch (see
        :meth:`repro.engine.node.Node.apply_base_batch`), which is the
        batch-first fast path for bulk loads such as :meth:`seed_links`.
        Key-based overwrite semantics match :meth:`insert`, including between
        rows of the same batch (the last row with a given key wins).
        With ``run=True`` the simulator is run to quiescence afterwards.
        """
        # Insertion-ordered fact "sets" per node (dicts keyed by fact), so the
        # membership / overwrite bookkeeping below is O(1) per row.
        per_node_inserts: Dict[object, Dict[Fact, None]] = {}
        per_node_deletes: Dict[object, Dict[Fact, None]] = {}
        staged_by_key: Dict[Tuple[object, Tuple[object, ...]], Fact] = {}
        # Per-location index of the already-stored base facts by primary key,
        # built once so the overwrite check is O(rows + stored) rather than a
        # full-relation scan per row.
        stored_by_key: Dict[object, Dict[Tuple[object, ...], List[Fact]]] = {}
        facts: List[Fact] = []
        for values in rows:
            fact = Fact.make(relation, values)
            facts.append(fact)
            location = self.compiled.catalog.location_of(fact)
            node = self.node(location)
            inserts = per_node_inserts.setdefault(location, {})
            key = self.compiled.catalog.key_of(fact)
            if key is not None:
                schema = self.compiled.catalog.schema_or_default(relation, fact.arity)
                staged = staged_by_key.pop((location, key), None)
                if staged is not None and staged != fact:
                    inserts.pop(staged, None)
                key_index = stored_by_key.get(location)
                if key_index is None:
                    key_index = {}
                    for existing in node.store.facts(relation):
                        if BASE_DERIVATION in node.store.derivations(existing):
                            key_index.setdefault(schema.key_of(existing), []).append(existing)
                    stored_by_key[location] = key_index
                deletes = per_node_deletes.setdefault(location, {})
                for existing in key_index.get(key, []):
                    if existing != fact:
                        deletes[existing] = None
                staged_by_key[(location, key)] = fact
            inserts[fact] = None
        locations = sorted(set(per_node_inserts) | set(per_node_deletes), key=repr)
        for location in locations:
            self.node(location).apply_base_batch(
                list(per_node_inserts.get(location, ())),
                list(per_node_deletes.get(location, ())),
            )
        self._log_op(["insert_batch", relation, [list(fact.values) for fact in facts]])
        if run:
            self.run_to_quiescence()
        return facts

    def delete_batch(
        self, relation: str, rows: Sequence[Sequence[object]], run: bool = False
    ) -> List[Fact]:
        """Delete many base tuples of *relation*, delivered as per-node batches."""
        per_node: Dict[object, List[Fact]] = {}
        facts: List[Fact] = []
        for values in rows:
            fact = Fact.make(relation, values)
            facts.append(fact)
            location = self.compiled.catalog.location_of(fact)
            per_node.setdefault(location, []).append(fact)
        for location in sorted(per_node, key=repr):
            self.node(location).apply_base_batch((), per_node[location])
        self._log_op(["delete_batch", relation, [list(fact.values) for fact in facts]])
        if run:
            self.run_to_quiescence()
        return facts

    # -- dynamic topology ---------------------------------------------------------------

    def add_link(self, source: str, target: str, cost: float = 1.0) -> None:
        """Add an (undirected) link at runtime, updating base tuples accordingly."""
        self.topology.add_edge(source, target, cost)
        self.network.add_link(source, target, cost=cost, latency=self._link_latency)
        self.network.add_link(target, source, cost=cost, latency=self._link_latency)
        self._log_op(["add_link", source, target, cost])
        if self._link_relation is not None:
            with self._suspend_oplog():
                self.insert(self._link_relation, self._link_values(source, target, cost))
                if self._link_symmetric:
                    self.insert(
                        self._link_relation, self._link_values(target, source, cost)
                    )

    def remove_link(self, source: str, target: str) -> None:
        """Remove a link at runtime, retracting its base tuples."""
        cost = self.topology.cost(source, target) if self.topology.has_edge(source, target) else 1.0
        self.topology.remove_edge(source, target)
        self.network.remove_link(source, target)
        self.network.remove_link(target, source)
        self._log_op(["remove_link", source, target])
        if self._link_relation is not None:
            with self._suspend_oplog():
                self.delete(self._link_relation, self._link_values(source, target, cost))
                if self._link_symmetric:
                    self.delete(
                        self._link_relation, self._link_values(target, source, cost)
                    )

    # -- execution ---------------------------------------------------------------------

    def run(self, duration: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run the simulator for *duration* seconds of virtual time (or until idle)."""
        if self._wal is not None and self._pending_ops:
            raise EngineError(
                "durable runtimes commit mutations in whole quiescence windows; "
                "call run_to_quiescence() instead of run() while ops are pending"
            )
        until = None if duration is None else self.simulator.now + duration
        return self.simulator.run(until=until, max_events=max_events)

    def run_to_quiescence(self, max_events: int = 1_000_000) -> int:
        """Run until no messages or events remain in flight.

        In durable mode the pending mutation window is committed to the
        write-ahead log *first* (append + flush before the simulator drains),
        so the WAL is strictly ahead of the in-memory state it describes.
        """
        self._commit_pending()
        obs = self.obs
        if obs is not None and obs.tracing and obs.tracer.current() is None:
            # Root a "window" trace so drain spans (including worker-side
            # ones mirrored home by the process backend) have a parent.
            span = obs.tracer.start_span("window")
            previous = obs.tracer.set_current(span.context())
            try:
                events = self.simulator.run_to_quiescence(max_events=max_events)
            finally:
                obs.tracer.set_current(previous)
                span.finish()
            span.attrs["events"] = events
            return events
        return self.simulator.run_to_quiescence(max_events=max_events)

    @property
    def now(self) -> float:
        return self.simulator.now

    def close(self) -> None:
        """Release backend and per-node shard worker threads; idempotent.

        A no-op for the default serial backend with unsharded stores, but
        worker-backed configurations (``shard_workers``, ``backend="thread"``
        / ``"asyncio"``) hold real threads — prefer the context-manager form,
        which cannot leak them::

            with NetTrailsRuntime(program, net, backend="thread") as runtime:
                runtime.seed_links(run=True)
        """
        for node in self.nodes.values():
            node.close()
        self.backend.close()
        if self._wal is not None:
            self._wal.close()
            self._wal = None

    def __enter__(self) -> "NetTrailsRuntime":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # -- state inspection -----------------------------------------------------------------

    def state(self, relation: str) -> List[Tuple[object, ...]]:
        """The global contents of *relation*: value tuples from every node, sorted."""
        rows: List[Tuple[object, ...]] = []
        for node in self.nodes.values():
            rows.extend(fact.values for fact in node.store.facts(relation))
        return sorted(rows, key=repr)

    def node_state(self, node_id: object, relation: str) -> List[Tuple[object, ...]]:
        """The contents of *relation* stored at one node."""
        return sorted(
            (fact.values for fact in self.node(node_id).store.facts(relation)), key=repr
        )

    def relation_sizes(self) -> Dict[str, int]:
        """Total number of stored facts per relation across the whole system."""
        sizes: Dict[str, int] = {}
        for node in self.nodes.values():
            for relation in node.store.relations():
                sizes[relation] = sizes.get(relation, 0) + node.store.count(relation)
        return dict(sorted(sizes.items()))

    def total_facts(self) -> int:
        return sum(node.store.count() for node in self.nodes.values())

    def message_stats(self) -> TrafficStats:
        return self.network.stats

    # -- snapshots ----------------------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """A serialisable snapshot of per-node state, used by the log store."""
        return {
            "time": self.simulator.now,
            "program": self.compiled.name,
            "nodes": {
                repr(node_id): node.store.snapshot() for node_id, node in sorted(
                    self.nodes.items(), key=lambda item: repr(item[0])
                )
            },
            "traffic": self.network.stats.snapshot(),
        }
