"""NetTrails runtime: a cluster of nodes executing one NDlog program.

:class:`NetTrailsRuntime` is the facade most users interact with.  It wires
together a compiled NDlog program, a topology, the simulated network, one
:class:`~repro.engine.node.Node` per topology node, and (by default) the
ExSPAN provenance engine.  It offers convenience methods for seeding base
tuples from the topology, mutating the topology at runtime (the dynamic /
mobile scenarios of the paper), inspecting global state and taking snapshots
for the log store.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import EngineError, UnknownNodeError
from repro.ndlog.ast import Program
from repro.ndlog.functions import FunctionRegistry
from repro.ndlog.parser import parse_program
from repro.engine.compiler import CompiledProgram, compile_program
from repro.engine.network import Network, TrafficStats
from repro.engine.node import Node
from repro.engine.simulator import Simulator
from repro.engine.store import BASE_DERIVATION
from repro.engine.topology import Topology
from repro.engine.tuples import Fact


class NetTrailsRuntime:
    """A running (simulated) distributed system with provenance tracking."""

    def __init__(
        self,
        program: Union[Program, str],
        topology: Topology,
        provenance: Union[bool, object] = True,
        default_latency: float = 0.01,
        link_latency: float = 0.01,
        registry: Optional[FunctionRegistry] = None,
        program_name: Optional[str] = None,
        aggregate_retract_first: bool = False,
    ):
        if isinstance(program, str):
            program = parse_program(program, name=program_name or "program")
        self.program = program
        self.compiled: CompiledProgram = compile_program(program, registry)
        self.topology = topology
        self.simulator = Simulator()
        self.network = Network(self.simulator, default_latency=default_latency)
        self._link_latency = link_latency
        self._link_relation: Optional[str] = None
        self._link_symmetric = True
        self._link_include_cost = True

        if provenance is True:
            from repro.core.maintenance import ProvenanceEngine  # avoid an import cycle

            self.provenance: Optional[object] = ProvenanceEngine(self.compiled)
        elif provenance is False or provenance is None:
            self.provenance = None
        else:
            self.provenance = provenance

        self.nodes: Dict[object, Node] = {}
        for name in topology.nodes:
            self.nodes[name] = Node(
                name,
                self.compiled,
                self.network,
                self.provenance,
                aggregate_retract_first=aggregate_retract_first,
            )
        for source, target, cost in topology.directed_edges():
            self.network.add_link(source, target, cost=cost, latency=link_latency)

    # -- node access ----------------------------------------------------------------

    def node(self, node_id: object) -> Node:
        if node_id not in self.nodes:
            raise UnknownNodeError(f"unknown node {node_id!r}")
        return self.nodes[node_id]

    def node_ids(self) -> List[object]:
        return sorted(self.nodes, key=repr)

    # -- base tuple management ---------------------------------------------------------

    def seed_links(
        self,
        relation: str = "link",
        include_cost: bool = True,
        symmetric: bool = True,
        run: bool = False,
    ) -> int:
        """Insert one *relation* base tuple per topology edge (both directions).

        Returns the number of tuples inserted.  With ``run=True`` the
        simulator is run to quiescence afterwards.
        """
        self._link_relation = relation
        self._link_symmetric = symmetric
        self._link_include_cost = include_cost
        inserted = 0
        edges = self.topology.directed_edges() if symmetric else [
            (a, b, c) for (a, b), c in sorted(self.topology.edges.items())
        ]
        for source, target, cost in edges:
            values: List[object] = [source, target]
            if include_cost:
                values.append(cost)
            self.insert(relation, values)
            inserted += 1
        if run:
            self.run_to_quiescence()
        return inserted

    def _link_values(self, source: object, target: object, cost: float) -> List[object]:
        values: List[object] = [source, target]
        if self._link_include_cost:
            values.append(cost)
        return values

    def insert(self, relation: str, values: Sequence[object]) -> Fact:
        """Insert a base tuple; it is routed to the node its location attribute names.

        If the relation has a ``materialize`` primary key and a tuple with the
        same key is already stored, the old tuple is deleted first (key-based
        overwrite, as in RapidNet/P2).
        """
        fact = Fact.make(relation, values)
        location = self.compiled.catalog.location_of(fact)
        node = self.node(location)

        key = self.compiled.catalog.key_of(fact)
        if key is not None:
            schema = self.compiled.catalog.schema_or_default(relation, fact.arity)
            for existing in list(node.store.facts(relation)):
                if existing != fact and schema.key_of(existing) == key:
                    if BASE_DERIVATION in node.store.derivations(existing):
                        node.delete_base(existing)
        node.insert_base(fact)
        return fact

    def delete(self, relation: str, values: Sequence[object]) -> Fact:
        """Delete a base tuple previously inserted with :meth:`insert`."""
        fact = Fact.make(relation, values)
        location = self.compiled.catalog.location_of(fact)
        self.node(location).delete_base(fact)
        return fact

    # -- dynamic topology ---------------------------------------------------------------

    def add_link(self, source: str, target: str, cost: float = 1.0) -> None:
        """Add an (undirected) link at runtime, updating base tuples accordingly."""
        self.topology.add_edge(source, target, cost)
        self.network.add_link(source, target, cost=cost, latency=self._link_latency)
        self.network.add_link(target, source, cost=cost, latency=self._link_latency)
        if self._link_relation is not None:
            self.insert(self._link_relation, self._link_values(source, target, cost))
            if self._link_symmetric:
                self.insert(self._link_relation, self._link_values(target, source, cost))

    def remove_link(self, source: str, target: str) -> None:
        """Remove a link at runtime, retracting its base tuples."""
        cost = self.topology.cost(source, target) if self.topology.has_edge(source, target) else 1.0
        self.topology.remove_edge(source, target)
        self.network.remove_link(source, target)
        self.network.remove_link(target, source)
        if self._link_relation is not None:
            self.delete(self._link_relation, self._link_values(source, target, cost))
            if self._link_symmetric:
                self.delete(self._link_relation, self._link_values(target, source, cost))

    # -- execution ---------------------------------------------------------------------

    def run(self, duration: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run the simulator for *duration* seconds of virtual time (or until idle)."""
        until = None if duration is None else self.simulator.now + duration
        return self.simulator.run(until=until, max_events=max_events)

    def run_to_quiescence(self, max_events: int = 1_000_000) -> int:
        """Run until no messages or events remain in flight."""
        return self.simulator.run_to_quiescence(max_events=max_events)

    @property
    def now(self) -> float:
        return self.simulator.now

    # -- state inspection -----------------------------------------------------------------

    def state(self, relation: str) -> List[Tuple[object, ...]]:
        """The global contents of *relation*: value tuples from every node, sorted."""
        rows: List[Tuple[object, ...]] = []
        for node in self.nodes.values():
            rows.extend(fact.values for fact in node.store.facts(relation))
        return sorted(rows, key=repr)

    def node_state(self, node_id: object, relation: str) -> List[Tuple[object, ...]]:
        """The contents of *relation* stored at one node."""
        return sorted(
            (fact.values for fact in self.node(node_id).store.facts(relation)), key=repr
        )

    def relation_sizes(self) -> Dict[str, int]:
        """Total number of stored facts per relation across the whole system."""
        sizes: Dict[str, int] = {}
        for node in self.nodes.values():
            for relation in node.store.relations():
                sizes[relation] = sizes.get(relation, 0) + node.store.count(relation)
        return dict(sorted(sizes.items()))

    def total_facts(self) -> int:
        return sum(node.store.count() for node in self.nodes.values())

    def message_stats(self) -> TrafficStats:
        return self.network.stats

    # -- snapshots ----------------------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """A serialisable snapshot of per-node state, used by the log store."""
        return {
            "time": self.simulator.now,
            "program": self.compiled.name,
            "nodes": {
                repr(node_id): node.store.snapshot() for node_id, node in sorted(
                    self.nodes.items(), key=lambda item: repr(item[0])
                )
            },
            "traffic": self.network.stats.snapshot(),
        }
