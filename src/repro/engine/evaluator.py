"""Per-node incremental NDlog evaluator.

The :class:`LocalEvaluator` maintains, for one node, the consequences of the
compiled program over the node's local tuple store.  It is *purely local*:
it never touches the network.  Given a fact that has just appeared in (or
disappeared from) the local store, it computes the set of rule firings and
retractions this causes — the :class:`DerivationEffect` objects — and leaves
it to the :class:`repro.engine.node.Node` to apply local effects and to ship
remote ones as messages.

The evaluator implements:

* semi-naive (delta) evaluation, either one update at a time
  (:meth:`LocalEvaluator.on_fact_inserted` / ``on_fact_deleted``) or — the
  batch-first hot path — over a whole set of deltas at once
  (:meth:`LocalEvaluator.on_batch`), which groups same-relation deltas,
  runs one semi-naive join pass per (rule, delta position) over the whole
  delta set and defers aggregate recomputation so each touched group is
  recomputed exactly once per batch,
* derivation tracking (one firing record per distinct rule firing), which
  both drives incremental deletion and feeds the provenance engine,
* aggregates (``min``/``max``/``count``/``sum``/``avg``) maintained per
  group with correct retract-and-replace behaviour when the aggregate value
  changes, and
* stratum-free negation: firings are retracted when a fact matching one of
  their negative literals appears, and re-derived when it disappears.

Deletion semantics: incremental deletion uses derivation counting — a derived
fact disappears when its last recorded derivation is retracted.  This is
exact for programs whose derivations cannot cyclically support each other
(every protocol shipped in :mod:`repro.protocols` has this property: costs
strictly increase along MINCOST/distance-vector derivations and paths
strictly extend in path-vector/DSR).  For programs with genuinely cyclic
support — e.g. plain symmetric transitive closure — counting can retain
tuples whose only remaining support is a derivation cycle, the classic
limitation that DRed-style maintenance addresses; see DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import EngineError
from repro.ndlog.ast import (
    Aggregate,
    Assignment,
    Condition,
    Constant,
    Expression,
    Literal,
    Rule,
    Variable,
)
from repro.engine.compiler import CompiledProgram
from repro.engine.dataflow import (
    _ARITHMETIC,
    _COMPARISON,
    Bindings,
    bound_positions,
    evaluate_term,
    group_key_of,
    instantiate_head,
    match_atom,
    satisfies,
)
from repro.engine.store import SerialShardExecutor, ShardExecutor, TupleStore
from repro.engine.tuples import SLOTTED, Fact


@dataclass(frozen=True, **SLOTTED)
class DerivationEffect:
    """One rule firing (+1) or retraction (-1) produced by the evaluator.

    ``firing_id`` identifies the derivation; the node that stores the head
    fact uses it as the derivation id in its store, and the provenance engine
    uses it to connect the rule-execution vertex with the derived tuple
    vertex.
    """

    sign: int
    firing_id: str
    rule_name: str
    program_name: str
    head_fact: Fact
    head_location: object
    body_facts: Tuple[Fact, ...]

    def __str__(self) -> str:
        symbol = "+" if self.sign > 0 else "-"
        return f"{symbol}{self.head_fact} via {self.rule_name} [{self.firing_id}]"


@dataclass(**SLOTTED)
class _FiringRecord:
    firing_id: str
    rule_name: str
    head_fact: Fact
    head_location: object
    body_facts: Tuple[Fact, ...]


@dataclass(**SLOTTED)
class _AggEntry:
    value: object
    body_facts: Tuple[Fact, ...]


@dataclass(**SLOTTED)
class _AggHead:
    firing_id: str
    head_fact: Fact
    head_location: object
    body_facts: Tuple[Fact, ...]
    #: The aggregate value the head carries.  ``value == new_value`` together
    #: with ``body_facts == contributing`` implies the recomputed head is
    #: identical (the head is a pure function of rule, group key and value),
    #: letting recomputation skip rebuilding the head fact in the common
    #: nothing-changed case.
    value: object = None


@dataclass(frozen=True)
class _ColumnarStep:
    """One join step of a compiled columnar plan (one non-delta body atom).

    ``key_ops`` builds the probe-key tuple for ``key_positions``: each entry
    is ``(is_slot, payload)`` — a bound variable's slot number or a constant
    value.  ``bind_ops``/``check_ops`` are ``(attribute position, slot)``
    pairs: binds copy candidate values into slots (first occurrence of a
    variable new to this step), checks compare against already-written slots
    (repeated occurrences).  Checks run after binds so within-atom repeats
    read the value the same candidate just wrote.
    """

    body_index: int
    relation: str
    arity: int
    key_positions: Tuple[int, ...]
    key_ops: Tuple[Tuple[bool, object], ...]
    bind_ops: Tuple[Tuple[int, int], ...]
    check_ops: Tuple[Tuple[int, int], ...]
    excluded: bool


@dataclass(frozen=True)
class _ColumnarPlan:
    """Compiled join program for one (rule, delta position) trigger.

    Variables live in a flat slot array instead of per-candidate dict
    copies; ``delta_slots`` seeds the slots from the delta fact's
    ``match_atom`` bindings, and each step probes the store's columnar
    id arrays.  ``None`` is cached for ineligible triggers (a non-delta
    body atom with expression terms), which fall back to the generic
    dict-based join.
    """

    delta_index: int
    slot_names: Tuple[str, ...]
    delta_slots: Tuple[Tuple[str, int], ...]
    steps: Tuple[_ColumnarStep, ...]
    #: Compiled assignments/conditions in rule-body order, or ``None`` when
    #: some body element is not slot-compilable (the join then finalizes
    #: through the generic dict-based path).  Entries are
    #: ``("assign", slot, fn)`` / ("cond", None, fn)`` with ``fn(slots)``.
    post_ops: Optional[Tuple[Tuple[str, Optional[int], object], ...]] = None
    #: Non-aggregate heads: ``(relation, ((is_slot, payload), ...))`` building
    #: the head fact straight from the slots — no bindings dict, no
    #: ``instantiate_head``.  ``None`` -> dict fallback (or aggregate rule).
    head_build: Optional[Tuple[str, Tuple[Tuple[bool, object], ...]]] = None
    #: Aggregate rules: ``((is_slot, payload), ...)`` group-key ops plus the
    #: aggregate input's slot (``None`` = count-style value 1).
    agg_group_ops: Optional[Tuple[Tuple[bool, object], ...]] = None
    agg_value_slot: Optional[int] = None
    #: Compiled delta-atom seed: the trigger fact's values are written
    #: straight into the slots — ``("bind", position, slot)`` /
    #: ``("check_slot", position, slot)`` (repeated variable) /
    #: ``("check_const", position, value)`` — replacing the per-trigger
    #: ``match_atom`` call and its bindings dict.  ``None`` when the delta
    #: atom carries expression terms (those keep the ``match_atom`` seed).
    delta_ops: Optional[Tuple[Tuple[str, int, object], ...]] = None
    delta_arity: int = -1


def _compile_expr(term, slot_of: Dict[str, int]):
    """Compile a ground expression term into ``fn(slots) -> value``.

    Mirrors :func:`repro.engine.dataflow.evaluate_term` over the compilable
    core — constants, slot-bound variables, and arithmetic/comparison
    operator trees.  Returns ``None`` for anything else (function calls,
    aggregates, unbound variables); the caller then keeps the generic
    dict-based evaluation for the whole rule.
    """
    if isinstance(term, Constant):
        value = term.value
        return lambda slots: value
    if isinstance(term, Variable):
        slot = slot_of.get(term.name)
        if slot is None:
            return None
        return lambda slots: slots[slot]
    if isinstance(term, Expression):
        operator = _ARITHMETIC.get(term.op) or _COMPARISON.get(term.op)
        if operator is None:
            return None
        # Flatten the two overwhelmingly common shapes — ``Var op Const``
        # and ``Var op Var`` — into a single closure so evaluating a
        # condition costs one call instead of three.
        left_term, right_term = term.left, term.right
        if isinstance(left_term, Variable):
            left_slot = slot_of.get(left_term.name)
            if left_slot is None:
                return None
            if isinstance(right_term, Constant):
                right_value = right_term.value
                return lambda slots: operator(slots[left_slot], right_value)
            if isinstance(right_term, Variable):
                right_slot = slot_of.get(right_term.name)
                if right_slot is None:
                    return None
                return lambda slots: operator(slots[left_slot], slots[right_slot])
        left = _compile_expr(left_term, slot_of)
        right = _compile_expr(right_term, slot_of)
        if left is None or right is None:
            return None
        return lambda slots: operator(left(slots), right(slots))
    return None


class LocalEvaluator:
    """Incremental evaluation of a compiled program over one node's store."""

    def __init__(
        self,
        compiled: CompiledProgram,
        store: TupleStore,
        node_id: object,
        aggregate_retract_first: bool = False,
        shard_executor: Optional[ShardExecutor] = None,
    ):
        self._compiled = compiled
        self._store = store
        self._node = node_id
        self._registry = compiled.registry
        self._firing_seq = 0
        #: Executor for the per-shard join passes of :meth:`on_batch`; only
        #: consulted when the store is sharded (``store.num_shards > 1``).
        self._shard_executor: ShardExecutor = (
            shard_executor if shard_executor is not None else SerialShardExecutor()
        )
        #: Ablation switch (see DESIGN.md §5): when True, aggregate changes are
        #: propagated as retract-then-insert instead of the default
        #: insert-then-retract ordering.  Only benchmarks should enable it.
        self.aggregate_retract_first = aggregate_retract_first

        self._firings: Dict[str, _FiringRecord] = {}
        self._firing_by_body: Dict[Tuple[str, Tuple[Fact, ...]], str] = {}
        self._fact_firings: Dict[Fact, Set[str]] = {}

        # Aggregate state: rule name -> group key -> {body_facts -> entry}
        self._agg_entries: Dict[str, Dict[Tuple, Dict[Tuple[Fact, ...], _AggEntry]]] = {}
        self._agg_heads: Dict[Tuple[str, Tuple], _AggHead] = {}
        # Fact -> memberships, each (repr sort key, rule name, group key,
        # body facts) — the sort key is computed once here so deletion-time
        # ordering (phase 1) is a plain tuple sort.
        self._fact_agg_entries: Dict[Fact, Set[Tuple[str, str, Tuple, Tuple[Fact, ...]]]] = {}
        self._agg_rules: Dict[str, Rule] = {
            rule.name: rule for rule in compiled.rules if rule.has_aggregate
        }
        # When not None, the evaluator is inside an on_batch call: aggregate
        # recomputation is deferred and touched groups accumulate here as
        # (sort key, rule name, group key) so each group is recomputed
        # exactly once per batch, in precomputed-key order.
        self._dirty_agg_groups: Optional[Set[Tuple[str, str, Tuple]]] = None
        # (rule name, delta position) -> the (relation, index positions) each
        # non-delta literal will probe during the join, computed statically.
        self._prewarm_plans: Dict[Tuple[str, int], List[Tuple[str, Tuple[int, ...]]]] = {}
        # (rule name, delta position) -> compiled columnar join plan, or None
        # for triggers the fast path cannot handle (expression body terms).
        self._columnar_plans: Dict[Tuple[str, int], Optional[_ColumnarPlan]] = {}
        # True while on_batch's insert pass runs against a columnar store
        # whose batch probe tables are populated; gates the fast path.
        self._batch_probe_active = False
        # (rule name, group key) -> cached repr sort key for phase-3 ordering.
        self._group_sort_keys: Dict[Tuple[str, Tuple], str] = {}
        # Columnar stores intern facts, so repr-derived sort keys can be
        # memoized by identity-hashing dict lookups: membership keys by
        # (rule, group, body) and fact reprs for contributing-set ordering.
        # The dict reference path recomputes both every time (the ablation
        # baseline stays allocation-faithful to the original implementation).
        self._columnar_store = bool(getattr(store, "columnar", False))
        # (rule, group, body) -> (membership tuple, distinct body facts).
        self._membership_reprs: Dict[
            Tuple[str, Tuple, Tuple[Fact, ...]],
            Tuple[Tuple[str, str, Tuple, Tuple[Fact, ...]], Tuple[Fact, ...]],
        ] = {}
        self._fact_reprs: Dict[Fact, str] = {}

    # -- public statistics -------------------------------------------------------

    @property
    def firing_count(self) -> int:
        """Number of currently-live rule firings recorded at this node."""
        return len(self._firings) + len(self._agg_heads)

    # -- entry points --------------------------------------------------------------

    def on_fact_inserted(self, fact: Fact) -> List[DerivationEffect]:
        """React to *fact* having just become present in the local store."""
        effects: List[DerivationEffect] = []
        for rule, delta_index in self._compiled.delta_index.get(fact.relation, []):
            for bindings, body_facts in self._delta_bindings(rule, delta_index, fact):
                effects.extend(self._apply_firing(rule, bindings, body_facts))
        for rule in self._compiled.negation_index.get(fact.relation, []):
            effects.extend(self._retract_blocked_firings(rule, fact))
        return effects

    def on_fact_deleted(self, fact: Fact) -> List[DerivationEffect]:
        """React to *fact* having just disappeared from the local store."""
        effects: List[DerivationEffect] = []

        # Retraction of ordinary firings that used the fact positively.
        firings = self._fact_firings.pop(fact, None)
        if firings:
            for firing_id in sorted(firings):
                record = self._firings.get(firing_id)
                if record is None:
                    continue
                effects.append(self._retract_firing(record))

        # Removal of aggregate entries that used the fact.  Memberships carry
        # their repr sort key as element 0 (computed once at entry creation),
        # so ordering them is a plain tuple sort with no repr() calls.
        memberships = self._fact_agg_entries.pop(fact, None)
        if memberships:
            for membership in sorted(memberships):
                effects.extend(self._agg_remove_entry(membership))

        # Firings newly enabled because a negative literal stopped matching.
        for rule in self._compiled.negation_index.get(fact.relation, []):
            effects.extend(self._enable_unblocked_firings(rule, fact))
        return effects

    def on_batch(
        self, inserts: Sequence[Fact], deletes: Sequence[Fact]
    ) -> List[DerivationEffect]:
        """React to a whole batch of store changes at once (the hot path).

        *inserts* are facts that newly became present and *deletes* facts that
        disappeared since the last evaluator call; the local store must
        already reflect the entire batch, and the two sequences must be
        disjoint (callers collapse flickering facts to their net transition).

        The batch pass is equivalent to replaying the deltas one at a time —
        incremental maintenance is confluent, so the final store and
        provenance state are identical — but does strictly less work:

        * same-relation deltas are grouped and each (rule, delta position)
          trigger runs one semi-naive join pass over the whole delta set,
          with the classic batch exclusion rule (body positions *before* the
          delta position skip every delta fact of that relation, so each new
          binding is found exactly once);
        * aggregate recomputation is deferred: each touched (rule, group)
          pair is recomputed once at the end of the batch, so a group hit by
          many deltas emits one consolidated retract/insert pair instead of
          an intermediate effect per delta;
        * the secondary-index lookups in :meth:`TupleStore.matching` are
          amortised over the whole delta set instead of being interleaved
          with per-fact bookkeeping.
        """
        if self._dirty_agg_groups is not None:
            raise EngineError("on_batch is not re-entrant")
        effects: List[DerivationEffect] = []
        self._dirty_agg_groups = set()
        try:
            # Phase 1 — deletions: retract firings and aggregate entries that
            # used a deleted fact (pure bookkeeping, driven by the reverse
            # indexes, no store scans).
            for fact in deletes:
                firings = self._fact_firings.pop(fact, None)
                if firings:
                    for firing_id in sorted(firings):
                        record = self._firings.get(firing_id)
                        if record is None:
                            continue
                        effects.append(self._retract_firing(record))
                memberships = self._fact_agg_entries.pop(fact, None)
                if memberships:
                    for membership in sorted(memberships):
                        effects.extend(self._agg_remove_entry(membership))
            # Firings newly enabled because a negative literal stopped
            # matching; runs after all retractions so the store and firing
            # tables are settled.
            for fact in deletes:
                for rule in self._compiled.negation_index.get(fact.relation, []):
                    effects.extend(self._enable_unblocked_firings(rule, fact))

            # Phase 2 — insertions: one batch semi-naive pass per trigger.
            # On a sharded store the join passes run per shard (possibly on a
            # thread pool) and their firings are merged in shard order.
            by_relation: Dict[str, List[Fact]] = {}
            for fact in inserts:
                by_relation.setdefault(fact.relation, []).append(fact)
            exclusions: Dict[str, Set[Fact]] = {
                relation: set(facts) for relation, facts in by_relation.items()
            }
            # On a columnar store, publish the batch's delta facts as
            # per-relation interned-id sets; _delta_bindings then dispatches
            # to the compiled columnar join, whose exclusion checks are
            # integer-set probes over those tables.
            columnar_probe = bool(inserts) and getattr(self._store, "columnar", False)
            if columnar_probe:
                self._store.begin_batch_probe(inserts)
                self._batch_probe_active = True
            try:
                if getattr(self._store, "num_shards", 1) > 1 and inserts:
                    effects.extend(self._sharded_insert_pass(inserts, by_relation, exclusions))
                else:
                    for relation, delta_facts in by_relation.items():
                        for rule, delta_index in self._compiled.delta_index.get(relation, []):
                            self._prewarm_join_indexes(rule, delta_index)
                            for fact in delta_facts:
                                for bindings, body_facts in self._delta_bindings(
                                    rule, delta_index, fact, exclusions
                                ):
                                    effects.extend(self._apply_firing(rule, bindings, body_facts))
            finally:
                if columnar_probe:
                    self._batch_probe_active = False
                    self._store.end_batch_probe()
            for relation, delta_facts in by_relation.items():
                for rule in self._compiled.negation_index.get(relation, []):
                    for fact in delta_facts:
                        effects.extend(self._retract_blocked_firings(rule, fact))

            # Phase 3 — flush deferred aggregates: one recomputation per
            # touched group, in a deterministic order.  Dirty entries are
            # (sort key, rule name, group key) with the repr key memoized per
            # group, so the sort itself never calls repr().
            dirty = sorted(self._dirty_agg_groups)
            self._dirty_agg_groups = None
            for _, rule_name, group_key in dirty:
                rule = self._agg_rules.get(rule_name)
                if rule is not None:
                    effects.extend(self._agg_recompute(rule, group_key))
        finally:
            self._dirty_agg_groups = None
        return effects

    def recompute_effects_for_existing(self, fact: Fact) -> List[DerivationEffect]:
        """Alias of :meth:`on_fact_inserted`, used when replaying a store."""
        return self.on_fact_inserted(fact)

    def _sharded_insert_pass(
        self,
        inserts: Sequence[Fact],
        by_relation: Dict[str, List[Fact]],
        exclusions: Dict[str, Set[Fact]],
    ) -> List[DerivationEffect]:
        """Run the batch semi-naive insert pass per shard, merging deterministically.

        Applying a firing never changes the tuple store (only evaluator
        bookkeeping), so the set of complete bindings triggered by a batch is
        independent of the order firings are recorded in — which is what
        allows the pass to be split into a read-only *enumeration* stage and
        a serial *apply* stage:

        1. every secondary index any trigger will probe is built up front
           (index construction is the one store mutation joins would
           otherwise race on);
        2. each shard's share of the delta facts is joined against the whole
           (cross-shard) store concurrently via the shard executor — the
           enumeration only reads the store, the compiled program and the
           shared exclusion sets;
        3. the discovered bindings are turned into firings serially, shard by
           shard in shard-index order, so firing ids, duplicate suppression
           and deferred aggregate bookkeeping behave exactly as in a serial
           pass over the same delta order.
        """
        for relation in by_relation:
            for rule, delta_index in self._compiled.delta_index.get(relation, []):
                self._prewarm_join_indexes(rule, delta_index)

        num_shards = self._store.num_shards
        shard_deltas: List[List[Fact]] = [[] for _ in range(num_shards)]
        for fact in inserts:
            shard_deltas[self._store.shard_index(fact)].append(fact)

        def enumerate_shard(delta_facts: List[Fact]):
            found = []
            local_by_relation: Dict[str, List[Fact]] = {}
            for fact in delta_facts:
                local_by_relation.setdefault(fact.relation, []).append(fact)
            for relation, facts in local_by_relation.items():
                for rule, delta_index in self._compiled.delta_index.get(relation, []):
                    for fact in facts:
                        for bindings, body_facts in self._delta_bindings(
                            rule, delta_index, fact, exclusions
                        ):
                            found.append((rule, bindings, body_facts))
            return found

        effects: List[DerivationEffect] = []
        jobs = [delta_facts for delta_facts in shard_deltas if delta_facts]
        for found in self._shard_executor.map(enumerate_shard, jobs):
            for rule, bindings, body_facts in found:
                effects.extend(self._apply_firing(rule, bindings, body_facts))
        return effects

    # -- firing management ----------------------------------------------------------

    def _next_firing_id(self) -> str:
        self._firing_seq += 1
        return f"{self._node}#{self._firing_seq}"

    def _apply_firing(
        self, rule: Rule, bindings: object, body_facts: Tuple[Fact, ...]
    ) -> List[DerivationEffect]:
        """Record one rule firing.

        *bindings* is normally the complete bindings dict; a compiled
        columnar join passes its precomputed payload instead — the head fact
        itself (non-aggregate rules) or a ``(group key, value)`` pair
        (aggregate rules) — so no bindings dict ever exists on that path.
        """
        # The compiled payload's type decides the path outright — a tuple is
        # an aggregate (group key, value) pair, a Fact is a prebuilt head —
        # so neither consults the ``has_aggregate`` head scan per firing.
        kind = type(bindings)
        if kind is tuple:
            group_key, value = bindings
            return self._agg_add_entry_direct(rule, group_key, value, body_facts)
        if kind is not Fact and rule.has_aggregate:
            return self._agg_add_entry(rule, bindings, body_facts)

        key = (rule.name, body_facts)
        if key in self._firing_by_body:
            # The same combination of body facts can be rediscovered when a
            # fact is re-inserted concurrently with unprocessed retractions;
            # a firing must not be duplicated.
            return []

        if kind is Fact:
            head_fact = bindings
            # Compiled-path bodies hold canonical (interned) facts, so the
            # one-or-two-fact common case dedups by identity without
            # allocating a set.
            if len(body_facts) == 1 or (
                len(body_facts) == 2 and body_facts[0] is not body_facts[1]
            ):
                distinct_facts: Iterable[Fact] = body_facts
            else:
                distinct_facts = set(body_facts)
        else:
            head_fact = instantiate_head(rule.head, bindings, self._registry)
            distinct_facts = set(body_facts)
        head_location = self._compiled.catalog.location_of(head_fact)
        firing_id = self._next_firing_id()
        record = _FiringRecord(firing_id, rule.name, head_fact, head_location, body_facts)
        self._firings[firing_id] = record
        self._firing_by_body[key] = firing_id
        fact_firings = self._fact_firings
        for fact in distinct_facts:
            firings = fact_firings.get(fact)
            if firings is None:
                fact_firings[fact] = {firing_id}
            else:
                firings.add(firing_id)
        return [
            DerivationEffect(
                sign=+1,
                firing_id=firing_id,
                rule_name=rule.name,
                program_name=self._compiled.name,
                head_fact=head_fact,
                head_location=head_location,
                body_facts=body_facts,
            )
        ]

    def _retract_firing(self, record: _FiringRecord) -> DerivationEffect:
        self._firings.pop(record.firing_id, None)
        self._firing_by_body.pop((record.rule_name, record.body_facts), None)
        # Duplicate body facts are harmless here: discard is idempotent and a
        # bucket emptied by the first occurrence makes later gets return None,
        # so the dedup set the loop used to build bought nothing.
        for fact in record.body_facts:
            firings = self._fact_firings.get(fact)
            if firings is not None:
                firings.discard(record.firing_id)
                if not firings:
                    del self._fact_firings[fact]
        return DerivationEffect(
            sign=-1,
            firing_id=record.firing_id,
            rule_name=record.rule_name,
            program_name=self._compiled.name,
            head_fact=record.head_fact,
            head_location=record.head_location,
            body_facts=record.body_facts,
        )

    # -- join enumeration --------------------------------------------------------------

    def _prewarm_join_indexes(self, rule: Rule, delta_index: int) -> None:
        """Build the secondary indexes the (rule, delta position) join will probe.

        The set of bound attribute positions at each join step is static: a
        position is bound iff its term is a constant or a variable introduced
        by the delta literal or an earlier-joined literal.  Computing the plan
        once and pre-building the indexes up front means a batch pays index
        construction once per (relation, positions) pair instead of lazily
        inside the first :meth:`TupleStore.matching` scan of every join.

        The plan also covers the rule's *negative* literals (probed by
        :meth:`_finalize_binding` with every positive-join and assignment
        variable bound), which keeps the whole join enumeration free of index
        construction — the property the sharded batch pass relies on to run
        enumeration concurrently over a store it only reads.
        """
        plan_key = (rule.name, delta_index)
        plan = self._prewarm_plans.get(plan_key)
        if plan is None:
            plan = []
            positives = rule.positive_literals

            def atom_variables(atom) -> Set[str]:
                return {term.name for term in atom.terms if isinstance(term, Variable)}

            def bound_index_positions(atom, bound_vars: Set[str]) -> Tuple[int, ...]:
                return tuple(
                    sorted(
                        index
                        for index, term in enumerate(atom.terms)
                        if isinstance(term, Constant)
                        or (isinstance(term, Variable) and term.name in bound_vars)
                    )
                )

            bound_vars = atom_variables(positives[delta_index].atom)
            for position in range(len(positives)):
                if position == delta_index:
                    continue
                atom = positives[position].atom
                plan.append((atom.relation, bound_index_positions(atom, bound_vars)))
                bound_vars |= atom_variables(atom)
            for element in rule.body:
                if isinstance(element, Assignment):
                    bound_vars.add(element.variable)
            for literal in rule.negative_literals:
                atom = literal.atom
                plan.append((atom.relation, bound_index_positions(atom, bound_vars)))
            self._prewarm_plans[plan_key] = plan
        columnar_plan = (
            self._columnar_plan(rule, delta_index)
            if getattr(self._store, "columnar", False)
            else None
        )
        if columnar_plan is not None:
            # The columnar join probes its own key positions (it never treats
            # the wildcard as bound, unlike the generic plan), so only the
            # negative-literal tail of the generic plan still needs
            # preparing — building the generic positive-literal indexes too
            # would double index maintenance without a probe to serve.
            for step in columnar_plan.steps:
                self._store.prepare_index(step.relation, step.key_positions)
            for relation, positions in plan[len(rule.positive_literals) - 1:]:
                self._store.prepare_index(relation, positions)
        else:
            for relation, positions in plan:
                self._store.prepare_index(relation, positions)

    def _delta_bindings(
        self,
        rule: Rule,
        delta_index: int,
        fact: Fact,
        exclusions: Optional[Dict[str, Set[Fact]]] = None,
    ) -> Iterable[Tuple[Bindings, Tuple[Fact, ...]]]:
        """Enumerate complete rule bindings in which *fact* plays body position *delta_index*.

        *exclusions* maps relation names to the delta facts of the current
        batch; body positions before *delta_index* skip those facts (batch
        semi-naive de-duplication).  When omitted, the singleton batch
        ``{fact}`` is assumed, which is the classic per-fact rule.

        Returns a plain list on the compiled columnar path (no generator
        suspension per binding) and a generator on the reference path.
        """
        positives = rule.positive_literals
        delta_literal = positives[delta_index]

        if exclusions is not None and self._batch_probe_active:
            # Batch pass over a columnar store: run the compiled slot-based
            # join against the interned id arrays (exclusion checks become
            # integer-set probes).  Triggers the plan cannot express fall
            # through to the generic dict-based join below.
            plan = self._columnar_plan(rule, delta_index)
            if plan is not None:
                if plan.delta_ops is not None:
                    return self._columnar_join(rule, plan, fact, None)
                initial = match_atom(delta_literal.atom, fact, {}, self._registry)
                if initial is None:
                    return []
                return self._columnar_join(rule, plan, fact, initial)

        initial = match_atom(delta_literal.atom, fact, {}, self._registry)
        if initial is None:
            return []
        return self._delta_bindings_generic(
            rule, positives, delta_index, fact, exclusions, initial
        )

    def _delta_bindings_generic(
        self,
        rule: Rule,
        positives: Sequence[Literal],
        delta_index: int,
        fact: Fact,
        exclusions: Optional[Dict[str, Set[Fact]]],
        initial: Bindings,
    ) -> Iterator[Tuple[Bindings, Tuple[Fact, ...]]]:
        slots: List[Optional[Fact]] = [None] * len(positives)
        slots[delta_index] = fact
        if exclusions is None:
            exclusions = {fact.relation: {fact}}

        remaining = [index for index in range(len(positives)) if index != delta_index]
        yield from self._join_remaining(
            rule, positives, remaining, 0, initial, slots, exclusions, delta_index
        )

    def _join_remaining(
        self,
        rule: Rule,
        positives: Sequence[Literal],
        remaining: List[int],
        cursor: int,
        bindings: Bindings,
        slots: List[Optional[Fact]],
        exclusions: Dict[str, Set[Fact]],
        delta_index: int,
    ) -> Iterator[Tuple[Bindings, Tuple[Fact, ...]]]:
        if cursor == len(remaining):
            final = self._finalize_binding(rule, bindings)
            if final is not None:
                body_facts = tuple(slot for slot in slots if slot is not None)
                yield final, body_facts
            return

        position = remaining[cursor]
        literal = positives[position]
        bound = bound_positions(literal.atom, bindings)
        excluded = exclusions.get(literal.atom.relation) if position < delta_index else None
        for candidate in list(self._store.matching(literal.atom.relation, bound)):
            # Semi-naive de-duplication: positions *before* the delta position
            # must not use any delta fact of the current batch, otherwise each
            # binding using several delta facts would be produced once per
            # delta occurrence instead of exactly once (for the first one).
            if excluded is not None and candidate in excluded:
                continue
            extended = match_atom(literal.atom, candidate, bindings, self._registry)
            if extended is None:
                continue
            slots[position] = candidate
            yield from self._join_remaining(
                rule, positives, remaining, cursor + 1, extended, slots, exclusions, delta_index
            )
            slots[position] = None

    # -- columnar join (compiled slot programs over interned id arrays) ---------------

    def _columnar_plan(self, rule: Rule, delta_index: int) -> Optional[_ColumnarPlan]:
        plan_key = (rule.name, delta_index)
        if plan_key in self._columnar_plans:
            return self._columnar_plans[plan_key]
        plan = self._compile_columnar_plan(rule, delta_index)
        self._columnar_plans[plan_key] = plan
        return plan

    def _compile_columnar_plan(self, rule: Rule, delta_index: int) -> Optional[_ColumnarPlan]:
        """Compile the (rule, delta position) trigger into a slot program.

        Returns ``None`` when some non-delta body atom carries expression
        terms — those need per-candidate evaluation and keep the generic
        join.  The delta atom itself is always matched by ``match_atom``, so
        its terms are unconstrained.
        """
        positives = rule.positive_literals
        slot_of: Dict[str, int] = {}
        slot_names: List[str] = []

        def slot_for(name: str) -> int:
            slot = slot_of.get(name)
            if slot is None:
                slot = slot_of[name] = len(slot_names)
                slot_names.append(name)
            return slot

        for term in positives[delta_index].atom.terms:
            if isinstance(term, Variable) and term.name != "_":
                slot_for(term.name)
        delta_slots = tuple((name, slot_of[name]) for name in list(slot_names))

        delta_terms = positives[delta_index].atom.terms
        delta_ops: Optional[Tuple[Tuple[str, int, object], ...]] = None
        if all(isinstance(term, (Variable, Constant)) for term in delta_terms):
            seed_ops: List[Tuple[str, int, object]] = []
            seeded: Set[str] = set()
            for position, term in enumerate(delta_terms):
                if isinstance(term, Constant):
                    seed_ops.append(("check_const", position, term.value))
                elif term.name == "_":
                    continue
                elif term.name in seeded:
                    seed_ops.append(("check_slot", position, slot_of[term.name]))
                else:
                    seeded.add(term.name)
                    seed_ops.append(("bind", position, slot_of[term.name]))
            delta_ops = tuple(seed_ops)

        steps: List[_ColumnarStep] = []
        for position in range(len(positives)):
            if position == delta_index:
                continue
            atom = positives[position].atom
            if not all(isinstance(term, (Variable, Constant)) for term in atom.terms):
                return None
            key_items: List[Tuple[int, bool, object]] = []
            bind_ops: List[Tuple[int, int]] = []
            check_ops: List[Tuple[int, int]] = []
            step_new: Dict[str, int] = {}
            for attribute, term in enumerate(atom.terms):
                if isinstance(term, Constant):
                    key_items.append((attribute, False, term.value))
                elif term.name == "_":
                    continue
                elif term.name in step_new:
                    check_ops.append((attribute, step_new[term.name]))
                elif term.name in slot_of:
                    key_items.append((attribute, True, slot_of[term.name]))
                else:
                    slot = slot_for(term.name)
                    step_new[term.name] = slot
                    bind_ops.append((attribute, slot))
            steps.append(
                _ColumnarStep(
                    body_index=position,
                    relation=atom.relation,
                    arity=len(atom.terms),
                    key_positions=tuple(item[0] for item in key_items),
                    key_ops=tuple((item[1], item[2]) for item in key_items),
                    bind_ops=tuple(bind_ops),
                    check_ops=tuple(check_ops),
                    excluded=position < delta_index,
                )
            )
        post_ops = self._compile_post_ops(rule, slot_of, slot_for)
        head_build: Optional[Tuple[str, Tuple[Tuple[bool, object], ...]]] = None
        agg_group_ops: Optional[Tuple[Tuple[bool, object], ...]] = None
        agg_value_slot: Optional[int] = None
        if post_ops is not None:
            if rule.has_aggregate:
                aggregate = rule.aggregate
                group_items: List[Tuple[bool, object]] = []
                compiled = True
                for term in rule.head.terms:
                    if isinstance(term, Aggregate):
                        continue
                    if isinstance(term, Constant):
                        group_items.append((False, term.value))
                    elif isinstance(term, Variable) and term.name in slot_of:
                        group_items.append((True, slot_of[term.name]))
                    else:
                        compiled = False
                        break
                if compiled and aggregate is not None and aggregate.variable is not None:
                    if aggregate.variable in slot_of:
                        agg_value_slot = slot_of[aggregate.variable]
                    else:
                        compiled = False
                if compiled:
                    agg_group_ops = tuple(group_items)
            else:
                head_items: List[Tuple[bool, object]] = []
                compiled = True
                for term in rule.head.terms:
                    if isinstance(term, Constant):
                        head_items.append((False, term.value))
                    elif isinstance(term, Variable) and term.name in slot_of:
                        head_items.append((True, slot_of[term.name]))
                    else:
                        compiled = False
                        break
                if compiled:
                    head_build = (rule.head.relation, tuple(head_items))
            if head_build is None and agg_group_ops is None:
                post_ops = None
        return _ColumnarPlan(
            delta_index=delta_index,
            slot_names=tuple(slot_names),
            delta_slots=delta_slots,
            steps=tuple(steps),
            post_ops=post_ops,
            head_build=head_build,
            agg_group_ops=agg_group_ops,
            agg_value_slot=agg_value_slot,
            delta_ops=delta_ops,
            delta_arity=len(delta_terms),
        )

    def _compile_post_ops(
        self, rule: Rule, slot_of: Dict[str, int], slot_for
    ) -> Optional[Tuple[Tuple[str, Optional[int], object], ...]]:
        """Compile the rule's assignments and conditions into slot programs.

        Returns ``None`` when any body element falls outside the compilable
        core — a negative literal, a non-comparison condition (whose
        truthiness convention :func:`satisfies` owns), or an expression with
        function calls / unbound variables — in which case the join keeps
        the generic dict-based finalize.  Assignments allocate (or reuse)
        the target variable's slot, matching the reference semantics of
        overwriting an already-bound name.
        """
        if rule.negative_literals:
            return None
        ops: List[Tuple[str, Optional[int], object]] = []
        for element in rule.body:
            if isinstance(element, Assignment):
                fn = _compile_expr(element.expression, slot_of)
                if fn is None or element.variable in slot_of:
                    # Assigning over an already-bound name has per-path
                    # overwrite semantics the shared slot array cannot give
                    # (join steps would re-read the overwritten slot on the
                    # next candidate); those rules keep the dict finalize.
                    return None
                ops.append(("assign", slot_for(element.variable), fn))
            elif isinstance(element, Condition):
                expression = element.expression
                if not (
                    isinstance(expression, Expression) and expression.op in _COMPARISON
                ):
                    return None
                fn = _compile_expr(expression, slot_of)
                if fn is None:
                    return None
                ops.append(("cond", None, fn))
        return tuple(ops)

    def _columnar_join(
        self, rule: Rule, plan: _ColumnarPlan, fact: Fact, initial: Optional[Bindings]
    ) -> List[Tuple[Bindings, Tuple[Fact, ...]]]:
        """Enumerate complete bindings by walking the store's id arrays.

        Semantically identical to :meth:`_join_remaining` under the batch
        exclusion rule; enumeration order within one store partition is
        ascending intern id (the compared runtime observables are invariant
        to within-batch enumeration order).  Firing application never
        mutates the tuple store, so iterating the live arrays is safe.
        Returns a list rather than yielding — the recursion then runs in
        plain frames with no generator suspension per binding.

        *initial* is ``None`` when the plan carries a compiled delta seed
        (``delta_ops``): the trigger fact's values are then written straight
        into the slots, mirroring ``match_atom`` against the delta atom.
        """
        slot_names = plan.slot_names
        slots: List[object] = [None] * len(slot_names)
        if initial is None:
            values = fact.values
            if len(values) != plan.delta_arity:
                return []
            for kind, position, payload in plan.delta_ops:
                if kind == "bind":
                    slots[payload] = values[position]
                elif values[position] != (
                    slots[payload] if kind == "check_slot" else payload
                ):
                    return []
        else:
            for name, slot in plan.delta_slots:
                slots[slot] = initial[name]
        body: List[Optional[Fact]] = [None] * (len(plan.steps) + 1)
        body[plan.delta_index] = fact
        out: List[Tuple[object, Tuple[Fact, ...]]] = []
        store = self._store
        steps = plan.steps
        last = len(steps)
        finalize = self._finalize_into
        post_ops = plan.post_ops
        head_build = plan.head_build
        agg_group_ops = plan.agg_group_ops
        agg_value_slot = plan.agg_value_slot

        if post_ops is not None and last <= 1:
            # Fully-compiled plans with zero or one join step — the
            # overwhelming share of triggers in practice — run as flat loops:
            # no recursion closure is created and no Python call is made per
            # candidate.
            if last == 0:
                ok = True
                for kind, slot, fn in post_ops:
                    if kind == "assign":
                        slots[slot] = fn(slots)
                    elif not fn(slots):
                        ok = False
                        break
                if ok:
                    if head_build is not None:
                        relation, head_ops = head_build
                        head_values = []
                        for is_slot, item in head_ops:
                            head_values.append(slots[item] if is_slot else item)
                        payload: object = Fact(relation, tuple(head_values))
                    else:
                        group_values = []
                        for is_slot, item in agg_group_ops:
                            group_values.append(slots[item] if is_slot else item)
                        value = 1 if agg_value_slot is None else slots[agg_value_slot]
                        payload = (tuple(group_values), value)
                    out.append((payload, (fact,)))
                return out
            step = steps[0]
            key_items = []
            for is_slot, payload_item in step.key_ops:
                key_items.append(slots[payload_item] if is_slot else payload_item)
            arity = step.arity
            bind_ops = step.bind_ops
            check_ops = step.check_ops
            delta_first = plan.delta_index < step.body_index
            for facts_column, ids, delta_ids in store.probe_columns(
                step.relation, step.key_positions, tuple(key_items)
            ):
                skip = delta_ids if (step.excluded and delta_ids) else None
                for fid in ids:
                    if skip is not None and fid in skip:
                        continue
                    candidate = facts_column[fid]
                    values = candidate.values
                    if len(values) != arity:
                        continue
                    for attribute, slot in bind_ops:
                        slots[slot] = values[attribute]
                    ok = True
                    if check_ops:
                        for attribute, slot in check_ops:
                            if values[attribute] != slots[slot]:
                                ok = False
                                break
                    if ok:
                        for kind, slot, fn in post_ops:
                            if kind == "assign":
                                slots[slot] = fn(slots)
                            elif not fn(slots):
                                ok = False
                                break
                    if not ok:
                        continue
                    if head_build is not None:
                        relation, head_ops = head_build
                        head_values = []
                        for is_slot, item in head_ops:
                            head_values.append(slots[item] if is_slot else item)
                        payload: object = Fact(relation, tuple(head_values))
                    else:
                        group_values = []
                        for is_slot, item in agg_group_ops:
                            group_values.append(slots[item] if is_slot else item)
                        value = 1 if agg_value_slot is None else slots[agg_value_slot]
                        payload = (tuple(group_values), value)
                    out.append(
                        (payload, (fact, candidate) if delta_first else (candidate, fact))
                    )
            return out

        def walk(step_index: int) -> None:
            # Every tuple here is built from a plain list — no generator
            # expressions; this is the innermost loop of batch evaluation.
            if step_index == last:
                if post_ops is None:
                    # Uncompilable tail (negation, function calls, ...):
                    # materialise the bindings dict and run the reference
                    # finalize.
                    final = finalize(rule, dict(zip(slot_names, slots)))
                    if final is not None:
                        out.append((final, tuple(body)))
                    return
                for kind, slot, fn in post_ops:
                    if kind == "assign":
                        slots[slot] = fn(slots)
                    elif not fn(slots):
                        return
                if head_build is not None:
                    relation, head_ops = head_build
                    head_values = []
                    for is_slot, item in head_ops:
                        head_values.append(slots[item] if is_slot else item)
                    payload: object = Fact(relation, tuple(head_values))
                else:
                    group_values = []
                    for is_slot, item in agg_group_ops:
                        group_values.append(slots[item] if is_slot else item)
                    value = 1 if agg_value_slot is None else slots[agg_value_slot]
                    payload = (tuple(group_values), value)
                out.append((payload, tuple(body)))
                return
            step = steps[step_index]
            key_items = []
            for is_slot, payload_item in step.key_ops:
                key_items.append(slots[payload_item] if is_slot else payload_item)
            arity = step.arity
            bind_ops = step.bind_ops
            check_ops = step.check_ops
            body_index = step.body_index
            next_index = step_index + 1
            for facts_column, ids, delta_ids in store.probe_columns(
                step.relation, step.key_positions, tuple(key_items)
            ):
                skip = delta_ids if (step.excluded and delta_ids) else None
                for fid in ids:
                    if skip is not None and fid in skip:
                        continue
                    candidate = facts_column[fid]
                    values = candidate.values
                    if len(values) != arity:
                        continue
                    for attribute, slot in bind_ops:
                        slots[slot] = values[attribute]
                    if check_ops:
                        matched = True
                        for attribute, slot in check_ops:
                            if values[attribute] != slots[slot]:
                                matched = False
                                break
                        if not matched:
                            continue
                    body[body_index] = candidate
                    walk(next_index)

        walk(0)
        return out

    def _full_bindings(
        self, rule: Rule
    ) -> Iterator[Tuple[Bindings, Tuple[Fact, ...]]]:
        """Enumerate all complete bindings of *rule* against the current store."""
        positives = rule.positive_literals
        if not positives:
            return
        slots: List[Optional[Fact]] = [None] * len(positives)

        def recurse(index: int, bindings: Bindings) -> Iterator[Tuple[Bindings, Tuple[Fact, ...]]]:
            if index == len(positives):
                final = self._finalize_binding(rule, bindings)
                if final is not None:
                    yield final, tuple(slot for slot in slots if slot is not None)
                return
            literal = positives[index]
            bound = bound_positions(literal.atom, bindings)
            for candidate in list(self._store.matching(literal.atom.relation, bound)):
                extended = match_atom(literal.atom, candidate, bindings, self._registry)
                if extended is None:
                    continue
                slots[index] = candidate
                yield from recurse(index + 1, extended)
                slots[index] = None

        yield from recurse(0, {})

    def _finalize_binding(self, rule: Rule, bindings: Bindings) -> Optional[Bindings]:
        """Apply assignments, check conditions and negative literals.

        Returns the extended bindings when the rule body is fully satisfied,
        or ``None`` otherwise.
        """
        return self._finalize_into(rule, dict(bindings))

    def _finalize_into(self, rule: Rule, extended: Bindings) -> Optional[Bindings]:
        """:meth:`_finalize_binding` over a caller-owned dict (no copy).

        The columnar join builds a fresh bindings dict per complete path, so
        it finalizes in place; the generic join shares its dict across
        candidates and goes through the copying wrapper.
        """
        for element in rule.body:
            if isinstance(element, Assignment):
                extended[element.variable] = evaluate_term(
                    element.expression, extended, self._registry
                )
            elif isinstance(element, Condition):
                if not satisfies(element, extended, self._registry):
                    return None
        for literal in rule.negative_literals:
            if self._negated_literal_matches(literal, extended):
                return None
        return extended

    def _negated_literal_matches(self, literal: Literal, bindings: Bindings) -> bool:
        bound = bound_positions(literal.atom, bindings)
        for candidate in self._store.matching(literal.atom.relation, bound):
            if match_atom(literal.atom, candidate, bindings, self._registry) is not None:
                return True
        return False

    # -- negation maintenance ------------------------------------------------------------

    def _retract_blocked_firings(self, rule: Rule, fact: Fact) -> List[DerivationEffect]:
        """Retract firings of *rule* whose negative literal now matches *fact*."""
        effects: List[DerivationEffect] = []
        negated_on_relation = [
            literal for literal in rule.negative_literals if literal.atom.relation == fact.relation
        ]
        if not negated_on_relation:
            return effects
        for bindings, body_facts in self._positive_bindings_matching_negation(rule, fact):
            key = (rule.name, body_facts)
            firing_id = self._firing_by_body.get(key)
            if firing_id is None:
                continue
            record = self._firings.get(firing_id)
            if record is not None:
                effects.append(self._retract_firing(record))
        return effects

    def _enable_unblocked_firings(self, rule: Rule, fact: Fact) -> List[DerivationEffect]:
        """Fire *rule* for bindings whose only blocker was the now-deleted *fact*."""
        effects: List[DerivationEffect] = []
        for bindings, body_facts in self._positive_bindings_matching_negation(rule, fact):
            final = self._finalize_binding(rule, bindings)
            if final is None:
                continue
            effects.extend(self._apply_firing(rule, final, body_facts))
        return effects

    def _positive_bindings_matching_negation(
        self, rule: Rule, fact: Fact
    ) -> Iterator[Tuple[Bindings, Tuple[Fact, ...]]]:
        """Bindings of the positive body for which a negative literal unifies with *fact*.

        Assignments are applied and conditions checked, but the negative
        literals themselves are NOT checked here (callers decide whether they
        are looking for blocked or unblocked bindings).
        """
        positives = rule.positive_literals
        slots: List[Optional[Fact]] = [None] * len(positives)
        negated = [
            literal for literal in rule.negative_literals if literal.atom.relation == fact.relation
        ]

        def recurse(index: int, bindings: Bindings) -> Iterator[Tuple[Bindings, Tuple[Fact, ...]]]:
            if index == len(positives):
                extended = dict(bindings)
                try:
                    for element in rule.body:
                        if isinstance(element, Assignment):
                            extended[element.variable] = evaluate_term(
                                element.expression, extended, self._registry
                            )
                        elif isinstance(element, Condition):
                            if not satisfies(element, extended, self._registry):
                                return
                except EngineError:
                    return
                for literal in negated:
                    if match_atom(literal.atom, fact, extended, self._registry) is not None:
                        yield extended, tuple(slot for slot in slots if slot is not None)
                        return
                return
            literal = positives[index]
            bound = bound_positions(literal.atom, bindings)
            for candidate in list(self._store.matching(literal.atom.relation, bound)):
                extended = match_atom(literal.atom, candidate, bindings, self._registry)
                if extended is None:
                    continue
                slots[index] = candidate
                yield from recurse(index + 1, extended)
                slots[index] = None

        yield from recurse(0, {})

    # -- aggregates -----------------------------------------------------------------------

    def _agg_add_entry(
        self, rule: Rule, bindings: Bindings, body_facts: Tuple[Fact, ...]
    ) -> List[DerivationEffect]:
        aggregate = rule.aggregate
        assert aggregate is not None
        group_key = group_key_of(rule.head, bindings, self._registry)
        if aggregate.variable is None:
            value: object = 1
        else:
            if aggregate.variable not in bindings:
                raise EngineError(
                    f"aggregate variable {aggregate.variable!r} is unbound in rule {rule.name!r}"
                )
            value = bindings[aggregate.variable]
        return self._agg_add_entry_direct(rule, group_key, value, body_facts)

    def _agg_add_entry_direct(
        self,
        rule: Rule,
        group_key: Tuple[object, ...],
        value: object,
        body_facts: Tuple[Fact, ...],
    ) -> List[DerivationEffect]:
        groups = self._agg_entries.setdefault(rule.name, {})
        entries = groups.setdefault(group_key, {})
        if body_facts in entries:
            return []
        entries[body_facts] = _AggEntry(value=value, body_facts=body_facts)
        # The membership's repr sort key is computed once here; every later
        # deletion-time ordering of the memberships is then repr-free.  The
        # key reprs the (rule, group, body) triple, matching the historical
        # ``sorted(..., key=repr)`` order exactly.  Columnar stores hand the
        # evaluator canonical fact instances, so the key is memoized across
        # re-derivations of the same membership (churn that toggles a link
        # re-adds the same bodies every round); the dict reference path
        # recomputes it each time.
        identity = (rule.name, group_key, body_facts)
        if self._columnar_store:
            cached = self._membership_reprs.get(identity)
            if cached is None:
                cached = self._membership_reprs[identity] = (
                    (repr(identity), rule.name, group_key, body_facts),
                    tuple(set(body_facts)),
                )
            membership, distinct_facts = cached
        else:
            membership = (repr(identity), rule.name, group_key, body_facts)
            distinct_facts = tuple(set(body_facts))
        fact_agg_entries = self._fact_agg_entries
        for fact in distinct_facts:
            memberships = fact_agg_entries.get(fact)
            if memberships is None:
                fact_agg_entries[fact] = {membership}
            else:
                memberships.add(membership)
        if self._dirty_agg_groups is not None:
            self._dirty_agg_groups.add(self._dirty_group_key(rule.name, group_key))
            return []
        return self._agg_recompute(rule, group_key)

    def _dirty_group_key(self, rule_name: str, group_key: Tuple) -> Tuple[str, str, Tuple]:
        """The (repr sort key, rule, group) dirty-set entry, repr memoized per group."""
        group = (rule_name, group_key)
        sort_key = self._group_sort_keys.get(group)
        if sort_key is None:
            sort_key = self._group_sort_keys[group] = repr(group)
        return (sort_key, rule_name, group_key)

    def _agg_remove_entry(
        self, membership: Tuple[str, str, Tuple, Tuple[Fact, ...]]
    ) -> List[DerivationEffect]:
        _, rule_name, group_key, body_facts = membership
        rule = self._agg_rules.get(rule_name)
        if rule is None:
            return []
        groups = self._agg_entries.get(rule_name, {})
        entries = groups.get(group_key)
        if not entries or body_facts not in entries:
            return []
        del entries[body_facts]
        # As in _retract_firing, iterating duplicate body facts is safe:
        # discard is idempotent and emptied buckets are gone on re-lookup.
        for fact in body_facts:
            memberships = self._fact_agg_entries.get(fact)
            if memberships is not None:
                memberships.discard(membership)
                if not memberships:
                    del self._fact_agg_entries[fact]
        if not entries:
            del groups[group_key]
        if self._dirty_agg_groups is not None:
            self._dirty_agg_groups.add(self._dirty_group_key(rule_name, group_key))
            return []
        return self._agg_recompute(rule, group_key)

    def _agg_recompute(self, rule: Rule, group_key: Tuple) -> List[DerivationEffect]:
        aggregate = rule.aggregate
        assert aggregate is not None
        groups = self._agg_entries.get(rule.name)
        entries = groups.get(group_key) if groups else None
        head_key = (rule.name, group_key)
        current = self._agg_heads.get(head_key)

        effects: List[DerivationEffect] = []
        if not entries:
            if current is not None:
                effects.append(self._retract_agg_head(rule, head_key, current))
            return effects

        values = [entry.value for entry in entries.values()]
        new_value = _aggregate_value(aggregate.func, values)
        if self._columnar_store:
            contributing = self._contributing_facts_cached(
                aggregate.func, entries, new_value
            )
            # The head is a pure function of (rule, group key, value), so an
            # unchanged value plus an unchanged contributing set means the
            # recomputed head would equal the current one — skip rebuilding it.
            if (
                current is not None
                and current.value == new_value
                and current.body_facts == contributing
            ):
                return effects
        else:
            contributing = _contributing_facts(aggregate.func, entries, new_value)
        head_fact = _agg_head_fact(rule, group_key, new_value)

        previous = None
        if current is not None:
            if current.head_fact == head_fact and current.body_facts == contributing:
                return effects
            previous = current
            if self.aggregate_retract_first:
                # Ablation mode: propagate the retraction first (the naive
                # ordering), exposing the intermediate group state downstream.
                effects.append(self._retract_agg_head(rule, head_key, previous))
                previous = None

        head_location = self._compiled.catalog.location_of(head_fact)
        firing_id = self._next_firing_id()
        record = _AggHead(
            firing_id=firing_id,
            head_fact=head_fact,
            head_location=head_location,
            body_facts=contributing,
            value=new_value,
        )
        self._agg_heads[head_key] = record
        effects.append(
            DerivationEffect(
                sign=+1,
                firing_id=firing_id,
                rule_name=rule.name,
                program_name=self._compiled.name,
                head_fact=head_fact,
                head_location=head_location,
                body_facts=contributing,
            )
        )
        if previous is not None:
            # Emit the replacement *before* the retraction: downstream nodes
            # then see "new value arrives, old value leaves", which changes
            # their own aggregates exactly once.  The opposite order would
            # expose an intermediate state (group without either value) whose
            # consequences would be derived, shipped, and immediately undone —
            # a cascade that blows up deletion processing on cyclic topologies.
            effects.append(self._make_agg_retraction(rule, previous))
        return effects

    def _contributing_facts_cached(
        self,
        func: str,
        entries: Dict[Tuple[Fact, ...], _AggEntry],
        value: object,
    ) -> Tuple[Fact, ...]:
        """:func:`_contributing_facts` with the per-fact repr sort keys memoized.

        Columnar stores hand the evaluator canonical fact instances, so the
        memo dict hits on identity and each fact's repr is rendered at most
        once per evaluator lifetime.  The ordering is byte-identical to the
        reference path's ``sorted(..., key=repr)``.
        """
        contributing: Set[Fact] = set()
        minmax = func in ("min", "max")
        for entry in entries.values():
            if minmax and entry.value != value:
                continue
            contributing.update(entry.body_facts)
        reprs = self._fact_reprs
        keyed = []
        for fact in contributing:
            sort_key = reprs.get(fact)
            if sort_key is None:
                sort_key = reprs[fact] = repr(fact)
            keyed.append((sort_key, fact))
        keyed.sort()
        return tuple([fact for _, fact in keyed])

    def _retract_agg_head(
        self, rule: Rule, head_key: Tuple[str, Tuple], record: _AggHead
    ) -> DerivationEffect:
        self._agg_heads.pop(head_key, None)
        return self._make_agg_retraction(rule, record)

    def _make_agg_retraction(self, rule: Rule, record: _AggHead) -> DerivationEffect:
        return DerivationEffect(
            sign=-1,
            firing_id=record.firing_id,
            rule_name=rule.name,
            program_name=self._compiled.name,
            head_fact=record.head_fact,
            head_location=record.head_location,
            body_facts=record.body_facts,
        )


# ---------------------------------------------------------------------------
# Aggregate helpers
# ---------------------------------------------------------------------------


def _aggregate_value(func: str, values: List[object]) -> object:
    if func == "min":
        return min(values)  # type: ignore[type-var]
    if func == "max":
        return max(values)  # type: ignore[type-var]
    if func == "count":
        return len(values)
    if func == "sum":
        return sum(values)  # type: ignore[arg-type]
    if func == "avg":
        return sum(values) / len(values)  # type: ignore[arg-type]
    raise EngineError(f"unsupported aggregate function {func!r}")


def _contributing_facts(
    func: str, entries: Dict[Tuple[Fact, ...], _AggEntry], value: object
) -> Tuple[Fact, ...]:
    """The body facts that justify the aggregate value (provenance children).

    The result is sorted so that the rule-execution identifier derived from it
    is independent of the order in which the group's entries were discovered
    (incremental and from-scratch runs must produce identical provenance).
    """
    contributing: Set[Fact] = set()
    for entry in entries.values():
        if func in ("min", "max") and entry.value != value:
            continue
        contributing.update(entry.body_facts)
    return tuple(sorted(contributing, key=repr))


def _agg_head_fact(rule: Rule, group_key: Tuple, value: object) -> Fact:
    values: List[object] = []
    key_iter = iter(group_key)
    for term in rule.head.terms:
        if isinstance(term, Aggregate):
            values.append(value)
        else:
            values.append(next(key_iter))
    return Fact.make(rule.head.relation, values)
