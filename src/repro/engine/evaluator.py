"""Per-node incremental NDlog evaluator.

The :class:`LocalEvaluator` maintains, for one node, the consequences of the
compiled program over the node's local tuple store.  It is *purely local*:
it never touches the network.  Given a fact that has just appeared in (or
disappeared from) the local store, it computes the set of rule firings and
retractions this causes — the :class:`DerivationEffect` objects — and leaves
it to the :class:`repro.engine.node.Node` to apply local effects and to ship
remote ones as messages.

The evaluator implements:

* semi-naive (delta) evaluation, either one update at a time
  (:meth:`LocalEvaluator.on_fact_inserted` / ``on_fact_deleted``) or — the
  batch-first hot path — over a whole set of deltas at once
  (:meth:`LocalEvaluator.on_batch`), which groups same-relation deltas,
  runs one semi-naive join pass per (rule, delta position) over the whole
  delta set and defers aggregate recomputation so each touched group is
  recomputed exactly once per batch,
* derivation tracking (one firing record per distinct rule firing), which
  both drives incremental deletion and feeds the provenance engine,
* aggregates (``min``/``max``/``count``/``sum``/``avg``) maintained per
  group with correct retract-and-replace behaviour when the aggregate value
  changes, and
* stratum-free negation: firings are retracted when a fact matching one of
  their negative literals appears, and re-derived when it disappears.

Deletion semantics: incremental deletion uses derivation counting — a derived
fact disappears when its last recorded derivation is retracted.  This is
exact for programs whose derivations cannot cyclically support each other
(every protocol shipped in :mod:`repro.protocols` has this property: costs
strictly increase along MINCOST/distance-vector derivations and paths
strictly extend in path-vector/DSR).  For programs with genuinely cyclic
support — e.g. plain symmetric transitive closure — counting can retain
tuples whose only remaining support is a derivation cycle, the classic
limitation that DRed-style maintenance addresses; see DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import EngineError
from repro.ndlog.ast import Aggregate, Assignment, Condition, Constant, Literal, Rule, Variable
from repro.engine.compiler import CompiledProgram
from repro.engine.dataflow import (
    Bindings,
    bound_positions,
    evaluate_term,
    group_key_of,
    instantiate_head,
    match_atom,
    satisfies,
)
from repro.engine.store import SerialShardExecutor, ShardExecutor, TupleStore
from repro.engine.tuples import Fact


@dataclass(frozen=True)
class DerivationEffect:
    """One rule firing (+1) or retraction (-1) produced by the evaluator.

    ``firing_id`` identifies the derivation; the node that stores the head
    fact uses it as the derivation id in its store, and the provenance engine
    uses it to connect the rule-execution vertex with the derived tuple
    vertex.
    """

    sign: int
    firing_id: str
    rule_name: str
    program_name: str
    head_fact: Fact
    head_location: object
    body_facts: Tuple[Fact, ...]

    def __str__(self) -> str:
        symbol = "+" if self.sign > 0 else "-"
        return f"{symbol}{self.head_fact} via {self.rule_name} [{self.firing_id}]"


@dataclass
class _FiringRecord:
    firing_id: str
    rule_name: str
    head_fact: Fact
    head_location: object
    body_facts: Tuple[Fact, ...]


@dataclass
class _AggEntry:
    value: object
    body_facts: Tuple[Fact, ...]


@dataclass
class _AggHead:
    firing_id: str
    head_fact: Fact
    head_location: object
    body_facts: Tuple[Fact, ...]


class LocalEvaluator:
    """Incremental evaluation of a compiled program over one node's store."""

    def __init__(
        self,
        compiled: CompiledProgram,
        store: TupleStore,
        node_id: object,
        aggregate_retract_first: bool = False,
        shard_executor: Optional[ShardExecutor] = None,
    ):
        self._compiled = compiled
        self._store = store
        self._node = node_id
        self._registry = compiled.registry
        self._firing_seq = 0
        #: Executor for the per-shard join passes of :meth:`on_batch`; only
        #: consulted when the store is sharded (``store.num_shards > 1``).
        self._shard_executor: ShardExecutor = (
            shard_executor if shard_executor is not None else SerialShardExecutor()
        )
        #: Ablation switch (see DESIGN.md §5): when True, aggregate changes are
        #: propagated as retract-then-insert instead of the default
        #: insert-then-retract ordering.  Only benchmarks should enable it.
        self.aggregate_retract_first = aggregate_retract_first

        self._firings: Dict[str, _FiringRecord] = {}
        self._firing_by_body: Dict[Tuple[str, Tuple[Fact, ...]], str] = {}
        self._fact_firings: Dict[Fact, Set[str]] = {}

        # Aggregate state: rule name -> group key -> {body_facts -> entry}
        self._agg_entries: Dict[str, Dict[Tuple, Dict[Tuple[Fact, ...], _AggEntry]]] = {}
        self._agg_heads: Dict[Tuple[str, Tuple], _AggHead] = {}
        self._fact_agg_entries: Dict[Fact, Set[Tuple[str, Tuple, Tuple[Fact, ...]]]] = {}
        self._agg_rules: Dict[str, Rule] = {
            rule.name: rule for rule in compiled.rules if rule.has_aggregate
        }
        # When not None, the evaluator is inside an on_batch call: aggregate
        # recomputation is deferred and touched (rule, group) pairs accumulate
        # here so each group is recomputed exactly once per batch.
        self._dirty_agg_groups: Optional[Set[Tuple[str, Tuple]]] = None
        # (rule name, delta position) -> the (relation, index positions) each
        # non-delta literal will probe during the join, computed statically.
        self._prewarm_plans: Dict[Tuple[str, int], List[Tuple[str, Tuple[int, ...]]]] = {}

    # -- public statistics -------------------------------------------------------

    @property
    def firing_count(self) -> int:
        """Number of currently-live rule firings recorded at this node."""
        return len(self._firings) + len(self._agg_heads)

    # -- entry points --------------------------------------------------------------

    def on_fact_inserted(self, fact: Fact) -> List[DerivationEffect]:
        """React to *fact* having just become present in the local store."""
        effects: List[DerivationEffect] = []
        for rule, delta_index in self._compiled.delta_index.get(fact.relation, []):
            for bindings, body_facts in self._delta_bindings(rule, delta_index, fact):
                effects.extend(self._apply_firing(rule, bindings, body_facts))
        for rule in self._compiled.negation_index.get(fact.relation, []):
            effects.extend(self._retract_blocked_firings(rule, fact))
        return effects

    def on_fact_deleted(self, fact: Fact) -> List[DerivationEffect]:
        """React to *fact* having just disappeared from the local store."""
        effects: List[DerivationEffect] = []

        # Retraction of ordinary firings that used the fact positively.
        for firing_id in sorted(self._fact_firings.pop(fact, set())):
            record = self._firings.get(firing_id)
            if record is None:
                continue
            effects.append(self._retract_firing(record))

        # Removal of aggregate entries that used the fact.
        for rule_name, group_key, body_facts in sorted(
            self._fact_agg_entries.pop(fact, set()), key=repr
        ):
            effects.extend(self._agg_remove_entry(rule_name, group_key, body_facts))

        # Firings newly enabled because a negative literal stopped matching.
        for rule in self._compiled.negation_index.get(fact.relation, []):
            effects.extend(self._enable_unblocked_firings(rule, fact))
        return effects

    def on_batch(
        self, inserts: Sequence[Fact], deletes: Sequence[Fact]
    ) -> List[DerivationEffect]:
        """React to a whole batch of store changes at once (the hot path).

        *inserts* are facts that newly became present and *deletes* facts that
        disappeared since the last evaluator call; the local store must
        already reflect the entire batch, and the two sequences must be
        disjoint (callers collapse flickering facts to their net transition).

        The batch pass is equivalent to replaying the deltas one at a time —
        incremental maintenance is confluent, so the final store and
        provenance state are identical — but does strictly less work:

        * same-relation deltas are grouped and each (rule, delta position)
          trigger runs one semi-naive join pass over the whole delta set,
          with the classic batch exclusion rule (body positions *before* the
          delta position skip every delta fact of that relation, so each new
          binding is found exactly once);
        * aggregate recomputation is deferred: each touched (rule, group)
          pair is recomputed once at the end of the batch, so a group hit by
          many deltas emits one consolidated retract/insert pair instead of
          an intermediate effect per delta;
        * the secondary-index lookups in :meth:`TupleStore.matching` are
          amortised over the whole delta set instead of being interleaved
          with per-fact bookkeeping.
        """
        if self._dirty_agg_groups is not None:
            raise EngineError("on_batch is not re-entrant")
        effects: List[DerivationEffect] = []
        self._dirty_agg_groups = set()
        try:
            # Phase 1 — deletions: retract firings and aggregate entries that
            # used a deleted fact (pure bookkeeping, driven by the reverse
            # indexes, no store scans).
            for fact in deletes:
                for firing_id in sorted(self._fact_firings.pop(fact, set())):
                    record = self._firings.get(firing_id)
                    if record is None:
                        continue
                    effects.append(self._retract_firing(record))
                for rule_name, group_key, body_facts in sorted(
                    self._fact_agg_entries.pop(fact, set()), key=repr
                ):
                    effects.extend(self._agg_remove_entry(rule_name, group_key, body_facts))
            # Firings newly enabled because a negative literal stopped
            # matching; runs after all retractions so the store and firing
            # tables are settled.
            for fact in deletes:
                for rule in self._compiled.negation_index.get(fact.relation, []):
                    effects.extend(self._enable_unblocked_firings(rule, fact))

            # Phase 2 — insertions: one batch semi-naive pass per trigger.
            # On a sharded store the join passes run per shard (possibly on a
            # thread pool) and their firings are merged in shard order.
            by_relation: Dict[str, List[Fact]] = {}
            for fact in inserts:
                by_relation.setdefault(fact.relation, []).append(fact)
            exclusions: Dict[str, Set[Fact]] = {
                relation: set(facts) for relation, facts in by_relation.items()
            }
            if getattr(self._store, "num_shards", 1) > 1 and inserts:
                effects.extend(self._sharded_insert_pass(inserts, by_relation, exclusions))
            else:
                for relation, delta_facts in by_relation.items():
                    for rule, delta_index in self._compiled.delta_index.get(relation, []):
                        self._prewarm_join_indexes(rule, delta_index)
                        for fact in delta_facts:
                            for bindings, body_facts in self._delta_bindings(
                                rule, delta_index, fact, exclusions
                            ):
                                effects.extend(self._apply_firing(rule, bindings, body_facts))
            for relation, delta_facts in by_relation.items():
                for rule in self._compiled.negation_index.get(relation, []):
                    for fact in delta_facts:
                        effects.extend(self._retract_blocked_firings(rule, fact))

            # Phase 3 — flush deferred aggregates: one recomputation per
            # touched group, in a deterministic order.
            dirty = sorted(self._dirty_agg_groups, key=repr)
            self._dirty_agg_groups = None
            for rule_name, group_key in dirty:
                rule = self._agg_rules.get(rule_name)
                if rule is not None:
                    effects.extend(self._agg_recompute(rule, group_key))
        finally:
            self._dirty_agg_groups = None
        return effects

    def recompute_effects_for_existing(self, fact: Fact) -> List[DerivationEffect]:
        """Alias of :meth:`on_fact_inserted`, used when replaying a store."""
        return self.on_fact_inserted(fact)

    def _sharded_insert_pass(
        self,
        inserts: Sequence[Fact],
        by_relation: Dict[str, List[Fact]],
        exclusions: Dict[str, Set[Fact]],
    ) -> List[DerivationEffect]:
        """Run the batch semi-naive insert pass per shard, merging deterministically.

        Applying a firing never changes the tuple store (only evaluator
        bookkeeping), so the set of complete bindings triggered by a batch is
        independent of the order firings are recorded in — which is what
        allows the pass to be split into a read-only *enumeration* stage and
        a serial *apply* stage:

        1. every secondary index any trigger will probe is built up front
           (index construction is the one store mutation joins would
           otherwise race on);
        2. each shard's share of the delta facts is joined against the whole
           (cross-shard) store concurrently via the shard executor — the
           enumeration only reads the store, the compiled program and the
           shared exclusion sets;
        3. the discovered bindings are turned into firings serially, shard by
           shard in shard-index order, so firing ids, duplicate suppression
           and deferred aggregate bookkeeping behave exactly as in a serial
           pass over the same delta order.
        """
        for relation in by_relation:
            for rule, delta_index in self._compiled.delta_index.get(relation, []):
                self._prewarm_join_indexes(rule, delta_index)

        num_shards = self._store.num_shards
        shard_deltas: List[List[Fact]] = [[] for _ in range(num_shards)]
        for fact in inserts:
            shard_deltas[self._store.shard_index(fact)].append(fact)

        def enumerate_shard(delta_facts: List[Fact]):
            found = []
            local_by_relation: Dict[str, List[Fact]] = {}
            for fact in delta_facts:
                local_by_relation.setdefault(fact.relation, []).append(fact)
            for relation, facts in local_by_relation.items():
                for rule, delta_index in self._compiled.delta_index.get(relation, []):
                    for fact in facts:
                        for bindings, body_facts in self._delta_bindings(
                            rule, delta_index, fact, exclusions
                        ):
                            found.append((rule, bindings, body_facts))
            return found

        effects: List[DerivationEffect] = []
        jobs = [delta_facts for delta_facts in shard_deltas if delta_facts]
        for found in self._shard_executor.map(enumerate_shard, jobs):
            for rule, bindings, body_facts in found:
                effects.extend(self._apply_firing(rule, bindings, body_facts))
        return effects

    # -- firing management ----------------------------------------------------------

    def _next_firing_id(self) -> str:
        self._firing_seq += 1
        return f"{self._node}#{self._firing_seq}"

    def _apply_firing(
        self, rule: Rule, bindings: Bindings, body_facts: Tuple[Fact, ...]
    ) -> List[DerivationEffect]:
        if rule.has_aggregate:
            return self._agg_add_entry(rule, bindings, body_facts)

        key = (rule.name, body_facts)
        if key in self._firing_by_body:
            # The same combination of body facts can be rediscovered when a
            # fact is re-inserted concurrently with unprocessed retractions;
            # a firing must not be duplicated.
            return []

        head_fact = instantiate_head(rule.head, bindings, self._registry)
        head_location = self._compiled.catalog.location_of(head_fact)
        firing_id = self._next_firing_id()
        record = _FiringRecord(firing_id, rule.name, head_fact, head_location, body_facts)
        self._firings[firing_id] = record
        self._firing_by_body[key] = firing_id
        for fact in set(body_facts):
            self._fact_firings.setdefault(fact, set()).add(firing_id)
        return [
            DerivationEffect(
                sign=+1,
                firing_id=firing_id,
                rule_name=rule.name,
                program_name=self._compiled.name,
                head_fact=head_fact,
                head_location=head_location,
                body_facts=body_facts,
            )
        ]

    def _retract_firing(self, record: _FiringRecord) -> DerivationEffect:
        self._firings.pop(record.firing_id, None)
        self._firing_by_body.pop((record.rule_name, record.body_facts), None)
        for fact in set(record.body_facts):
            firings = self._fact_firings.get(fact)
            if firings is not None:
                firings.discard(record.firing_id)
                if not firings:
                    del self._fact_firings[fact]
        return DerivationEffect(
            sign=-1,
            firing_id=record.firing_id,
            rule_name=record.rule_name,
            program_name=self._compiled.name,
            head_fact=record.head_fact,
            head_location=record.head_location,
            body_facts=record.body_facts,
        )

    # -- join enumeration --------------------------------------------------------------

    def _prewarm_join_indexes(self, rule: Rule, delta_index: int) -> None:
        """Build the secondary indexes the (rule, delta position) join will probe.

        The set of bound attribute positions at each join step is static: a
        position is bound iff its term is a constant or a variable introduced
        by the delta literal or an earlier-joined literal.  Computing the plan
        once and pre-building the indexes up front means a batch pays index
        construction once per (relation, positions) pair instead of lazily
        inside the first :meth:`TupleStore.matching` scan of every join.

        The plan also covers the rule's *negative* literals (probed by
        :meth:`_finalize_binding` with every positive-join and assignment
        variable bound), which keeps the whole join enumeration free of index
        construction — the property the sharded batch pass relies on to run
        enumeration concurrently over a store it only reads.
        """
        plan_key = (rule.name, delta_index)
        plan = self._prewarm_plans.get(plan_key)
        if plan is None:
            plan = []
            positives = rule.positive_literals

            def atom_variables(atom) -> Set[str]:
                return {term.name for term in atom.terms if isinstance(term, Variable)}

            def bound_index_positions(atom, bound_vars: Set[str]) -> Tuple[int, ...]:
                return tuple(
                    sorted(
                        index
                        for index, term in enumerate(atom.terms)
                        if isinstance(term, Constant)
                        or (isinstance(term, Variable) and term.name in bound_vars)
                    )
                )

            bound_vars = atom_variables(positives[delta_index].atom)
            for position in range(len(positives)):
                if position == delta_index:
                    continue
                atom = positives[position].atom
                plan.append((atom.relation, bound_index_positions(atom, bound_vars)))
                bound_vars |= atom_variables(atom)
            for element in rule.body:
                if isinstance(element, Assignment):
                    bound_vars.add(element.variable)
            for literal in rule.negative_literals:
                atom = literal.atom
                plan.append((atom.relation, bound_index_positions(atom, bound_vars)))
            self._prewarm_plans[plan_key] = plan
        for relation, positions in plan:
            self._store.prepare_index(relation, positions)

    def _delta_bindings(
        self,
        rule: Rule,
        delta_index: int,
        fact: Fact,
        exclusions: Optional[Dict[str, Set[Fact]]] = None,
    ) -> Iterator[Tuple[Bindings, Tuple[Fact, ...]]]:
        """Enumerate complete rule bindings in which *fact* plays body position *delta_index*.

        *exclusions* maps relation names to the delta facts of the current
        batch; body positions before *delta_index* skip those facts (batch
        semi-naive de-duplication).  When omitted, the singleton batch
        ``{fact}`` is assumed, which is the classic per-fact rule.
        """
        positives = rule.positive_literals
        delta_literal = positives[delta_index]
        initial = match_atom(delta_literal.atom, fact, {}, self._registry)
        if initial is None:
            return

        slots: List[Optional[Fact]] = [None] * len(positives)
        slots[delta_index] = fact
        if exclusions is None:
            exclusions = {fact.relation: {fact}}

        remaining = [index for index in range(len(positives)) if index != delta_index]
        yield from self._join_remaining(
            rule, positives, remaining, 0, initial, slots, exclusions, delta_index
        )

    def _join_remaining(
        self,
        rule: Rule,
        positives: Sequence[Literal],
        remaining: List[int],
        cursor: int,
        bindings: Bindings,
        slots: List[Optional[Fact]],
        exclusions: Dict[str, Set[Fact]],
        delta_index: int,
    ) -> Iterator[Tuple[Bindings, Tuple[Fact, ...]]]:
        if cursor == len(remaining):
            final = self._finalize_binding(rule, bindings)
            if final is not None:
                body_facts = tuple(slot for slot in slots if slot is not None)
                yield final, body_facts
            return

        position = remaining[cursor]
        literal = positives[position]
        bound = bound_positions(literal.atom, bindings)
        excluded = exclusions.get(literal.atom.relation) if position < delta_index else None
        for candidate in list(self._store.matching(literal.atom.relation, bound)):
            # Semi-naive de-duplication: positions *before* the delta position
            # must not use any delta fact of the current batch, otherwise each
            # binding using several delta facts would be produced once per
            # delta occurrence instead of exactly once (for the first one).
            if excluded is not None and candidate in excluded:
                continue
            extended = match_atom(literal.atom, candidate, bindings, self._registry)
            if extended is None:
                continue
            slots[position] = candidate
            yield from self._join_remaining(
                rule, positives, remaining, cursor + 1, extended, slots, exclusions, delta_index
            )
            slots[position] = None

    def _full_bindings(
        self, rule: Rule
    ) -> Iterator[Tuple[Bindings, Tuple[Fact, ...]]]:
        """Enumerate all complete bindings of *rule* against the current store."""
        positives = rule.positive_literals
        if not positives:
            return
        slots: List[Optional[Fact]] = [None] * len(positives)

        def recurse(index: int, bindings: Bindings) -> Iterator[Tuple[Bindings, Tuple[Fact, ...]]]:
            if index == len(positives):
                final = self._finalize_binding(rule, bindings)
                if final is not None:
                    yield final, tuple(slot for slot in slots if slot is not None)
                return
            literal = positives[index]
            bound = bound_positions(literal.atom, bindings)
            for candidate in list(self._store.matching(literal.atom.relation, bound)):
                extended = match_atom(literal.atom, candidate, bindings, self._registry)
                if extended is None:
                    continue
                slots[index] = candidate
                yield from recurse(index + 1, extended)
                slots[index] = None

        yield from recurse(0, {})

    def _finalize_binding(self, rule: Rule, bindings: Bindings) -> Optional[Bindings]:
        """Apply assignments, check conditions and negative literals.

        Returns the extended bindings when the rule body is fully satisfied,
        or ``None`` otherwise.
        """
        extended = dict(bindings)
        for element in rule.body:
            if isinstance(element, Assignment):
                extended[element.variable] = evaluate_term(
                    element.expression, extended, self._registry
                )
            elif isinstance(element, Condition):
                if not satisfies(element, extended, self._registry):
                    return None
        for literal in rule.negative_literals:
            if self._negated_literal_matches(literal, extended):
                return None
        return extended

    def _negated_literal_matches(self, literal: Literal, bindings: Bindings) -> bool:
        bound = bound_positions(literal.atom, bindings)
        for candidate in self._store.matching(literal.atom.relation, bound):
            if match_atom(literal.atom, candidate, bindings, self._registry) is not None:
                return True
        return False

    # -- negation maintenance ------------------------------------------------------------

    def _retract_blocked_firings(self, rule: Rule, fact: Fact) -> List[DerivationEffect]:
        """Retract firings of *rule* whose negative literal now matches *fact*."""
        effects: List[DerivationEffect] = []
        negated_on_relation = [
            literal for literal in rule.negative_literals if literal.atom.relation == fact.relation
        ]
        if not negated_on_relation:
            return effects
        for bindings, body_facts in self._positive_bindings_matching_negation(rule, fact):
            key = (rule.name, body_facts)
            firing_id = self._firing_by_body.get(key)
            if firing_id is None:
                continue
            record = self._firings.get(firing_id)
            if record is not None:
                effects.append(self._retract_firing(record))
        return effects

    def _enable_unblocked_firings(self, rule: Rule, fact: Fact) -> List[DerivationEffect]:
        """Fire *rule* for bindings whose only blocker was the now-deleted *fact*."""
        effects: List[DerivationEffect] = []
        for bindings, body_facts in self._positive_bindings_matching_negation(rule, fact):
            final = self._finalize_binding(rule, bindings)
            if final is None:
                continue
            effects.extend(self._apply_firing(rule, final, body_facts))
        return effects

    def _positive_bindings_matching_negation(
        self, rule: Rule, fact: Fact
    ) -> Iterator[Tuple[Bindings, Tuple[Fact, ...]]]:
        """Bindings of the positive body for which a negative literal unifies with *fact*.

        Assignments are applied and conditions checked, but the negative
        literals themselves are NOT checked here (callers decide whether they
        are looking for blocked or unblocked bindings).
        """
        positives = rule.positive_literals
        slots: List[Optional[Fact]] = [None] * len(positives)
        negated = [
            literal for literal in rule.negative_literals if literal.atom.relation == fact.relation
        ]

        def recurse(index: int, bindings: Bindings) -> Iterator[Tuple[Bindings, Tuple[Fact, ...]]]:
            if index == len(positives):
                extended = dict(bindings)
                try:
                    for element in rule.body:
                        if isinstance(element, Assignment):
                            extended[element.variable] = evaluate_term(
                                element.expression, extended, self._registry
                            )
                        elif isinstance(element, Condition):
                            if not satisfies(element, extended, self._registry):
                                return
                except EngineError:
                    return
                for literal in negated:
                    if match_atom(literal.atom, fact, extended, self._registry) is not None:
                        yield extended, tuple(slot for slot in slots if slot is not None)
                        return
                return
            literal = positives[index]
            bound = bound_positions(literal.atom, bindings)
            for candidate in list(self._store.matching(literal.atom.relation, bound)):
                extended = match_atom(literal.atom, candidate, bindings, self._registry)
                if extended is None:
                    continue
                slots[index] = candidate
                yield from recurse(index + 1, extended)
                slots[index] = None

        yield from recurse(0, {})

    # -- aggregates -----------------------------------------------------------------------

    def _agg_add_entry(
        self, rule: Rule, bindings: Bindings, body_facts: Tuple[Fact, ...]
    ) -> List[DerivationEffect]:
        aggregate = rule.aggregate
        assert aggregate is not None
        group_key = group_key_of(rule.head, bindings, self._registry)
        if aggregate.variable is None:
            value: object = 1
        else:
            if aggregate.variable not in bindings:
                raise EngineError(
                    f"aggregate variable {aggregate.variable!r} is unbound in rule {rule.name!r}"
                )
            value = bindings[aggregate.variable]

        groups = self._agg_entries.setdefault(rule.name, {})
        entries = groups.setdefault(group_key, {})
        if body_facts in entries:
            return []
        entries[body_facts] = _AggEntry(value=value, body_facts=body_facts)
        for fact in set(body_facts):
            self._fact_agg_entries.setdefault(fact, set()).add((rule.name, group_key, body_facts))
        if self._dirty_agg_groups is not None:
            self._dirty_agg_groups.add((rule.name, group_key))
            return []
        return self._agg_recompute(rule, group_key)

    def _agg_remove_entry(
        self, rule_name: str, group_key: Tuple, body_facts: Tuple[Fact, ...]
    ) -> List[DerivationEffect]:
        rule = self._agg_rules.get(rule_name)
        if rule is None:
            return []
        groups = self._agg_entries.get(rule_name, {})
        entries = groups.get(group_key)
        if not entries or body_facts not in entries:
            return []
        del entries[body_facts]
        for fact in set(body_facts):
            memberships = self._fact_agg_entries.get(fact)
            if memberships is not None:
                memberships.discard((rule_name, group_key, body_facts))
                if not memberships:
                    del self._fact_agg_entries[fact]
        if not entries:
            del groups[group_key]
        if self._dirty_agg_groups is not None:
            self._dirty_agg_groups.add((rule_name, group_key))
            return []
        return self._agg_recompute(rule, group_key)

    def _agg_recompute(self, rule: Rule, group_key: Tuple) -> List[DerivationEffect]:
        aggregate = rule.aggregate
        assert aggregate is not None
        entries = self._agg_entries.get(rule.name, {}).get(group_key, {})
        head_key = (rule.name, group_key)
        current = self._agg_heads.get(head_key)

        effects: List[DerivationEffect] = []
        if not entries:
            if current is not None:
                effects.append(self._retract_agg_head(rule, head_key, current))
            return effects

        values = [entry.value for entry in entries.values()]
        new_value = _aggregate_value(aggregate.func, values)
        contributing = _contributing_facts(aggregate.func, entries, new_value)
        head_fact = _agg_head_fact(rule, group_key, new_value)

        previous = None
        if current is not None:
            if current.head_fact == head_fact and current.body_facts == contributing:
                return effects
            previous = current
            if self.aggregate_retract_first:
                # Ablation mode: propagate the retraction first (the naive
                # ordering), exposing the intermediate group state downstream.
                effects.append(self._retract_agg_head(rule, head_key, previous))
                previous = None

        head_location = self._compiled.catalog.location_of(head_fact)
        firing_id = self._next_firing_id()
        record = _AggHead(
            firing_id=firing_id,
            head_fact=head_fact,
            head_location=head_location,
            body_facts=contributing,
        )
        self._agg_heads[head_key] = record
        effects.append(
            DerivationEffect(
                sign=+1,
                firing_id=firing_id,
                rule_name=rule.name,
                program_name=self._compiled.name,
                head_fact=head_fact,
                head_location=head_location,
                body_facts=contributing,
            )
        )
        if previous is not None:
            # Emit the replacement *before* the retraction: downstream nodes
            # then see "new value arrives, old value leaves", which changes
            # their own aggregates exactly once.  The opposite order would
            # expose an intermediate state (group without either value) whose
            # consequences would be derived, shipped, and immediately undone —
            # a cascade that blows up deletion processing on cyclic topologies.
            effects.append(self._make_agg_retraction(rule, previous))
        return effects

    def _retract_agg_head(
        self, rule: Rule, head_key: Tuple[str, Tuple], record: _AggHead
    ) -> DerivationEffect:
        self._agg_heads.pop(head_key, None)
        return self._make_agg_retraction(rule, record)

    def _make_agg_retraction(self, rule: Rule, record: _AggHead) -> DerivationEffect:
        return DerivationEffect(
            sign=-1,
            firing_id=record.firing_id,
            rule_name=rule.name,
            program_name=self._compiled.name,
            head_fact=record.head_fact,
            head_location=record.head_location,
            body_facts=record.body_facts,
        )


# ---------------------------------------------------------------------------
# Aggregate helpers
# ---------------------------------------------------------------------------


def _aggregate_value(func: str, values: List[object]) -> object:
    if func == "min":
        return min(values)  # type: ignore[type-var]
    if func == "max":
        return max(values)  # type: ignore[type-var]
    if func == "count":
        return len(values)
    if func == "sum":
        return sum(values)  # type: ignore[arg-type]
    if func == "avg":
        return sum(values) / len(values)  # type: ignore[arg-type]
    raise EngineError(f"unsupported aggregate function {func!r}")


def _contributing_facts(
    func: str, entries: Dict[Tuple[Fact, ...], _AggEntry], value: object
) -> Tuple[Fact, ...]:
    """The body facts that justify the aggregate value (provenance children).

    The result is sorted so that the rule-execution identifier derived from it
    is independent of the order in which the group's entries were discovered
    (incremental and from-scratch runs must produce identical provenance).
    """
    contributing: Set[Fact] = set()
    for entry in entries.values():
        if func in ("min", "max") and entry.value != value:
            continue
        contributing.update(entry.body_facts)
    return tuple(sorted(contributing, key=repr))


def _agg_head_fact(rule: Rule, group_key: Tuple, value: object) -> Fact:
    values: List[object] = []
    key_iter = iter(group_key)
    for term in rule.head.terms:
        if isinstance(term, Aggregate):
            values.append(value)
        else:
            values.append(next(key_iter))
    return Fact.make(rule.head.relation, values)
