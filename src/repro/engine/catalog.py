"""Relation catalog: per-relation schema information derived from a program.

The catalog answers two questions the engine needs constantly:

* which attribute of a relation is the location specifier (so that derived
  tuples can be shipped to the right node), and
* what the primary-key positions of a materialized relation are (for
  key-based overwrite of base tuples).

Location indices are inferred from the ``@`` markers in the program's atoms
and must be consistent across all uses of a relation.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.errors import SchemaError
from repro.ndlog.ast import Atom, Program
from repro.engine.tuples import Fact, Schema


class Catalog:
    """Schema registry for all relations used by one or more programs."""

    def __init__(self) -> None:
        self._schemas: Dict[str, Schema] = {}
        # Primary keys declared by ``materialize`` for relations whose arity is
        # not yet known (no atom observed); applied once an atom arrives.
        self._pending_keys: Dict[str, tuple] = {}

    # -- construction ---------------------------------------------------------

    @staticmethod
    def from_program(program: Program) -> "Catalog":
        catalog = Catalog()
        catalog.add_program(program)
        return catalog

    def add_program(self, program: Program) -> None:
        """Register every relation mentioned by *program*."""
        for rule in program.rules:
            self._observe_atom(rule.head)
            for literal in rule.literals:
                self._observe_atom(literal.atom)
        for declaration in program.materialized.values():
            existing = self._schemas.get(declaration.relation)
            key_positions = tuple(k - 1 for k in declaration.keys)
            if existing is None:
                # Arity unknown until an atom mentioning the relation is seen;
                # remember the keys and apply them at that point.
                self._pending_keys[declaration.relation] = key_positions
            else:
                self._schemas[declaration.relation] = Schema(
                    relation=existing.relation,
                    arity=existing.arity,
                    attribute_names=existing.attribute_names,
                    key_positions=key_positions,
                    location_index=existing.location_index,
                )

    def _observe_atom(self, atom: Atom) -> None:
        location_index = atom.location_index if atom.location_index is not None else 0
        existing = self._schemas.get(atom.relation)
        if existing is None:
            key_positions = self._pending_keys.pop(atom.relation, ())
            self._schemas[atom.relation] = Schema(
                relation=atom.relation,
                arity=atom.arity,
                key_positions=key_positions,
                location_index=location_index,
            )
            return
        if existing.arity != atom.arity:
            raise SchemaError(
                f"relation {atom.relation!r} used with inconsistent arities "
                f"({existing.arity} and {atom.arity})"
            )
        if atom.location_index is not None and existing.location_index != atom.location_index:
            raise SchemaError(
                f"relation {atom.relation!r} used with inconsistent location specifiers "
                f"(attribute {existing.location_index} and {atom.location_index})"
            )

    def register(self, schema: Schema) -> None:
        """Explicitly register (or replace) a schema."""
        self._schemas[schema.relation] = schema

    # -- queries ---------------------------------------------------------------

    def __contains__(self, relation: str) -> bool:
        return relation in self._schemas

    def relations(self) -> Iterable[str]:
        return sorted(self._schemas)

    def schema(self, relation: str) -> Schema:
        if relation not in self._schemas:
            raise SchemaError(f"unknown relation {relation!r}")
        return self._schemas[relation]

    def schema_or_default(self, relation: str, arity: int) -> Schema:
        """Return the registered schema, or a default (location at attribute 0)."""
        if relation in self._schemas:
            return self._schemas[relation]
        return Schema(relation=relation, arity=arity, location_index=0)

    def location_of(self, fact: Fact) -> object:
        """Return the node identifier that *fact* is located at."""
        return self.schema_or_default(fact.relation, fact.arity).location_of(fact)

    def key_of(self, fact: Fact) -> Optional[tuple]:
        """Return the primary-key projection of *fact*, or None when keyless."""
        schema = self.schema_or_default(fact.relation, fact.arity)
        if not schema.key_positions:
            return None
        return schema.key_of(fact)
