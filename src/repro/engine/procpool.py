"""Worker-process side of the process-pool execution backend.

:class:`~repro.engine.backends.ProcessPoolBackend` forks one OS process per
worker and pins every logical node to exactly one worker (a stable seeded
hash of the node id).  The fork happens while the runtime is being
constructed — after the nodes and links exist, before any event has run —
so each worker starts from a byte-identical copy of every store.  From then
on the contract is:

* the **coordinator** (the parent process) keeps running the simulator, the
  network and the provenance engine exactly as the thread backend does;
* a node's ``_drain`` — the CPU-heavy semi-naive cascade — is shipped to the
  owning worker as ``(node_id, pending_updates)`` over a pipe;
* the worker replays the drain against *its* copy of the node (same store
  bytes, same evaluator, same code ⇒ same cascade) while recording an
  ordered **trace** of every store batch it applied and every effect list
  the evaluator produced;
* the coordinator mirrors the trace against the authoritative store and the
  real provenance engine, and performs the network sends the worker skipped
  — in the exact order a local drain would have, so the observable outcome
  stays bit-identical to the serial backend.

Worker-side provenance is the crux: the worker must ship the same
:class:`~repro.engine.messages.ProvenanceTag` objects a local drain would
have attached to each derivation, but it must not (and need not) maintain a
provenance graph.  Because vertex identifiers are content-addressed
(:mod:`repro.core.keys`), the tag of a rule firing is a pure function of the
effect — :class:`TagRecorder` below computes it statelessly, and the
coordinator asserts the worker's tags match the engine's when it mirrors the
trace (a cheap cross-process divergence detector).
"""

from __future__ import annotations

import os
import pickle
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.keys import rid_for, vid_for
from repro.engine.evaluator import DerivationEffect
from repro.engine.messages import ProvenanceTag
from repro.engine.node import _PendingUpdate
from repro.engine.tuples import Fact

if TYPE_CHECKING:  # pragma: no cover - typing only
    from multiprocessing.connection import Connection

    from repro.engine.node import Node


class TagRecorder:
    """A stateless provenance recorder for worker processes.

    Implements the duck-typed recorder protocol of
    :class:`~repro.engine.node.Node` (see the module docstring there) without
    storing anything: support changes are dropped — the coordinator replays
    them against the real :class:`~repro.core.maintenance.ProvenanceEngine` —
    and rule-execution tags are recomputed from the effect alone, which is
    possible because VIDs and RIDs are content-addressed hashes of the facts
    involved (``ProvenanceEngine.record_rule_exec`` derives its rid from
    exactly the same inputs).
    """

    @staticmethod
    def tag_for(exec_node: object, effect: "DerivationEffect") -> ProvenanceTag:
        child_vids = [vid_for(fact) for fact in effect.body_facts]
        return ProvenanceTag(
            rule_name=effect.rule_name,
            program_name=effect.program_name,
            exec_node=exec_node,
            rid=rid_for(effect.rule_name, exec_node, child_vids),
        )

    def record_rule_exec(self, exec_node: object, effect: "DerivationEffect") -> ProvenanceTag:
        return self.tag_for(exec_node, effect)

    def remove_rule_exec(self, exec_node: object, effect: "DerivationEffect") -> None:
        return None

    def record_support(self, node_id: object, fact: object, derivation_id: str, tag: object) -> None:
        return None

    def remove_support(self, node_id: object, fact: object, derivation_id: str) -> None:
        return None

    def apply_support_batch(self, node_id: object, ops: Sequence[object]) -> None:
        return None

    def apply_rule_exec_batch(
        self, exec_node: object, effects: Sequence["DerivationEffect"]
    ) -> List[Optional[ProvenanceTag]]:
        return [
            self.tag_for(exec_node, effect) if effect.sign > 0 else None for effect in effects
        ]


# ---------------------------------------------------------------------------
# Delta-encoded drain traces
# ---------------------------------------------------------------------------


class TraceCodec:
    """Stateful delta encoding for one direction-pair of a worker pipe.

    Drain requests and traces ship the same facts over and over — churn
    toggles the same links, which re-derive the same routes every round — so
    both pipe ends keep a session-lifetime interning table: the first time a
    fact (or a hot string: rule name, node id) crosses the pipe it travels
    inline and both sides append it to their table; every later occurrence
    travels as a small integer index.

    The two tables stay in lockstep because pipe traffic strictly alternates
    under the channel lock: the coordinator encodes a request envelope, the
    worker decodes it (registering the same new entries in the same order),
    the worker encodes the reply, the coordinator decodes it.  Each side owns
    one codec per pipe and uses it for both encoding and decoding, so the
    shared id space never forks.

    The encoding is value-keyed, which is what makes it beat pickle's
    identity memo: pickle dedups repeated *objects* within one message, the
    codec dedups equal facts across every drain of the session (and across
    the distinct-instance facts a dict-mode store produces).
    """

    def __init__(self) -> None:
        self._fact_ids: Dict[Fact, int] = {}
        self._facts: List[Fact] = []
        self._string_ids: Dict[str, int] = {}
        self._strings: List[str] = []

    # -- scalar encoders ------------------------------------------------------

    def _enc_fact(self, fact: Fact) -> object:
        fid = self._fact_ids.get(fact)
        if fid is not None:
            return fid
        self._fact_ids[fact] = len(self._facts)
        self._facts.append(fact)
        return (fact.relation, fact.values)

    def _dec_fact(self, ref: object) -> Fact:
        if type(ref) is int:
            return self._facts[ref]
        relation, values = ref
        fact = Fact(relation, values)
        self._fact_ids[fact] = len(self._facts)
        self._facts.append(fact)
        return fact

    def _enc_str(self, value: object) -> object:
        """Intern strings; anything else passes through under a raw marker."""
        if type(value) is not str:
            return ("!", value)
        sid = self._string_ids.get(value)
        if sid is not None:
            return sid
        self._string_ids[value] = len(self._strings)
        self._strings.append(value)
        return value

    def _dec_str(self, ref: object) -> object:
        if type(ref) is int:
            return self._strings[ref]
        if type(ref) is tuple:
            return ref[1]
        self._string_ids[ref] = len(self._strings)
        self._strings.append(ref)
        return ref

    # -- composite encoders ---------------------------------------------------

    def _enc_tag(self, tag: Optional[ProvenanceTag]) -> object:
        if tag is None:
            return None
        return (
            self._enc_str(tag.rule_name),
            self._enc_str(tag.program_name),
            self._enc_str(tag.exec_node),
            tag.rid,
        )

    def _dec_tag(self, ref: object) -> Optional[ProvenanceTag]:
        if ref is None:
            return None
        rule_ref, prog_ref, exec_ref, rid = ref
        return ProvenanceTag(
            rule_name=self._dec_str(rule_ref),
            program_name=self._dec_str(prog_ref),
            exec_node=self._dec_str(exec_ref),
            rid=rid,
        )

    def _enc_update(self, update: "_PendingUpdate") -> tuple:
        return (
            update.sign,
            self._enc_fact(update.fact),
            update.derivation_id,
            self._enc_tag(update.tag),
        )

    def _dec_update(self, enc: tuple) -> "_PendingUpdate":
        sign, fact_ref, derivation_id, tag_ref = enc
        return _PendingUpdate(
            sign, self._dec_fact(fact_ref), derivation_id, self._dec_tag(tag_ref)
        )

    def _enc_effect(self, effect: DerivationEffect) -> tuple:
        return (
            effect.sign,
            effect.firing_id,
            self._enc_str(effect.rule_name),
            self._enc_str(effect.program_name),
            self._enc_fact(effect.head_fact),
            self._enc_str(effect.head_location),
            tuple(self._enc_fact(fact) for fact in effect.body_facts),
        )

    def _dec_effect(self, enc: tuple) -> DerivationEffect:
        sign, firing_id, rule_ref, prog_ref, head_ref, location_ref, body_refs = enc
        return DerivationEffect(
            sign=sign,
            firing_id=firing_id,
            rule_name=self._dec_str(rule_ref),
            program_name=self._dec_str(prog_ref),
            head_fact=self._dec_fact(head_ref),
            head_location=self._dec_str(location_ref),
            body_facts=tuple(self._dec_fact(ref) for ref in body_refs),
        )

    # -- public surface -------------------------------------------------------

    def encode_updates(self, updates: Sequence["_PendingUpdate"]) -> List[tuple]:
        return [self._enc_update(update) for update in updates]

    def decode_updates(self, encoded: Sequence[tuple]) -> List["_PendingUpdate"]:
        return [self._dec_update(enc) for enc in encoded]

    def encode_trace(self, trace: Sequence[tuple]) -> List[tuple]:
        encoded: List[tuple] = []
        for entry in trace:
            kind = entry[0]
            if kind == "batch":
                encoded.append(("batch", self.encode_updates(entry[1])))
            elif kind == "single":
                encoded.append(("single", self._enc_update(entry[1])))
            elif kind == "effects":
                encoded.append(
                    (
                        "effects",
                        [self._enc_effect(effect) for effect in entry[1]],
                        [self._enc_tag(tag) for tag in entry[2]],
                    )
                )
            elif kind == "spans":
                # Worker-side observability spans (repro.obs.tracing.SpanRecord):
                # already primitives-only, so they travel verbatim.
                encoded.append(entry)
            else:  # pragma: no cover - new trace kinds must extend the codec
                raise ValueError(f"unknown trace entry kind {kind!r}")
        return encoded

    def decode_trace(self, encoded: Sequence[tuple]) -> List[tuple]:
        trace: List[tuple] = []
        for entry in encoded:
            kind = entry[0]
            if kind == "batch":
                trace.append(("batch", self.decode_updates(entry[1])))
            elif kind == "single":
                trace.append(("single", self._dec_update(entry[1])))
            elif kind == "effects":
                trace.append(
                    (
                        "effects",
                        [self._dec_effect(enc) for enc in entry[1]],
                        [self._dec_tag(ref) for ref in entry[2]],
                    )
                )
            elif kind == "spans":
                trace.append(entry)
            else:  # pragma: no cover - symmetrical with encode_trace
                raise ValueError(f"unknown trace entry kind {kind!r}")
        return trace


def dump_envelope(envelope: object) -> bytes:
    """Serialise one pipe envelope (explicit so byte counts are observable)."""
    return pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)


def load_envelope(blob: bytes) -> object:
    return pickle.loads(blob)


def bootstrap_worker(nodes: Dict[object, "Node"], owned_ids: Sequence[object]) -> Dict[object, "Node"]:
    """Prepare the forked copy of the runtime for serving drain requests.

    Only the nodes in *owned_ids* are ever drained here.  Their queues are
    cleared (whatever the fork captured in-flight is still queued on the
    coordinator side and arrives with the next drain request), the remote
    hook and scheduling flags are reset so ``_drain`` runs the real local
    cascade, and the provenance recorder is swapped for the stateless
    :class:`TagRecorder`.
    """
    owned: Dict[object, "Node"] = {}
    for node_id in owned_ids:
        node = nodes[node_id]
        node._remote_drain = None
        node._queue.clear()
        node._drain_scheduled = False
        node._processing = False
        if node.provenance is not None:
            node.provenance = TagRecorder()
        owned[node_id] = node
    return owned


def worker_main(conn: "Connection", nodes: Dict[object, "Node"], owned_ids: Sequence[object]) -> None:
    """Serve drain envelopes until the coordinator sends the ``None`` sentinel.

    Each request envelope carries every same-worker drain the coordinator
    had queued when the pipe came free: ``("drains", [(node_id, updates[,
    trace_ctx]), ...])`` with codec-encoded updates (``trace_ctx`` is the
    coordinator's ambient observability context, shipped only while tracing
    is on), or ``("raw", ...)`` with plain pickled updates (the
    ``trace_delta=False`` ablation).  The reply is
    ``("ok", [trace, ...])`` — one trace per drain, in request order — or
    ``("error", message)``, which the coordinator turns into an
    :class:`~repro.errors.EngineError`.

    Codec discipline: every request in the envelope is decoded *before* any
    reply encoding starts, and traces are encoded in drain order — the
    coordinator mirrors this exactly, which is what keeps the two interning
    tables identical.  The worker exits via :func:`os._exit` so the fork's
    inherited file buffers (WAL-less by construction, but e.g. pytest's
    capture pipes) are never double-flushed.
    """
    owned = bootstrap_worker(nodes, owned_ids)
    codec = TraceCodec()

    def run_drain(
        node: "Node",
        updates: List["_PendingUpdate"],
        ctx: Optional[Tuple[str, str]] = None,
    ) -> List[tuple]:
        # ctx is the coordinator's ambient (trace_id, span_id) for this drain;
        # the node's _obs_drain_begin parents its worker-side span to it and
        # ships the span home as a ("spans", ...) trace entry.
        node._queue.extend(updates)
        node._trace = []
        node._obs_drain_ctx = ctx
        try:
            node._drain()
            return node._trace
        finally:
            node._trace = None
            node._obs_drain_ctx = None

    try:
        while True:
            envelope = load_envelope(conn.recv_bytes())
            if envelope is None:
                break
            kind, items = envelope
            try:
                if kind == "drains":
                    requests = [
                        (
                            codec._dec_str(item[0]),
                            codec.decode_updates(item[1]),
                            item[2] if len(item) > 2 else None,
                        )
                        for item in items
                    ]
                    traces = [
                        codec.encode_trace(run_drain(owned[node_id], updates, ctx))
                        for node_id, updates, ctx in requests
                    ]
                else:  # "raw": the trace_delta=False ablation path
                    traces = [
                        run_drain(owned[item[0]], item[1], item[2] if len(item) > 2 else None)
                        for item in items
                    ]
                reply: Tuple[str, object] = ("ok", traces)
            except Exception as exc:  # pragma: no cover - shipped to the coordinator
                reply = ("error", f"{type(exc).__name__}: {exc}")
            conn.send_bytes(dump_envelope(reply))
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - coordinator went away
        pass
    finally:
        conn.close()
        os._exit(0)
