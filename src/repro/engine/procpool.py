"""Worker-process side of the process-pool execution backend.

:class:`~repro.engine.backends.ProcessPoolBackend` forks one OS process per
worker and pins every logical node to exactly one worker (a stable seeded
hash of the node id).  The fork happens while the runtime is being
constructed — after the nodes and links exist, before any event has run —
so each worker starts from a byte-identical copy of every store.  From then
on the contract is:

* the **coordinator** (the parent process) keeps running the simulator, the
  network and the provenance engine exactly as the thread backend does;
* a node's ``_drain`` — the CPU-heavy semi-naive cascade — is shipped to the
  owning worker as ``(node_id, pending_updates)`` over a pipe;
* the worker replays the drain against *its* copy of the node (same store
  bytes, same evaluator, same code ⇒ same cascade) while recording an
  ordered **trace** of every store batch it applied and every effect list
  the evaluator produced;
* the coordinator mirrors the trace against the authoritative store and the
  real provenance engine, and performs the network sends the worker skipped
  — in the exact order a local drain would have, so the observable outcome
  stays bit-identical to the serial backend.

Worker-side provenance is the crux: the worker must ship the same
:class:`~repro.engine.messages.ProvenanceTag` objects a local drain would
have attached to each derivation, but it must not (and need not) maintain a
provenance graph.  Because vertex identifiers are content-addressed
(:mod:`repro.core.keys`), the tag of a rule firing is a pure function of the
effect — :class:`TagRecorder` below computes it statelessly, and the
coordinator asserts the worker's tags match the engine's when it mirrors the
trace (a cheap cross-process divergence detector).
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.core.keys import rid_for, vid_for
from repro.engine.messages import ProvenanceTag

if TYPE_CHECKING:  # pragma: no cover - typing only
    from multiprocessing.connection import Connection

    from repro.engine.evaluator import DerivationEffect
    from repro.engine.node import Node


class TagRecorder:
    """A stateless provenance recorder for worker processes.

    Implements the duck-typed recorder protocol of
    :class:`~repro.engine.node.Node` (see the module docstring there) without
    storing anything: support changes are dropped — the coordinator replays
    them against the real :class:`~repro.core.maintenance.ProvenanceEngine` —
    and rule-execution tags are recomputed from the effect alone, which is
    possible because VIDs and RIDs are content-addressed hashes of the facts
    involved (``ProvenanceEngine.record_rule_exec`` derives its rid from
    exactly the same inputs).
    """

    @staticmethod
    def tag_for(exec_node: object, effect: "DerivationEffect") -> ProvenanceTag:
        child_vids = [vid_for(fact) for fact in effect.body_facts]
        return ProvenanceTag(
            rule_name=effect.rule_name,
            program_name=effect.program_name,
            exec_node=exec_node,
            rid=rid_for(effect.rule_name, exec_node, child_vids),
        )

    def record_rule_exec(self, exec_node: object, effect: "DerivationEffect") -> ProvenanceTag:
        return self.tag_for(exec_node, effect)

    def remove_rule_exec(self, exec_node: object, effect: "DerivationEffect") -> None:
        return None

    def record_support(self, node_id: object, fact: object, derivation_id: str, tag: object) -> None:
        return None

    def remove_support(self, node_id: object, fact: object, derivation_id: str) -> None:
        return None

    def apply_support_batch(self, node_id: object, ops: Sequence[object]) -> None:
        return None

    def apply_rule_exec_batch(
        self, exec_node: object, effects: Sequence["DerivationEffect"]
    ) -> List[Optional[ProvenanceTag]]:
        return [
            self.tag_for(exec_node, effect) if effect.sign > 0 else None for effect in effects
        ]


def bootstrap_worker(nodes: Dict[object, "Node"], owned_ids: Sequence[object]) -> Dict[object, "Node"]:
    """Prepare the forked copy of the runtime for serving drain requests.

    Only the nodes in *owned_ids* are ever drained here.  Their queues are
    cleared (whatever the fork captured in-flight is still queued on the
    coordinator side and arrives with the next drain request), the remote
    hook and scheduling flags are reset so ``_drain`` runs the real local
    cascade, and the provenance recorder is swapped for the stateless
    :class:`TagRecorder`.
    """
    owned: Dict[object, "Node"] = {}
    for node_id in owned_ids:
        node = nodes[node_id]
        node._remote_drain = None
        node._queue.clear()
        node._drain_scheduled = False
        node._processing = False
        if node.provenance is not None:
            node.provenance = TagRecorder()
        owned[node_id] = node
    return owned


def worker_main(conn: "Connection", nodes: Dict[object, "Node"], owned_ids: Sequence[object]) -> None:
    """Serve drain requests until the coordinator sends the ``None`` sentinel.

    Each request is ``(node_id, updates)``; the reply envelope is
    ``("ok", trace)`` or ``("error", message)`` — the coordinator turns the
    latter into an :class:`~repro.errors.EngineError`.  The worker exits via
    :func:`os._exit` so the fork's inherited file buffers (WAL-less by
    construction, but e.g. pytest's capture pipes) are never double-flushed.
    """
    owned = bootstrap_worker(nodes, owned_ids)
    try:
        while True:
            request = conn.recv()
            if request is None:
                break
            node_id, updates = request
            node = owned[node_id]
            node._queue.extend(updates)
            node._trace = []
            try:
                node._drain()
                conn.send(("ok", node._trace))
            except Exception as exc:  # pragma: no cover - shipped to the coordinator
                conn.send(("error", f"{type(exc).__name__}: {exc}"))
            finally:
                node._trace = None
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - coordinator went away
        pass
    finally:
        conn.close()
        os._exit(0)
