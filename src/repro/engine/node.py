"""A single node of the simulated distributed system.

Each :class:`Node` owns:

* a :class:`~repro.engine.store.TupleStore` holding its horizontal partition
  of every relation,
* a :class:`~repro.engine.evaluator.LocalEvaluator` that computes the
  consequences of local updates,
* a work queue of pending tuple deltas (local derivations and deltas received
  from other nodes), and
* an optional provenance recorder (the ExSPAN maintenance engine) that is
  informed of every rule execution and every derivation added to or removed
  from the store.

The provenance recorder must provide the following methods (see
:class:`repro.core.maintenance.ProvenanceEngine` for the real implementation)::

    record_rule_exec(exec_node, effect)   -> ProvenanceTag
    remove_rule_exec(exec_node, effect)   -> None
    record_support(node, fact, derivation_id, tag_or_None) -> None
    remove_support(node, fact, derivation_id) -> None
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import EngineError
from repro.engine.compiler import CompiledProgram
from repro.engine.evaluator import DerivationEffect, LocalEvaluator
from repro.engine.messages import (
    CATEGORY_TUPLE,
    Message,
    ProvenanceTag,
    TupleDelta,
)
from repro.engine.network import Network
from repro.engine.store import BASE_DERIVATION, TupleStore
from repro.engine.tuples import Fact


@dataclass
class NodeStats:
    """Counters describing the work one node has performed."""

    updates_processed: int = 0
    rule_firings: int = 0
    rule_retractions: int = 0
    deltas_sent: int = 0
    deltas_received: int = 0


@dataclass(frozen=True)
class _PendingUpdate:
    sign: int
    fact: Fact
    derivation_id: str
    tag: Optional[ProvenanceTag]


class Node:
    """One node: local store + evaluator + messaging."""

    def __init__(
        self,
        node_id: object,
        compiled: CompiledProgram,
        network: Network,
        provenance: Optional[object] = None,
        aggregate_retract_first: bool = False,
    ):
        self.id = node_id
        self.compiled = compiled
        self.network = network
        self.store = TupleStore()
        self.evaluator = LocalEvaluator(
            compiled, self.store, node_id, aggregate_retract_first=aggregate_retract_first
        )
        self.provenance = provenance
        self.stats = NodeStats()
        self._queue: Deque[_PendingUpdate] = deque()
        self._processing = False
        self._handlers: Dict[str, Callable[[Message], None]] = {}
        network.register(node_id, self)

    # -- external API ----------------------------------------------------------

    def insert_base(self, fact: Fact) -> None:
        """Insert a base tuple locally (e.g. a ``link`` tuple from the topology)."""
        self._check_location(fact)
        self._enqueue(_PendingUpdate(+1, fact, BASE_DERIVATION, None))

    def delete_base(self, fact: Fact) -> None:
        """Delete a base tuple previously inserted at this node."""
        self._check_location(fact)
        self._enqueue(_PendingUpdate(-1, fact, BASE_DERIVATION, None))

    def apply_external_derivation(self, effect: DerivationEffect) -> None:
        """Apply a derivation produced outside the local evaluator.

        This is how the legacy-application layer injects derivations inferred
        by "maybe" rules: the proxy builds a :class:`DerivationEffect` (with
        its own firing id) and the node records/ships it exactly as if one of
        its own rules had fired.
        """
        self._handle_effects([effect])

    def register_handler(self, category: str, handler: Callable[[Message], None]) -> None:
        """Register a handler for a non-tuple message category (e.g. provenance queries)."""
        self._handlers[category] = handler

    def send(self, receiver: object, category: str, payload: object) -> None:
        """Send an arbitrary message to another node through the network."""
        self.network.send(Message(sender=self.id, receiver=receiver, category=category, payload=payload))

    # -- message reception -------------------------------------------------------

    def receive(self, message: Message) -> None:
        """Entry point used by the network to deliver a message to this node."""
        if message.category == CATEGORY_TUPLE:
            delta = message.payload
            if not isinstance(delta, TupleDelta):
                raise EngineError(f"malformed tuple message payload: {message.payload!r}")
            self.stats.deltas_received += 1
            self._enqueue(_PendingUpdate(delta.sign, delta.fact, delta.derivation_id, delta.provenance))
            return
        handler = self._handlers.get(message.category)
        if handler is None:
            raise EngineError(
                f"node {self.id!r} has no handler for message category {message.category!r}"
            )
        handler(message)

    # -- internals -----------------------------------------------------------------

    def _check_location(self, fact: Fact) -> None:
        location = self.compiled.catalog.location_of(fact)
        if location != self.id:
            raise EngineError(
                f"fact {fact} is located at {location!r} and cannot be inserted at node {self.id!r}"
            )

    def _enqueue(self, update: _PendingUpdate) -> None:
        self._queue.append(update)
        if not self._processing:
            self._drain()

    def _drain(self) -> None:
        self._processing = True
        try:
            while self._queue:
                update = self._queue.popleft()
                self._apply(update)
        finally:
            self._processing = False

    def _apply(self, update: _PendingUpdate) -> None:
        self.stats.updates_processed += 1
        if update.sign > 0:
            newly_present = self.store.add_derivation(update.fact, update.derivation_id)
            if self.provenance is not None:
                self.provenance.record_support(
                    self.id, update.fact, update.derivation_id, update.tag
                )
            if newly_present:
                effects = self.evaluator.on_fact_inserted(update.fact)
                self._handle_effects(effects)
        else:
            had_derivation = update.derivation_id in self.store.derivations(update.fact)
            disappeared = self.store.remove_derivation(update.fact, update.derivation_id)
            if self.provenance is not None and had_derivation:
                self.provenance.remove_support(self.id, update.fact, update.derivation_id)
            if disappeared:
                effects = self.evaluator.on_fact_deleted(update.fact)
                self._handle_effects(effects)

    def _handle_effects(self, effects: List[DerivationEffect]) -> None:
        for effect in effects:
            tag: Optional[ProvenanceTag] = None
            if effect.sign > 0:
                self.stats.rule_firings += 1
                if self.provenance is not None:
                    tag = self.provenance.record_rule_exec(self.id, effect)
            else:
                self.stats.rule_retractions += 1
                if self.provenance is not None:
                    self.provenance.remove_rule_exec(self.id, effect)

            delta = TupleDelta(
                sign=effect.sign,
                fact=effect.head_fact,
                derivation_id=effect.firing_id,
                provenance=tag,
            )
            if effect.head_location == self.id:
                self._enqueue(
                    _PendingUpdate(effect.sign, effect.head_fact, effect.firing_id, tag)
                )
            else:
                self.stats.deltas_sent += 1
                self.network.send(
                    Message(
                        sender=self.id,
                        receiver=effect.head_location,
                        category=CATEGORY_TUPLE,
                        payload=delta,
                    )
                )

    # -- convenience accessors -------------------------------------------------------

    def facts(self, relation: str) -> List[Fact]:
        """All facts of *relation* stored at this node (sorted for determinism)."""
        return sorted(self.store.facts(relation), key=lambda fact: repr(fact.values))

    def __repr__(self) -> str:
        return f"Node({self.id!r}, {self.store.count()} facts)"
