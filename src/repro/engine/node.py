"""A single node of the simulated distributed system.

Each :class:`Node` owns:

* a :class:`~repro.engine.store.TupleStore` holding its horizontal partition
  of every relation,
* a :class:`~repro.engine.evaluator.LocalEvaluator` that computes the
  consequences of local updates,
* a work queue of pending tuple deltas (local derivations and deltas received
  from other nodes), and
* an optional provenance recorder (the ExSPAN maintenance engine) that is
  informed of every rule execution and every derivation added to or removed
  from the store.

The provenance recorder must provide the following methods (see
:class:`repro.core.maintenance.ProvenanceEngine` for the real implementation)::

    record_rule_exec(exec_node, effect)   -> ProvenanceTag
    remove_rule_exec(exec_node, effect)   -> None
    record_support(node, fact, derivation_id, tag_or_None) -> None
    remove_support(node, fact, derivation_id) -> None
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.errors import EngineError
from repro.engine.compiler import CompiledProgram
from repro.engine.evaluator import DerivationEffect, LocalEvaluator
from repro.engine.messages import (
    CATEGORY_TUPLE,
    Message,
    ProvenanceTag,
    TupleDelta,
    TupleDeltaBatch,
)
from repro.engine.network import Network
from repro.engine.store import (
    BASE_DERIVATION,
    ColumnarTupleStore,
    SerialShardExecutor,
    ShardedTupleStore,
    ThreadShardExecutor,
    TupleStore,
)
from repro.engine.tuples import SLOTTED, Fact
from repro.obs import Observability


@dataclass
class NodeStats:
    """Counters describing the work one node has performed.

    ``deltas_sent`` / ``deltas_received`` count individual tuple deltas;
    ``messages_sent`` counts network messages, which is lower in batched mode
    because deltas to the same destination share one message.
    """

    updates_processed: int = 0
    batches_processed: int = 0
    rule_firings: int = 0
    rule_retractions: int = 0
    deltas_sent: int = 0
    deltas_received: int = 0
    messages_sent: int = 0


@dataclass(frozen=True, **SLOTTED)
class _PendingUpdate:
    sign: int
    fact: Fact
    derivation_id: str
    tag: Optional[ProvenanceTag]


class Node:
    """One node: local store + evaluator + messaging."""

    def __init__(
        self,
        node_id: object,
        compiled: CompiledProgram,
        network: Network,
        provenance: Optional[object] = None,
        aggregate_retract_first: bool = False,
        batch_deltas: bool = True,
        num_shards: Optional[int] = None,
        shard_workers: int = 0,
        batch_commit_stall_s: float = 0.0,
        columnar: bool = False,
        observability: Optional[Observability] = None,
    ):
        self.id = node_id
        self.compiled = compiled
        self.network = network
        #: Number of store shards (``None`` = the flat unsharded store).  When
        #: set, the node's relations are hash-partitioned by primary-key
        #: columns across ``num_shards`` private :class:`TupleStore` shards
        #: and incoming delta batches are split into per-shard sub-batches.
        self.num_shards = num_shards
        #: Worker threads for shard absorption and per-shard join passes;
        #: ``0``/``1`` selects the serial deterministic reference executor.
        self.shard_workers = shard_workers
        if num_shards is not None and num_shards < 1:
            raise EngineError(f"node {node_id!r}: num_shards must be >= 1, got {num_shards}")
        if shard_workers > 1 and num_shards is None:
            raise EngineError(
                f"node {node_id!r}: shard_workers={shard_workers} requires num_shards "
                "(the flat unsharded store has nothing to parallelise over)"
            )
        self._shard_executor = (
            ThreadShardExecutor(shard_workers) if shard_workers > 1 else SerialShardExecutor()
        )
        #: Dictionary-encoded columnar store representation (see
        #: :class:`~repro.engine.store.ColumnarTupleStore`); the evaluator's
        #: batch join then runs its compiled slot programs over interned id
        #: arrays.  ``False`` keeps the dict-based reference representation.
        self.columnar = columnar
        if num_shards is None:
            self.store = ColumnarTupleStore() if columnar else TupleStore()
        else:
            catalog = compiled.catalog

            def shard_key(fact: Fact) -> Tuple[object, ...]:
                key = catalog.key_of(fact)
                return key if key else fact.values

            self.store = ShardedTupleStore(
                num_shards, key_fn=shard_key, executor=self._shard_executor, columnar=columnar
            )
        self.evaluator = LocalEvaluator(
            compiled,
            self.store,
            node_id,
            aggregate_retract_first=aggregate_retract_first,
            shard_executor=self._shard_executor,
        )
        self.provenance = provenance
        self.stats = NodeStats()
        #: Batch-first mode (the default): the work queue is drained in
        #: batches through :meth:`LocalEvaluator.on_batch`, outgoing deltas
        #: are grouped per destination into :class:`TupleDeltaBatch`
        #: messages, and provenance is updated once per batch.  ``False``
        #: restores the historical one-delta-at-a-time path (kept as the
        #: baseline the batching benchmarks compare against).
        self.batch_deltas = batch_deltas
        #: Emulated per-batch commit latency in *real* seconds (``time.sleep``
        #: before each batch is absorbed), modelling the blocking I/O a
        #: durable deployment pays to fsync its store/provenance log.  The
        #: sleep releases the GIL exactly like real I/O, which is what the
        #: E13 backend benchmark uses to show concurrent backends overlapping
        #: independent nodes' commit stalls.  Leave at 0.0 (the default) for
        #: pure in-memory simulation.
        self.batch_commit_stall_s = batch_commit_stall_s
        self._queue: Deque[_PendingUpdate] = deque()
        self._processing = False
        self._drain_scheduled = False
        #: Installed by the process-pool backend: a callable that ships this
        #: node's pending queue to the owning worker process and mirrors the
        #: returned drain trace (see :mod:`repro.engine.procpool`).  ``None``
        #: — every other configuration — drains locally.
        self._remote_drain: Optional[Callable[["Node"], None]] = None
        #: Worker-side drain trace: ``None`` outside a worker process.  While
        #: a list, ``_apply_batch`` / ``_apply`` / ``_handle_effects`` append
        #: ``("batch", updates)`` / ``("single", update)`` /
        #: ``("effects", effects, tags)`` entries instead of touching the
        #: network, and the coordinator replays them via :meth:`_mirror_trace`.
        self._trace: Optional[List[tuple]] = None
        #: The runtime's :class:`~repro.obs.Observability` bundle, or ``None``
        #: (the default — every instrumentation site below is one branch).
        self.obs = observability
        #: Worker-side drain trace context: the coordinator ships the ambient
        #: ``(trace_id, span_id)`` with each remote drain request so spans
        #: recorded in the worker carry correct parent ids (see
        #: :func:`repro.engine.procpool.run_drain`).
        self._obs_drain_ctx: Optional[Tuple[str, str]] = None
        #: ``repr(node_id)`` computed once — the drain instrumentation path
        #: stamps it on every span/event and must not re-render it per batch.
        self._id_repr = repr(node_id)
        self._handlers: Dict[str, Callable[[Message], None]] = {}
        network.register(node_id, self)

    # -- external API ----------------------------------------------------------

    def insert_base(self, fact: Fact) -> None:
        """Insert a base tuple locally (e.g. a ``link`` tuple from the topology)."""
        self._check_location(fact)
        self._enqueue(_PendingUpdate(+1, fact, BASE_DERIVATION, None))

    def delete_base(self, fact: Fact) -> None:
        """Delete a base tuple previously inserted at this node."""
        self._check_location(fact)
        self._enqueue(_PendingUpdate(-1, fact, BASE_DERIVATION, None))

    def apply_base_batch(
        self, inserts: Sequence[Fact] = (), deletes: Sequence[Fact] = ()
    ) -> None:
        """Enqueue many base-tuple deltas and process them as one batch.

        Deletions are staged before insertions so key-overwrite sequences
        ("delete the old row, insert the new one") behave as expected.  In
        batched mode the whole set reaches the evaluator as a single
        :meth:`LocalEvaluator.on_batch` call; in per-delta mode it simply
        replays one update at a time.
        """
        for fact in deletes:
            self._check_location(fact)
            self._queue.append(_PendingUpdate(-1, fact, BASE_DERIVATION, None))
        for fact in inserts:
            self._check_location(fact)
            self._queue.append(_PendingUpdate(+1, fact, BASE_DERIVATION, None))
        if self._queue and not self._processing:
            self._drain()

    def apply_external_derivation(self, effect: DerivationEffect) -> None:
        """Apply a derivation produced outside the local evaluator.

        This is how the legacy-application layer injects derivations inferred
        by "maybe" rules: the proxy builds a :class:`DerivationEffect` (with
        its own firing id) and the node records/ships it exactly as if one of
        its own rules had fired.
        """
        self._handle_effects([effect])

    def register_handler(self, category: str, handler: Callable[[Message], None]) -> None:
        """Register a handler for a non-tuple message category (e.g. provenance queries)."""
        self._handlers[category] = handler

    def send(self, receiver: object, category: str, payload: object) -> None:
        """Send an arbitrary message to another node through the network."""
        self.network.send(Message(sender=self.id, receiver=receiver, category=category, payload=payload))

    # -- message reception -------------------------------------------------------

    def receive(self, message: Message) -> None:
        """Entry point used by the network to deliver a message to this node."""
        if message.category == CATEGORY_TUPLE:
            payload = message.payload
            if isinstance(payload, TupleDeltaBatch):
                deltas = payload.deltas
            elif isinstance(payload, TupleDelta):
                deltas = (payload,)
            else:
                raise EngineError(f"malformed tuple message payload: {message.payload!r}")
            self.stats.deltas_received += len(deltas)
            for delta in deltas:
                self._queue.append(
                    _PendingUpdate(delta.sign, delta.fact, delta.derivation_id, delta.provenance)
                )
            if self.batch_deltas:
                # Defer draining to a zero-delay simulator event: every
                # message delivered to this node at the same virtual instant
                # lands in the queue first, so one evaluation batch absorbs
                # the whole wave instead of one batch per sender.
                self._schedule_drain()
            elif not self._processing:
                self._drain()
            return
        handler = self._handlers.get(message.category)
        if handler is None:
            raise EngineError(
                f"node {self.id!r} has no handler for message category {message.category!r}"
            )
        handler(message)

    # -- internals -----------------------------------------------------------------

    def _check_location(self, fact: Fact) -> None:
        location = self.compiled.catalog.location_of(fact)
        if location != self.id:
            raise EngineError(
                f"fact {fact} is located at {location!r} and cannot be inserted at node {self.id!r}"
            )

    def _enqueue(self, update: _PendingUpdate) -> None:
        self._queue.append(update)
        if not self._processing:
            self._drain()

    def _schedule_drain(self) -> None:
        if self._drain_scheduled or self._processing:
            return
        self._drain_scheduled = True

        def fire() -> None:
            self._drain_scheduled = False
            if not self._processing and self._queue:
                self._drain()

        # Drains are serialized per node (the event key): a concurrent
        # backend may drain distinct nodes of the same wave in parallel, but
        # this node's store/evaluator/provenance partition stays
        # single-writer.
        self.network.simulator.schedule(0.0, fire, label=f"drain:{self.id}", key=self.id)

    def _drain(self) -> None:
        if self._remote_drain is not None:
            self._remote_drain(self)
            return
        self._processing = True
        try:
            while self._queue:
                if self.batch_deltas:
                    batch = list(self._queue)
                    self._queue.clear()
                    self._apply_batch(batch)
                else:
                    self._apply(self._queue.popleft())
        finally:
            self._processing = False

    def _apply_batch(self, updates: List[_PendingUpdate]) -> None:
        """Apply a batch of pending updates with one evaluator/provenance pass.

        The store absorbs the whole batch first; the evaluator then sees only
        the *net* presence transitions, and the provenance partition is
        updated under a single version bump.
        """
        if self._trace is not None:
            self._trace.append(("batch", list(updates)))
        token = None if self.obs is None else self._obs_drain_begin()
        self.stats.updates_processed += len(updates)
        self.stats.batches_processed += 1
        if self.batch_commit_stall_s > 0.0:
            time.sleep(self.batch_commit_stall_s)
        newly_present, disappeared = self._absorb_batch(updates)
        if newly_present or disappeared:
            effects = self.evaluator.on_batch(newly_present, disappeared)
            self._handle_effects(effects)
        if self.obs is not None:
            self._obs_drain_end(token, len(updates))

    def _absorb_batch(
        self, updates: List[_PendingUpdate]
    ) -> Tuple[List[Fact], List[Fact]]:
        """Apply *updates* to the store and the provenance partition (no evaluation)."""
        newly_present, disappeared, applied = self.store.apply_delta_batch(
            (update.sign, update.fact, update.derivation_id) for update in updates
        )
        if self.provenance is not None:
            ops = []
            for update, was_applied in zip(updates, applied):
                if update.sign > 0:
                    ops.append((+1, update.fact, update.derivation_id, update.tag))
                elif was_applied:
                    ops.append((-1, update.fact, update.derivation_id, None))
            apply_batch = getattr(self.provenance, "apply_support_batch", None)
            if apply_batch is not None:
                apply_batch(self.id, ops)
            else:  # duck-typed recorder without the batch extension
                for sign, fact, derivation_id, tag in ops:
                    if sign > 0:
                        self.provenance.record_support(self.id, fact, derivation_id, tag)
                    else:
                        self.provenance.remove_support(self.id, fact, derivation_id)
        return newly_present, disappeared

    def _apply(self, update: _PendingUpdate) -> None:
        if self._trace is not None:
            self._trace.append(("single", update))
        self.stats.updates_processed += 1
        if self._absorb_single(update):
            if update.sign > 0:
                effects = self.evaluator.on_fact_inserted(update.fact)
            else:
                effects = self.evaluator.on_fact_deleted(update.fact)
            self._handle_effects(effects)

    def _absorb_single(self, update: _PendingUpdate) -> bool:
        """Apply one update to store + provenance; True if presence changed."""
        if update.sign > 0:
            newly_present = self.store.add_derivation(update.fact, update.derivation_id)
            if self.provenance is not None:
                self.provenance.record_support(
                    self.id, update.fact, update.derivation_id, update.tag
                )
            return bool(newly_present)
        had_derivation = update.derivation_id in self.store.derivations(update.fact)
        disappeared = self.store.remove_derivation(update.fact, update.derivation_id)
        if self.provenance is not None and had_derivation:
            self.provenance.remove_support(self.id, update.fact, update.derivation_id)
        return bool(disappeared)

    def _handle_effects(self, effects: List[DerivationEffect]) -> None:
        if not effects:
            return
        tags = self._record_effects(effects)
        if self._trace is not None:
            # Worker process: ship the effects + tags for the coordinator to
            # mirror (it performs the network sends); keep the local-head
            # enqueue so the worker-side cascade continues.
            self._trace.append(("effects", list(effects), list(tags)))
            self._dispatch_effects(effects, tags, enqueue_local=True, send_remote=False)
        else:
            self._dispatch_effects(effects, tags, enqueue_local=True, send_remote=True)
        if self._queue and not self._processing:
            self._drain()

    def _dispatch_effects(
        self,
        effects: List[DerivationEffect],
        tags: List[Optional[ProvenanceTag]],
        enqueue_local: bool,
        send_remote: bool,
    ) -> None:
        """Turn evaluator effects into queue pushes and outgoing deltas.

        ``enqueue_local=False`` is the coordinator mirroring a worker trace:
        local heads already continued the cascade worker-side and arrive as
        the trace's next ``("batch", ...)`` entry.  ``send_remote=False`` is
        the worker side of the same split: remote heads travel home in the
        ``("effects", ...)`` trace entry and the coordinator sends them.
        """
        outgoing: Dict[object, List[TupleDelta]] = {}
        destinations: List[object] = []  # deterministic first-seen order
        for effect, tag in zip(effects, tags):
            if effect.sign > 0:
                self.stats.rule_firings += 1
            else:
                self.stats.rule_retractions += 1
            if effect.head_location == self.id:
                if enqueue_local:
                    self._queue.append(
                        _PendingUpdate(effect.sign, effect.head_fact, effect.firing_id, tag)
                    )
                continue
            if not send_remote:
                continue
            self.stats.deltas_sent += 1
            delta = TupleDelta(
                sign=effect.sign,
                fact=effect.head_fact,
                derivation_id=effect.firing_id,
                provenance=tag,
            )
            if effect.head_location not in outgoing:
                destinations.append(effect.head_location)
            outgoing.setdefault(effect.head_location, []).append(delta)

        for destination in destinations:
            deltas = outgoing[destination]
            if self.batch_deltas:
                payloads: List[object] = [
                    deltas[0] if len(deltas) == 1 else TupleDeltaBatch(tuple(deltas))
                ]
            else:
                payloads = list(deltas)
            for payload in payloads:
                self.stats.messages_sent += 1
                self.network.send(
                    Message(
                        sender=self.id,
                        receiver=destination,
                        category=CATEGORY_TUPLE,
                        payload=payload,
                    )
                )

    # -- observability -----------------------------------------------------------

    def _obs_drain_begin(self) -> Optional[object]:
        """Start-of-batch telemetry token: a ``((trace_id, span_id), start)``
        pair, or ``None`` when tracing is off / no trace is ambient.

        This runs once per drain on the engine's hottest path, so both sides
        use the primitive span-record fast lane (:meth:`Tracer.defer`) rather
        than live :class:`~repro.obs.Span` objects — benchmark E20 gates the
        cost."""
        obs = self.obs
        if obs is None or not obs.tracing:
            return None
        if self._trace is not None:
            # Worker process: spans travel home in the drain trace; parent to
            # the context the coordinator shipped with this drain request.
            if self._obs_drain_ctx is None:
                return None
            return (self._obs_drain_ctx, time.perf_counter())
        parent = obs.tracer.current()
        if parent is None:
            return None
        return (parent.as_tuple(), time.perf_counter())

    def _obs_drain_end(self, token: Optional[object], updates: int) -> None:
        obs = self.obs
        if obs is None:
            return
        if self._trace is None:
            obs.recorder.record("drain", node=self._id_repr, updates=updates)
        if token is None:
            return
        (trace_id, span_id), start = token
        record = (
            "drain", trace_id, span_id, self._id_repr,
            start, time.perf_counter(), (("updates", updates),),
        )
        if self._trace is not None:
            self._trace.append(("spans", [record]))
        else:
            obs.tracer.defer(record)

    # -- coordinator-side mirror of a worker drain trace -------------------------

    def _mirror_trace(self, trace: List[tuple]) -> None:
        """Replay a worker's drain trace against the authoritative state.

        The trace is the exact sequence of store batches and effect lists a
        local drain would have produced, so replaying it entry by entry
        leaves the coordinator's store, provenance partition, stats and
        outgoing traffic bit-identical to a local drain — minus the
        evaluator work and the commit stall, which the worker already paid.
        """
        self._processing = True
        try:
            for entry in trace:
                kind = entry[0]
                if kind == "batch":
                    self._mirror_batch(entry[1])
                elif kind == "single":
                    self._mirror_single(entry[1])
                elif kind == "effects":
                    self._mirror_effects(entry[1], entry[2])
                elif kind == "spans":
                    # Worker-side observability spans: re-home them into the
                    # coordinator's tracer (parent ids were assigned from the
                    # context shipped with the drain request, so the tree is
                    # complete without translation).
                    if self.obs is not None:
                        self.obs.tracer.absorb(entry[1])
                else:
                    raise EngineError(
                        f"node {self.id!r}: malformed worker trace entry {kind!r}"
                    )
        finally:
            self._processing = False

    def _mirror_batch(self, updates: List[_PendingUpdate]) -> None:
        self.stats.updates_processed += len(updates)
        self.stats.batches_processed += 1
        if self.obs is not None:
            self.obs.record_event(
                "drain", node=self._id_repr, updates=len(updates), remote=True
            )
        # The commit stall was paid in the worker (where stalls of distinct
        # workers overlap); the evaluator consequences arrive as the next
        # trace entries.
        self._absorb_batch(updates)

    def _mirror_single(self, update: _PendingUpdate) -> None:
        self.stats.updates_processed += 1
        self._absorb_single(update)

    def _mirror_effects(
        self, effects: List[DerivationEffect], tags: List[Optional[ProvenanceTag]]
    ) -> None:
        recorded = self._record_effects(effects)
        if recorded != tags:
            raise EngineError(
                f"node {self.id!r}: worker-computed provenance tags diverged from "
                "the coordinator's provenance engine (stores out of sync?)"
            )
        self._dispatch_effects(effects, recorded, enqueue_local=False, send_remote=True)

    def _record_effects(self, effects: List[DerivationEffect]) -> List[Optional[ProvenanceTag]]:
        """Record rule firings/retractions in the provenance engine, batched."""
        if self.provenance is None:
            return [None] * len(effects)
        apply_batch = getattr(self.provenance, "apply_rule_exec_batch", None)
        if self.batch_deltas and apply_batch is not None:
            return apply_batch(self.id, effects)
        tags: List[Optional[ProvenanceTag]] = []
        for effect in effects:
            if effect.sign > 0:
                tags.append(self.provenance.record_rule_exec(self.id, effect))
            else:
                self.provenance.remove_rule_exec(self.id, effect)
                tags.append(None)
        return tags

    # -- lifecycle ---------------------------------------------------------------------

    def close(self) -> None:
        """Release shard worker threads (no-op for the serial executor)."""
        self._shard_executor.close()

    # -- convenience accessors -------------------------------------------------------

    def facts(self, relation: str) -> List[Fact]:
        """All facts of *relation* stored at this node (sorted for determinism)."""
        return sorted(self.store.facts(relation), key=lambda fact: repr(fact.values))

    def __repr__(self) -> str:
        return f"Node({self.id!r}, {self.store.count()} facts)"
