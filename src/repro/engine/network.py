"""Simulated network: links, latencies and per-category traffic accounting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import UnknownNodeError
from repro.engine.messages import Message
from repro.engine.simulator import Simulator


@dataclass
class Link:
    """A (directed) link between two nodes."""

    source: object
    target: object
    cost: float = 1.0
    latency: float = 0.01
    up: bool = True


@dataclass
class TrafficStats:
    """Message and byte counts, total and per category."""

    messages: int = 0
    bytes: int = 0
    by_category: Dict[str, int] = field(default_factory=dict)
    bytes_by_category: Dict[str, int] = field(default_factory=dict)

    def record(self, message: Message) -> None:
        size = message.size_estimate()
        self.messages += 1
        self.bytes += size
        self.by_category[message.category] = self.by_category.get(message.category, 0) + 1
        self.bytes_by_category[message.category] = (
            self.bytes_by_category.get(message.category, 0) + size
        )

    def category_count(self, category: str) -> int:
        return self.by_category.get(category, 0)

    def snapshot(self) -> Dict[str, object]:
        return {
            "messages": self.messages,
            "bytes": self.bytes,
            "by_category": dict(self.by_category),
            "bytes_by_category": dict(self.bytes_by_category),
        }


class Network:
    """Point-to-point message delivery between registered nodes."""

    def __init__(self, simulator: Simulator, default_latency: float = 0.01):
        #: The discrete-event simulator this network schedules deliveries on
        #: (also used by nodes to coalesce same-instant deliveries).
        self.simulator = simulator
        self._default_latency = default_latency
        self._receivers: Dict[object, object] = {}
        self._links: Dict[Tuple[object, object], Link] = {}
        self.stats = TrafficStats()
        self._delivery_log: List[Tuple[float, Message]] = []

    # -- membership -----------------------------------------------------------

    def register(self, node_id: object, receiver: object) -> None:
        """Register *receiver* (anything with a ``receive(message)`` method)."""
        self._receivers[node_id] = receiver

    def node_ids(self) -> List[object]:
        return sorted(self._receivers, key=repr)

    def __contains__(self, node_id: object) -> bool:
        return node_id in self._receivers

    # -- links ------------------------------------------------------------------

    def add_link(self, source: object, target: object, cost: float = 1.0, latency: float = 0.01) -> Link:
        link = Link(source=source, target=target, cost=cost, latency=latency, up=True)
        self._links[(source, target)] = link
        return link

    def remove_link(self, source: object, target: object) -> None:
        self._links.pop((source, target), None)

    def link(self, source: object, target: object) -> Optional[Link]:
        return self._links.get((source, target))

    def links(self) -> Iterable[Link]:
        return list(self._links.values())

    def neighbors(self, node_id: object) -> List[object]:
        return sorted(
            (target for (source, target), link in self._links.items() if source == node_id and link.up),
            key=repr,
        )

    # -- message delivery ---------------------------------------------------------

    def send(self, message: Message) -> None:
        """Deliver *message* to its receiver after the link (or default) latency.

        When called from an event that a concurrent backend is executing, the
        dispatch (traffic accounting + delivery scheduling) is routed through
        the simulator's per-event effect queue and merged after the wave in
        event-sequence order — the thread-safe network funnel that keeps
        traffic statistics and delivery order identical to serial execution.
        """
        if message.receiver not in self._receivers:
            raise UnknownNodeError(f"message addressed to unknown node {message.receiver!r}")
        buffer = self.simulator.deferred_buffer()
        if buffer is not None:
            buffer.append(lambda: self._dispatch(message))
            return
        self._dispatch(message)

    def _dispatch(self, message: Message) -> None:
        self.stats.record(message)
        link = self._links.get((message.sender, message.receiver))
        latency = link.latency if link is not None and link.up else self._default_latency
        receiver = self._receivers[message.receiver]

        def deliver() -> None:
            entry = (self.simulator.now, message)
            # The log is shared across receivers, so under a concurrent
            # backend the append goes through the deferred merge — keeping
            # delivery-log order identical to serial execution.
            buffer = self.simulator.deferred_buffer()
            if buffer is not None:
                buffer.append(lambda: self._delivery_log.append(entry))
            else:
                self._delivery_log.append(entry)
            receiver.receive(message)

        # Deliveries are serialized per receiving node (the event key): two
        # messages delivered to one node at the same instant keep their order,
        # while deliveries to distinct nodes may be absorbed concurrently.
        self.simulator.schedule(
            latency, deliver, label=f"deliver:{message.category}", key=message.receiver
        )

    def delivery_log(self) -> List[Tuple[float, Message]]:
        """The (time, message) log of every delivered message, in delivery order."""
        return list(self._delivery_log)

    def reset_stats(self) -> TrafficStats:
        """Reset traffic statistics, returning the statistics collected so far."""
        old = self.stats
        self.stats = TrafficStats()
        return old
