"""Pluggable execution backends for the discrete-event simulator.

The deterministic :class:`~repro.engine.simulator.Simulator` owns the clock
and the event queue; *how* the events of one virtual instant are executed is
delegated to an :class:`ExecutionBackend`:

* :class:`SerialBackend` — the reference mode (and the default): events run
  one at a time in ``(time, sequence)`` order, exactly as the seed simulator
  always has.
* :class:`ThreadPoolBackend` — same-instant events whose serialization keys
  differ (in practice: drains and deliveries of *distinct* nodes) run
  concurrently on a thread pool.
* :class:`AsyncioBackend` — the same scheduling contract driven through a
  persistent asyncio event loop, for embedding the engine in async hosts.
* :class:`ProcessPoolBackend` — forked worker processes own the CPU-heavy
  drain cascades (one worker per ``workers``, nodes pinned by a stable
  seeded hash), sidestepping the GIL for true multi-core execution; the
  coordinator mirrors each worker's drain trace so observable state stays
  bit-identical (see :mod:`repro.engine.procpool`).

Scheduling contract (every backend)
-----------------------------------

1. The simulator pops one **wave** — every queued event sharing the earliest
   virtual time — in sequence order.
2. Each event carries an optional **serialization key** (see the ``key=``
   parameter of :meth:`Simulator.schedule`).  Events with the same key are
   executed in sequence order by a single worker; events with *different*
   keys may execute concurrently.  Node drains are keyed by the draining
   node and message deliveries by the receiving node, so each node's store,
   evaluator and provenance partition stay single-writer.
3. An event **without** a key is a barrier: everything scheduled before it
   finishes first, then the event runs alone, then the rest of the wave
   proceeds.  (Log-store snapshot captures, which read every node, use
   this.)
4. While a keyed event executes concurrently, its outward side effects —
   ``Simulator.schedule`` calls and ``Network.send`` dispatches — are not
   applied immediately: they are appended to a per-event effect buffer (a
   thread-confined queue, so no locks are needed on the hot path) and
   **merged after the wave in event-sequence order** on the coordinating
   thread.

Because in serial execution an event's side effects all land before the next
event's (and same-instant events never observe one another's queue pushes),
the deferred merge reproduces the serial heap contents, sequence numbering,
message ordering and traffic statistics *bit for bit*.  Every backend is
therefore indistinguishable from :class:`SerialBackend` on store snapshots,
provenance tables, message/event counts and query answers — the equivalence
suite (``tests/property/test_property_backends.py``) sweeps backends × shard
counts to pin this.

Backend selection is uniform across the API surface: pass ``backend=`` /
``backend_workers=`` to :class:`~repro.engine.runtime.NetTrailsRuntime`, or
set the ``NETTRAILS_BACKEND`` environment variable (``serial`` | ``thread``
| ``asyncio`` | ``process``) to change the default process-wide — the CI
property matrix runs the whole suite under each value.  The companion
``NETTRAILS_BACKEND_WORKERS`` variable supplies the default worker count the
same way (:func:`default_backend_workers`); an explicit ``backend_workers=``
argument always wins.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple, Type, Union

from repro.errors import EngineError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (simulator imports us)
    from repro.engine.simulator import Simulator, _ScheduledEvent


#: Environment variable consulted when no explicit backend is requested.
BACKEND_ENV_VAR = "NETTRAILS_BACKEND"

#: Environment variable supplying the default worker count (parity with
#: ``backend_workers=``); unset/empty means each backend's built-in default.
BACKEND_WORKERS_ENV_VAR = "NETTRAILS_BACKEND_WORKERS"


def default_worker_count() -> int:
    """The concurrent backends' built-in worker-pool size."""
    return min(8, os.cpu_count() or 2)


def default_backend_workers() -> Optional[int]:
    """``NETTRAILS_BACKEND_WORKERS`` as an int, or ``None`` when unset.

    Same contract as every other ``NETTRAILS_*`` hook: unset or empty means
    the default (here: ``None``, i.e. the backend's own default worker
    count), a well-formed value applies, and a malformed one — not an
    integer, or < 1 — raises :class:`~repro.errors.EngineError` loudly at
    construction time rather than being silently ignored.
    """
    raw = os.environ.get(BACKEND_WORKERS_ENV_VAR, "").strip()
    if not raw:
        return None
    try:
        workers = int(raw)
    except ValueError:
        raise EngineError(
            f"{BACKEND_WORKERS_ENV_VAR}={raw!r} is not an integer worker count"
        )
    if workers < 1:
        raise EngineError(f"{BACKEND_WORKERS_ENV_VAR} must be >= 1, got {workers}")
    return workers


class ExecutionBackend:
    """Strategy for executing the events of one virtual-time wave."""

    #: Short name used by :func:`resolve_backend` and ``NETTRAILS_BACKEND``.
    name = "abstract"

    #: The runtime's observability bundle (``None`` while the knob is off);
    #: bound by :meth:`attach`.  Purely observational — nothing here may
    #: influence event ordering or the deferred side-effect merge.
    _obs = None

    def execute_wave(self, simulator: "Simulator", limit: Optional[int] = None) -> int:
        """Execute (up to *limit* of) the events at the earliest queued time.

        Returns the number of events executed.  Implementations must preserve
        the serial observable semantics described in the module docstring.
        """
        raise NotImplementedError

    def attach(self, runtime: object) -> None:
        """Bind the backend to a fully-built runtime (hook for subclasses).

        Called once by :class:`~repro.engine.runtime.NetTrailsRuntime` after
        its nodes and links exist but before any event has executed (and
        before durable mode opens its WAL).  The base implementation only
        adopts the runtime's observability bundle; the process-pool backend
        additionally forks its workers here so they inherit a byte-identical
        copy of every store.
        """
        self._bind_obs(getattr(runtime, "obs", None))

    def _bind_obs(self, obs) -> None:
        """Adopt an observability bundle and pre-resolve the wave instruments."""
        self._obs = obs
        if obs is not None:
            self._m_waves = obs.registry.counter(
                "wave.waves", "Same-instant event waves executed"
            )
            self._m_wave_events = obs.registry.counter(
                "wave.events", "Events executed across all waves"
            )
            self._m_wave_groups = obs.registry.histogram(
                "wave.occupancy",
                "Concurrent serialization-key groups per multi-group wave segment",
                buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0),
            )

    def close(self) -> None:
        """Release worker resources (threads, event loops, processes); idempotent."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SerialBackend(ExecutionBackend):
    """The deterministic reference mode: one event at a time, in order."""

    name = "serial"

    def __init__(self, workers: Optional[int] = None):
        # ``workers`` is accepted (and ignored) so every backend shares one
        # constructor signature; serial execution has nothing to fan out.
        self.workers = 1

    def execute_wave(self, simulator: "Simulator", limit: Optional[int] = None) -> int:
        return 1 if simulator.step() else 0


class _ConcurrentBackend(ExecutionBackend):
    """Shared wave partitioning and deterministic effect merging.

    Subclasses provide :meth:`_map`, which runs one callable per key group
    with whatever concurrency mechanism they implement.
    """

    def __init__(self, workers: Optional[int] = None):
        if workers is not None and workers < 1:
            raise EngineError(f"{type(self).__name__} needs >= 1 worker, got {workers}")
        self.workers = workers or default_worker_count()

    # -- wave execution -----------------------------------------------------

    def execute_wave(self, simulator: "Simulator", limit: Optional[int] = None) -> int:
        wave = simulator._take_wave(limit)
        if self._obs is not None and wave:
            self._m_waves.inc()
            self._m_wave_events.inc(len(wave))
        index = 0
        while index < len(wave):
            if wave[index].key is None:
                # Barrier event: may touch global state (e.g. snapshot every
                # node), so it runs alone between concurrent segments.
                wave[index].callback()
                index += 1
                continue
            end = index
            while end < len(wave) and wave[end].key is not None:
                end += 1
            self._execute_segment(simulator, wave[index:end])
            index = end
        return len(wave)

    def _execute_segment(self, simulator: "Simulator", events: Sequence["_ScheduledEvent"]) -> None:
        groups: Dict[object, List["_ScheduledEvent"]] = {}
        for event in events:
            groups.setdefault(event.key, []).append(event)
        if self._obs is not None and len(groups) > 1:
            self._m_wave_groups.observe(len(groups))
        if len(groups) == 1:
            # One serialization domain (e.g. a single-node topology): running
            # inline *is* the serial order, no deferral machinery needed.
            for event in events:
                event.callback()
            return

        def run_group(
            group: List["_ScheduledEvent"],
        ) -> List[Tuple[int, List[Callable[[], None]]]]:
            finished = []
            for event in group:
                buffer: List[Callable[[], None]] = []
                simulator._execute_event_deferred(event, buffer)
                finished.append((event.sequence, buffer))
            return finished

        results = self._map(run_group, list(groups.values()))
        # The deterministic merge: flush every deferred side effect (schedule
        # calls, network sends) in the order the events were *popped*, which
        # is the order serial execution would have applied them in.
        pending = [pair for result in results for pair in result]
        pending.sort(key=lambda pair: pair[0])
        for _, buffer in pending:
            for thunk in buffer:
                thunk()

    def _map(self, fn: Callable, groups: List) -> List:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(workers={self.workers})"


class ThreadPoolBackend(_ConcurrentBackend):
    """Drain independent nodes' same-instant events on a thread pool.

    The pool is created lazily (a run that never produces a multi-key wave
    never spawns a thread) and released by :meth:`close` — reached through
    ``NetTrailsRuntime.close()`` or the runtime's context manager.
    """

    name = "thread"

    def __init__(self, workers: Optional[int] = None):
        super().__init__(workers)
        self._pool = None

    def _map(self, fn: Callable, groups: List) -> List:
        # _execute_segment runs single-group segments inline, so this is
        # only reached with >= 2 groups to overlap.
        if self._pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="nettrails-wave"
            )
        return list(self._pool.map(fn, groups))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class AsyncioBackend(_ConcurrentBackend):
    """The thread-pool scheduling contract surfaced through asyncio.

    A persistent event loop runs in one daemon thread; every key group of a
    wave becomes an awaitable (``loop.run_in_executor``) and the wave is an
    ``asyncio.gather`` over them.  This is the integration point for hosting
    the engine inside an async application (the group callables themselves
    stay synchronous — they execute evaluator code).
    """

    name = "asyncio"

    def __init__(self, workers: Optional[int] = None):
        super().__init__(workers)
        self._loop = None
        self._loop_thread = None
        self._pool = None

    def _ensure_loop(self) -> None:
        if self._loop is not None:
            return
        import asyncio
        import threading
        from concurrent.futures import ThreadPoolExecutor

        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="nettrails-asyncio"
        )
        loop = asyncio.new_event_loop()
        thread = threading.Thread(target=loop.run_forever, name="nettrails-loop", daemon=True)
        thread.start()
        self._loop = loop
        self._loop_thread = thread

    def _map(self, fn: Callable, groups: List) -> List:
        import asyncio

        self._ensure_loop()

        async def gather_groups():
            loop = asyncio.get_running_loop()
            futures = [loop.run_in_executor(self._pool, fn, group) for group in groups]
            return await asyncio.gather(*futures)

        return list(
            asyncio.run_coroutine_threadsafe(gather_groups(), self._loop).result()
        )

    def close(self) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._loop_thread.join()
            self._loop.close()
            self._loop = None
            self._loop_thread = None
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class _WorkerChannel:
    """One worker pipe: request coalescing, delta codec and byte accounting.

    Coordinator threads that want a drain enqueue ``(node_id, updates)`` and
    then contend for the pipe lock.  The first thread in becomes the
    **leader**: it snapshots everything queued so far — its own request plus
    any that piled up behind the in-flight round-trip — ships them to the
    worker as a single envelope, and distributes the per-drain traces back.
    A thread that finds its request already served by an earlier leader
    returns immediately.  Same-worker drains of a wave therefore collapse
    into one pipe round-trip (two pickles, two wakeups) instead of one each,
    and the shared :class:`~repro.engine.procpool.TraceCodec` tables stay in
    lockstep because every encode/decode happens under the pipe lock in
    envelope order.
    """

    def __init__(self, process, conn, trace_delta: bool, obs=None):
        import threading

        self.process = process
        self.conn = conn
        self.trace_delta = trace_delta
        self.obs = obs
        self._codec = None
        self._pipe_lock = threading.Lock()
        self._queue_lock = threading.Lock()
        self._pending: List[list] = []  # [node_id, updates, result, error, done, trace_ctx]
        # Transport statistics (reads are snapshots; mutated under _pipe_lock).
        self.request_bytes = 0
        self.reply_bytes = 0
        self.envelopes = 0
        self.drains = 0

    def request(self, node_id: object, updates: List, ctx: Optional[tuple] = None) -> List[tuple]:
        """Ship one drain request, possibly riding another thread's envelope.

        *ctx* is the coordinator's ambient ``(trace_id, span_id)`` for this
        drain (``None`` while tracing is off); it rides the envelope so the
        worker can parent its drain span correctly.
        """
        entry = [node_id, updates, None, None, False, ctx]
        with self._queue_lock:
            self._pending.append(entry)
        with self._pipe_lock:
            if not entry[4]:
                with self._queue_lock:
                    batch, self._pending = self._pending, []
                self._round_trip(batch)
        if entry[3] is not None:
            raise EngineError(entry[3])
        return entry[2]

    def _round_trip(self, batch: List[list]) -> None:
        from repro.engine.procpool import TraceCodec, dump_envelope, load_envelope

        if self.trace_delta:
            if self._codec is None:
                self._codec = TraceCodec()
            codec = self._codec
            # The trace context only rides along when present, so envelope
            # bytes are unchanged while tracing is off.
            items = [
                (codec._enc_str(entry[0]), codec.encode_updates(entry[1]))
                if entry[5] is None
                else (codec._enc_str(entry[0]), codec.encode_updates(entry[1]), entry[5])
                for entry in batch
            ]
            envelope = ("drains", items)
        else:
            envelope = (
                "raw",
                [
                    (entry[0], entry[1]) if entry[5] is None else (entry[0], entry[1], entry[5])
                    for entry in batch
                ],
            )
        blob = dump_envelope(envelope)
        try:
            self.conn.send_bytes(blob)
            reply_blob = self.conn.recv_bytes()
        except (EOFError, OSError) as exc:
            message = (
                f"process backend worker (pid {self.process.pid}) died while "
                f"draining nodes {[entry[0] for entry in batch]!r}; the in-flight "
                "wave is lost — rebuild the runtime (durable mode replays the WAL)"
            )
            if self.obs is not None:
                self.obs.record_event(
                    "worker_error",
                    pid=self.process.pid,
                    error="worker died (pipe closed)",
                    nodes=[repr(entry[0]) for entry in batch],
                )
            for entry in batch:
                entry[3] = message
                entry[4] = True
            raise EngineError(message) from exc
        self.request_bytes += len(blob)
        self.reply_bytes += len(reply_blob)
        self.envelopes += 1
        self.drains += len(batch)
        status, payload = load_envelope(reply_blob)
        if status != "ok":
            message = (
                f"process backend worker (pid {self.process.pid}) failed draining "
                f"nodes {[entry[0] for entry in batch]!r}: {payload}"
            )
            if self.obs is not None:
                self.obs.record_event(
                    "worker_error",
                    pid=self.process.pid,
                    error=str(payload),
                    nodes=[repr(entry[0]) for entry in batch],
                )
            for entry in batch:
                entry[3] = message
                entry[4] = True
            raise EngineError(message)
        if self.trace_delta:
            traces = [self._codec.decode_trace(trace_enc) for trace_enc in payload]
        else:
            traces = payload
        for entry, trace in zip(batch, traces):
            entry[2] = trace
            entry[4] = True


class ProcessPoolBackend(ThreadPoolBackend):
    """True multi-core execution: forked worker processes own node drains.

    :meth:`attach` — called by the runtime constructor once nodes and links
    exist — pins every logical node to one of ``workers`` forked processes
    (stable seeded CRC32 of the node id, so the same topology always maps
    the same way) and installs a remote-drain hook on each node.  A drain
    then ships the node's pending queue to the owning worker, which runs the
    full evaluator cascade against its forked copy of the store and returns
    an ordered trace of store batches and rule effects; the coordinator
    mirrors the trace so the authoritative store, provenance graph and
    outgoing traffic stay bit-identical to a local drain (see
    :mod:`repro.engine.procpool` for the worker side and the divergence
    check).

    Wave scheduling is inherited from :class:`ThreadPoolBackend`: each key
    group of a wave runs on a coordinator thread, but the heavy lifting of a
    drain happens in the worker process while the coordinator thread merely
    blocks on the pipe (releasing the GIL) — which is what lets distinct
    nodes' drains use distinct cores.  Requests to the same worker are
    serialized by the per-worker channel, which coalesces every drain queued
    behind an in-flight round-trip into one envelope and delta-encodes the
    payloads (see :class:`_WorkerChannel` and ``trace_delta``); the deferred
    side-effect merge is byte-for-byte the thread backend's.

    If a worker process dies (killed, OOM, crashed), the next drain request
    routed to it raises :class:`~repro.errors.EngineError` loudly — the
    in-flight wave cannot be recovered, so the runtime must be rebuilt
    (durable mode replays the WAL).  Without :meth:`attach` (a bare
    ``Simulator(backend=ProcessPoolBackend())``) no workers exist and the
    backend degrades gracefully to thread-pool behaviour.
    """

    name = "process"

    def __init__(self, workers: Optional[int] = None, seed: int = 0, trace_delta: bool = True):
        super().__init__(workers)
        #: Seed of the node→worker assignment hash (stable across runs).
        self.seed = seed
        #: When True (the default), drain requests and traces travel
        #: delta-encoded through a per-pipe :class:`~repro.engine.procpool.TraceCodec`
        #: and same-worker drains of a wave coalesce into one envelope.
        #: ``False`` is the ablation: plain pickled payloads (coalescing
        #: still applies — the knob isolates the codec's byte savings).
        self.trace_delta = trace_delta
        self._channels: List[_WorkerChannel] = []
        self._assignment: Dict[object, int] = {}
        self._attached = False

    # -- worker management -------------------------------------------------------

    def assignment_for(self, node_ids: Sequence[object]) -> Dict[object, int]:
        """The stable node→worker mapping, balanced by construction.

        Nodes are ordered by a seeded CRC32 of their id (a stable
        pseudo-random shuffle — same seed and node set, same order) and
        dealt round-robin, so worker loads never differ by more than one
        node regardless of how the hash happens to cluster.
        """
        import zlib

        def shuffle_key(node_id: object) -> tuple:
            return (zlib.crc32(repr((self.seed, node_id)).encode("utf-8")), repr(node_id))

        ordered = sorted(node_ids, key=shuffle_key)
        return {node_id: index % self.workers for index, node_id in enumerate(ordered)}

    def attach(self, runtime: object) -> None:
        import multiprocessing as mp

        if self._attached:
            raise EngineError(
                "a ProcessPoolBackend instance binds to one runtime; construct "
                "a fresh backend (or pass backend='process') per runtime"
            )
        self._attached = True
        self._bind_obs(getattr(runtime, "obs", None))
        nodes = getattr(runtime, "nodes", None)
        if not nodes:
            return
        if "fork" not in mp.get_all_start_methods():  # pragma: no cover - POSIX-only repo
            raise EngineError(
                "the process backend requires the fork start method (POSIX); "
                "use backend='thread' on this platform"
            )
        from repro.engine.procpool import worker_main

        context = mp.get_context("fork")
        self._assignment = self.assignment_for(list(nodes))
        owned_by: Dict[int, List[object]] = {index: [] for index in range(self.workers)}
        for node_id, index in self._assignment.items():
            owned_by[index].append(node_id)
        for index in range(self.workers):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=worker_main,
                args=(child_conn, dict(nodes), owned_by[index]),
                name=f"nettrails-worker-{index}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._channels.append(
                _WorkerChannel(process, parent_conn, self.trace_delta, obs=self._obs)
            )
        for node_id, node in nodes.items():
            node._remote_drain = self._make_remote_drain(self._assignment[node_id])

    def _make_remote_drain(self, index: int) -> Callable:
        def remote_drain(node) -> None:
            updates = list(node._queue)
            node._queue.clear()
            if not updates:
                return
            ctx = None
            obs = self._obs
            if obs is not None and obs.tracing:
                current = obs.tracer.current()
                if current is not None:
                    ctx = current.as_tuple()
            trace = self._channels[index].request(node.id, updates, ctx)
            node._mirror_trace(trace)

        return remote_drain

    def transport_stats(self) -> Dict[str, int]:
        """Aggregate pipe-transport statistics across all worker channels.

        ``drains`` counts drain requests, ``envelopes`` the pipe round-trips
        they were packed into (coalescing makes ``envelopes <= drains``);
        ``request_bytes`` / ``reply_bytes`` are the pickled envelope sizes in
        each direction.
        """
        stats = {"drains": 0, "envelopes": 0, "request_bytes": 0, "reply_bytes": 0}
        for channel in self._channels:
            stats["drains"] += channel.drains
            stats["envelopes"] += channel.envelopes
            stats["request_bytes"] += channel.request_bytes
            stats["reply_bytes"] += channel.reply_bytes
        return stats

    def close(self) -> None:
        from repro.engine.procpool import dump_envelope

        channels, self._channels = self._channels, []
        for channel in channels:
            try:
                channel.conn.send_bytes(dump_envelope(None))
            except OSError:  # worker already gone / pipe closed
                pass
            channel.conn.close()
            channel.process.join(timeout=5.0)
            if channel.process.is_alive():  # pragma: no cover - stuck worker backstop
                channel.process.terminate()
                channel.process.join(timeout=1.0)
        super().close()


#: Registry used by :func:`resolve_backend` and the ``NETTRAILS_BACKEND`` hook.
BACKENDS: Dict[str, Type[ExecutionBackend]] = {
    SerialBackend.name: SerialBackend,
    ThreadPoolBackend.name: ThreadPoolBackend,
    AsyncioBackend.name: AsyncioBackend,
    ProcessPoolBackend.name: ProcessPoolBackend,
}

BackendSpec = Union[None, str, ExecutionBackend]


def default_backend_name() -> str:
    """The backend name used when none is requested: ``NETTRAILS_BACKEND`` or serial."""
    return os.environ.get(BACKEND_ENV_VAR, "").strip() or SerialBackend.name


def resolve_backend(spec: BackendSpec = None, workers: Optional[int] = None) -> ExecutionBackend:
    """Turn a backend specification into an :class:`ExecutionBackend` instance.

    *spec* may be an instance (returned as-is; *workers* must then be unset),
    a registered name (``"serial"``, ``"thread"``, ``"asyncio"``,
    ``"process"``), or ``None`` — which consults the ``NETTRAILS_BACKEND``
    environment variable and falls back to serial.  ``workers`` bounds the
    worker pool of the concurrent backends; when ``None`` the
    ``NETTRAILS_BACKEND_WORKERS`` variable is consulted and the backends'
    built-in default (``min(8, cpu_count)``) applies last.  The serial
    backend ignores it, and an already-constructed instance is returned
    untouched (its own configuration wins over the environment).
    """
    if isinstance(spec, ExecutionBackend):
        if workers is not None:
            raise EngineError(
                "backend_workers cannot be combined with an already-constructed "
                f"backend instance ({spec!r}); configure the instance instead"
            )
        return spec
    if workers is None:
        workers = default_backend_workers()
    name = spec if spec is not None else default_backend_name()
    if name not in BACKENDS:
        raise EngineError(
            f"unknown execution backend {name!r}; known backends: {sorted(BACKENDS)}"
        )
    return BACKENDS[name](workers=workers)
