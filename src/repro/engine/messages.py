"""Message types exchanged between nodes of the simulated distributed system.

All inter-node communication — derived-tuple shipment, provenance-query
traversal, snapshot uploads — travels as :class:`Message` objects through
:class:`repro.engine.network.Network`, which records per-category statistics.
This is what lets the benchmarks report "network traffic" for provenance
queries with and without the ExSPAN optimisations.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.engine.tuples import SLOTTED, Fact

_message_counter = itertools.count(1)

#: Message categories used for traffic accounting.
CATEGORY_TUPLE = "tuple"
CATEGORY_PROVENANCE_QUERY = "provenance-query"
CATEGORY_PROVENANCE_REPLY = "provenance-reply"
CATEGORY_SNAPSHOT = "snapshot"
CATEGORY_CONTROL = "control"


@dataclass(frozen=True, **SLOTTED)
class ProvenanceTag:
    """Provenance annotation carried by a tuple-delta message.

    It identifies the rule execution that produced the shipped tuple: the
    rule name, the node where the rule fired and the rule-execution vertex id
    (RID).  The receiving node records ``prov(@Receiver, VID, RID, ExecNode)``
    from it.
    """

    rule_name: str
    program_name: str
    exec_node: object
    rid: str

    def __repr__(self) -> str:
        # Byte-identical to the dataclass-generated repr, minus its
        # recursion-guard wrapper: message size accounting reprs every
        # shipped payload, so the guard shows up on the hot path.
        return (
            f"{self.__class__.__qualname__}(rule_name={self.rule_name!r}, "
            f"program_name={self.program_name!r}, exec_node={self.exec_node!r}, "
            f"rid={self.rid!r})"
        )


@dataclass(frozen=True, **SLOTTED)
class TupleDelta:
    """Payload announcing the insertion (+1) or retraction (-1) of a derivation."""

    sign: int
    fact: Fact
    derivation_id: str
    provenance: Optional[ProvenanceTag] = None

    def __str__(self) -> str:
        symbol = "+" if self.sign > 0 else "-"
        return f"{symbol}{self.fact} [{self.derivation_id}]"

    def __repr__(self) -> str:
        # See ProvenanceTag.__repr__: same bytes as the dataclass repr,
        # without the per-call recursion-guard wrapper.
        return (
            f"{self.__class__.__qualname__}(sign={self.sign!r}, "
            f"fact={self.fact!r}, derivation_id={self.derivation_id!r}, "
            f"provenance={self.provenance!r})"
        )


@dataclass(frozen=True, **SLOTTED)
class TupleDeltaBatch:
    """A batch of tuple deltas shipped to one destination in a single message.

    Batch-first execution groups every delta a node produces for the same
    destination within one evaluation batch into a single network message:
    the receiver applies the whole batch in one store/evaluator pass, which
    is what makes the batched hot path cheaper end to end (fewer messages,
    fewer simulator events, one provenance version bump per batch).
    """

    deltas: Tuple[TupleDelta, ...]

    def __len__(self) -> int:
        return len(self.deltas)

    def __str__(self) -> str:
        return f"batch[{', '.join(str(delta) for delta in self.deltas)}]"

    def __repr__(self) -> str:
        # See ProvenanceTag.__repr__: same bytes as the dataclass repr,
        # without the per-call recursion-guard wrapper.
        return f"{self.__class__.__qualname__}(deltas={self.deltas!r})"


@dataclass(frozen=True)
class Message:
    """A point-to-point message with a category used for traffic accounting."""

    sender: object
    receiver: object
    category: str
    payload: object
    message_id: int = field(default_factory=lambda: next(_message_counter))

    def size_estimate(self) -> int:
        """A rough, deterministic byte-size estimate used in traffic statistics."""
        return len(repr(self.payload)) + 24

    def __str__(self) -> str:
        return f"[{self.category}] {self.sender} -> {self.receiver}: {self.payload}"
