"""Compilation of NDlog programs into an executable form.

Compilation performs, in order:

1. validation (safety, location specifiers, stratification, localizability),
2. separation of ordinary rules from "maybe" rules (the latter are only used
   by the legacy-application integration layer, never by the fixpoint
   evaluator),
3. the localization rewrite, so every remaining rule is node-local,
4. construction of the relation catalog (location indices, primary keys),
5. construction of the semi-naive trigger indexes used by the per-node
   evaluator: for every relation, which (rule, delta position) pairs must be
   re-evaluated when that relation changes, and which rules mention the
   relation under negation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import NDlogValidationError
from repro.ndlog.ast import Program, Rule, Variable
from repro.ndlog.functions import FunctionRegistry, default_registry
from repro.ndlog.localization import localize_program
from repro.ndlog.validation import validate_program
from repro.engine.catalog import Catalog


@dataclass
class CompiledProgram:
    """An NDlog program ready for distributed execution."""

    name: str
    source: Program
    localized: Program
    maybe_rules: List[Rule]
    catalog: Catalog
    registry: FunctionRegistry
    #: relation -> list of (rule, index into rule.positive_literals) triggered
    #: when a fact of that relation is inserted or deleted.
    delta_index: Dict[str, List[Tuple[Rule, int]]] = field(default_factory=dict)
    #: relation -> rules that mention the relation under negation.
    negation_index: Dict[str, List[Rule]] = field(default_factory=dict)
    warnings: List[str] = field(default_factory=list)

    @property
    def rules(self) -> List[Rule]:
        """The executable (localized, non-maybe) rules."""
        return list(self.localized.rules)

    def base_relations(self) -> List[str]:
        """Relations that are never derived (i.e. must be fed as base tuples)."""
        return sorted(self.localized.base_relations())

    def derived_relations(self) -> List[str]:
        return sorted(self.localized.head_relations())


def _check_aggregate_rules(localized: Program) -> None:
    """Aggregate rules must aggregate at the node where the group lives.

    After localization every rule body is at a single location variable; for
    an aggregate rule we additionally require the head's location specifier to
    be that same variable, so that the aggregation operator runs where its
    inputs are stored (this matches how MINCOST, path-vector etc. are
    written).
    """
    for rule in localized.rules:
        if not rule.has_aggregate:
            continue
        body_locations = rule.location_variables()
        head_term = rule.head.location_term
        if len(body_locations) != 1 or not isinstance(head_term, Variable):
            raise NDlogValidationError(
                f"aggregate rule {rule.name!r} must be local with a variable head location"
            )
        (body_location,) = tuple(body_locations)
        if head_term.name != body_location:
            raise NDlogValidationError(
                f"aggregate rule {rule.name!r}: the head location {head_term.name!r} must "
                f"match the body location {body_location!r} so that aggregation is local; "
                "split the rule into a local aggregation plus a shipping rule"
            )


def compile_program(
    program: Program,
    registry: Optional[FunctionRegistry] = None,
    validate: bool = True,
) -> CompiledProgram:
    """Compile *program* for execution by :class:`repro.engine.node.Node`."""
    registry = registry or default_registry()

    warnings: List[str] = []
    if validate:
        warnings = validate_program(program, registry)

    ordinary = Program(name=program.name, materialized=dict(program.materialized))
    maybe_rules: List[Rule] = []
    for rule in program.rules:
        if rule.is_maybe:
            maybe_rules.append(rule)
        else:
            ordinary.add_rule(rule)

    if ordinary.rules:
        localized = localize_program(ordinary)
    else:
        localized = ordinary
    _check_aggregate_rules(localized)

    catalog = Catalog.from_program(localized)
    # "maybe" rules also contribute schema information (e.g. outputRoute).
    for rule in maybe_rules:
        maybe_only = Program(name=f"{program.name}__maybe")
        maybe_only.add_rule(rule)
        catalog.add_program(maybe_only)

    delta_index: Dict[str, List[Tuple[Rule, int]]] = {}
    negation_index: Dict[str, List[Rule]] = {}
    for rule in localized.rules:
        for index, literal in enumerate(rule.positive_literals):
            delta_index.setdefault(literal.atom.relation, []).append((rule, index))
        for literal in rule.negative_literals:
            rules = negation_index.setdefault(literal.atom.relation, [])
            if rule not in rules:
                rules.append(rule)

    return CompiledProgram(
        name=program.name,
        source=program,
        localized=localized,
        maybe_rules=maybe_rules,
        catalog=catalog,
        registry=registry,
        delta_index=delta_index,
        negation_index=negation_index,
        warnings=warnings,
    )
