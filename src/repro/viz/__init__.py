"""Visualization substitutes for the RapidNet and provenance visualizers.

The demonstration uses two GUIs: the RapidNet topology visualizer and a
hypertree-based provenance visualizer (provenance rendered on a hyperbolic
plane, with focus changes and smooth transitions).  This package provides the
non-interactive equivalents:

* :mod:`repro.viz.hypertree` — the hyperbolic (Poincaré-disk) layout
  algorithm used by hypertree viewers, including the Möbius-transform
  re-focusing that underlies "changing focus with smooth transitions";
* :mod:`repro.viz.provenance_viz` — Graphviz DOT / JSON / ASCII renderings of
  provenance graphs, including the three Figure-2 zoom levels (system-wide
  snapshot, per-relation view, single-tuple close-up);
* :mod:`repro.viz.topology_viz` — DOT / ASCII renderings of the network
  topology with per-link statistics.
"""

from repro.viz.hypertree import HypertreeLayout, refocus
from repro.viz.provenance_viz import (
    exploration_views,
    provenance_to_dot,
    provenance_to_json,
    render_ascii_tree,
)
from repro.viz.topology_viz import topology_summary, topology_to_dot

__all__ = [
    "HypertreeLayout",
    "refocus",
    "exploration_views",
    "provenance_to_dot",
    "provenance_to_json",
    "render_ascii_tree",
    "topology_summary",
    "topology_to_dot",
]
