"""Hyperbolic (hypertree) layout for provenance graphs.

The provenance visualizer of the paper "is based on hypertrees": the
provenance graph is presented on a hyperbolic plane, which gives the vertex
in focus plenty of space while exponentially shrinking its far-away context,
and users navigate by re-focusing.

This module reproduces the geometry:

* :class:`HypertreeLayout` assigns every vertex of a provenance DAG (treated
  as a tree rooted at the queried tuple) a position inside the unit Poincaré
  disk, recursively subdividing angular wedges and stepping a fixed
  hyperbolic distance per tree level;
* :func:`refocus` applies the Möbius transformation that moves an arbitrary
  vertex to the centre of the disk — the mathematical core of "changing
  focus with smooth transitions" (animating the transformation parameter
  from 0 to 1 yields the smooth transition itself, see
  :func:`transition_positions`).
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass
from typing import Dict, List

from repro.errors import VisualizationError
from repro.core.graph import ProvenanceGraph


@dataclass(frozen=True)
class PlacedVertex:
    """One vertex with its position in the unit disk."""

    vertex_id: str
    kind: str            # "tuple" or "rule-exec"
    label: str
    x: float
    y: float
    depth: int

    @property
    def radius(self) -> float:
        return math.hypot(self.x, self.y)


def _poincare_point(angle: float, hyperbolic_radius: float) -> complex:
    """Convert polar hyperbolic coordinates to a point in the unit disk."""
    euclidean_radius = math.tanh(hyperbolic_radius / 2.0)
    return cmath.rect(euclidean_radius, angle)


class HypertreeLayout:
    """Layout of a provenance graph (rooted at a tuple vertex) on the Poincaré disk."""

    def __init__(self, level_distance: float = 1.2):
        if level_distance <= 0:
            raise VisualizationError("level_distance must be positive")
        self.level_distance = level_distance

    def compute(self, graph: ProvenanceGraph, root_vid: str) -> Dict[str, PlacedVertex]:
        """Compute positions for every vertex reachable from *root_vid*.

        The DAG is unfolded as a tree: a vertex reachable through several
        paths is placed where it is first visited.  The root sits at the
        centre of the disk.
        """
        if not graph.has_tuple(root_vid):
            raise VisualizationError(f"root vertex {root_vid!r} is not in the graph")
        placed: Dict[str, PlacedVertex] = {}

        def place_tuple(vid: str, angle_lo: float, angle_hi: float, depth: int) -> None:
            if vid in placed:
                return
            vertex = graph.tuple_vertex(vid)
            angle = (angle_lo + angle_hi) / 2.0
            point = _poincare_point(angle, depth * self.level_distance) if depth else complex(0, 0)
            placed[vid] = PlacedVertex(
                vertex_id=vid,
                kind="tuple",
                label=vertex.label,
                x=point.real,
                y=point.imag,
                depth=depth,
            )
            derivations = [d for d in graph.derivations_of(vid) if d.rid not in placed]
            if not derivations:
                return
            span = (angle_hi - angle_lo) / len(derivations)
            for index, derivation in enumerate(derivations):
                lo = angle_lo + index * span
                place_exec(derivation.rid, lo, lo + span, depth + 1)

        def place_exec(rid: str, angle_lo: float, angle_hi: float, depth: int) -> None:
            if rid in placed:
                return
            vertex = graph.rule_exec_vertex(rid)
            angle = (angle_lo + angle_hi) / 2.0
            point = _poincare_point(angle, depth * self.level_distance)
            placed[rid] = PlacedVertex(
                vertex_id=rid,
                kind="rule-exec",
                label=vertex.label,
                x=point.real,
                y=point.imag,
                depth=depth,
            )
            children = [child.vid for child in graph.inputs_of(rid) if child.vid not in placed]
            if not children:
                return
            span = (angle_hi - angle_lo) / len(children)
            for index, child_vid in enumerate(children):
                lo = angle_lo + index * span
                place_tuple(child_vid, lo, lo + span, depth + 1)

        place_tuple(root_vid, 0.0, 2.0 * math.pi, 0)
        return placed


def _mobius(point: complex, center: complex) -> complex:
    """The Möbius transformation taking *center* to the origin of the disk."""
    return (point - center) / (1 - center.conjugate() * point)


def refocus(
    positions: Dict[str, PlacedVertex], focus_id: str
) -> Dict[str, PlacedVertex]:
    """Re-centre the layout on *focus_id* (the hypertree "click to focus" action)."""
    if focus_id not in positions:
        raise VisualizationError(f"cannot focus on unknown vertex {focus_id!r}")
    center = complex(positions[focus_id].x, positions[focus_id].y)
    refocused: Dict[str, PlacedVertex] = {}
    for vertex_id, placed in positions.items():
        moved = _mobius(complex(placed.x, placed.y), center)
        refocused[vertex_id] = PlacedVertex(
            vertex_id=placed.vertex_id,
            kind=placed.kind,
            label=placed.label,
            x=moved.real,
            y=moved.imag,
            depth=placed.depth,
        )
    return refocused


def transition_positions(
    positions: Dict[str, PlacedVertex], focus_id: str, steps: int = 5
) -> List[Dict[str, PlacedVertex]]:
    """Intermediate layouts for a smooth transition towards *focus_id*.

    Returns ``steps`` layouts; the last one equals :func:`refocus`'s result.
    Interpolating the Möbius parameter (rather than the positions) keeps every
    intermediate frame inside the unit disk, which is what makes hypertree
    transitions look smooth.
    """
    if steps < 1:
        raise VisualizationError("steps must be at least 1")
    if focus_id not in positions:
        raise VisualizationError(f"cannot focus on unknown vertex {focus_id!r}")
    target = complex(positions[focus_id].x, positions[focus_id].y)
    frames: List[Dict[str, PlacedVertex]] = []
    for step in range(1, steps + 1):
        center = target * (step / steps)
        frame: Dict[str, PlacedVertex] = {}
        for vertex_id, placed in positions.items():
            moved = _mobius(complex(placed.x, placed.y), center)
            frame[vertex_id] = PlacedVertex(
                vertex_id=placed.vertex_id,
                kind=placed.kind,
                label=placed.label,
                x=moved.real,
                y=moved.imag,
                depth=placed.depth,
            )
        frames.append(frame)
    return frames
