"""Renderings of provenance graphs: DOT, JSON, ASCII and the Figure-2 views.

These functions replace the interactive provenance visualizer of the
demonstration with deterministic text artefacts that tests can assert on and
that users can feed to Graphviz or a browser-based viewer.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import VisualizationError
from repro.core.graph import ProvenanceGraph


def _dot_escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def provenance_to_dot(graph: ProvenanceGraph, name: str = "provenance") -> str:
    """Render a provenance graph in Graphviz DOT format.

    Tuple vertices are boxes (double border for base tuples), rule-execution
    vertices are ellipses; edges follow the dataflow direction, from input
    tuples through rule executions to derived tuples.
    """
    lines = [f"digraph {name} {{", "  rankdir=BT;"]
    for vertex in graph.tuple_vertices():
        shape = "box"
        peripheries = 2 if vertex.is_base else 1
        lines.append(
            f'  "{_dot_escape(vertex.vid)}" [shape={shape}, peripheries={peripheries}, '
            f'label="{_dot_escape(vertex.label)}"];'
        )
    for vertex in graph.rule_exec_vertices():
        lines.append(
            f'  "{_dot_escape(vertex.rid)}" [shape=ellipse, style=filled, fillcolor=lightgrey, '
            f'label="{_dot_escape(vertex.label)}"];'
        )
    for vertex in graph.rule_exec_vertices():
        for child in graph.inputs_of(vertex.rid):
            lines.append(f'  "{_dot_escape(child.vid)}" -> "{_dot_escape(vertex.rid)}";')
        try:
            output = graph.output_of(vertex.rid)
        except Exception:  # pragma: no cover - defensive, output should exist
            continue
        lines.append(f'  "{_dot_escape(vertex.rid)}" -> "{_dot_escape(output.vid)}";')
    lines.append("}")
    return "\n".join(lines)


def provenance_to_json(graph: ProvenanceGraph) -> str:
    """Render a provenance graph as a JSON document (vertices + edges)."""
    payload: Dict[str, object] = {
        "tuples": [
            {
                "vid": vertex.vid,
                "relation": vertex.relation,
                "values": list(vertex.values),
                "location": str(vertex.location),
                "is_base": vertex.is_base,
            }
            for vertex in graph.tuple_vertices()
        ],
        "rule_executions": [
            {
                "rid": vertex.rid,
                "rule": vertex.rule_name,
                "program": vertex.program_name,
                "location": str(vertex.location),
                "inputs": [child.vid for child in graph.inputs_of(vertex.rid)],
                "output": graph.output_of(vertex.rid).vid,
            }
            for vertex in graph.rule_exec_vertices()
        ],
    }
    return json.dumps(payload, sort_keys=True, default=list)


def render_ascii_tree(
    graph: ProvenanceGraph, root_vid: str, max_depth: Optional[int] = None
) -> str:
    """Render the derivation tree of one tuple as indented ASCII text.

    This is the textual counterpart of zooming into a single tuple in the
    hypertree visualizer: every level shows either a tuple (with its
    attribute values and location) or a rule execution.
    """
    if not graph.has_tuple(root_vid):
        raise VisualizationError(f"unknown tuple vertex {root_vid!r}")
    lines: List[str] = []
    seen: set = set()

    def visit_tuple(vid: str, prefix: str, depth: int) -> None:
        vertex = graph.tuple_vertex(vid)
        marker = "[base] " if vertex.is_base else ""
        lines.append(f"{prefix}{marker}{vertex.label}")
        if max_depth is not None and depth >= max_depth:
            return
        if vid in seen:
            lines.append(f"{prefix}  (shared sub-derivation, shown above)")
            return
        seen.add(vid)
        for derivation in graph.derivations_of(vid):
            lines.append(f"{prefix}  <- {derivation.rule_name} @ {derivation.location}")
            for child in graph.inputs_of(derivation.rid):
                visit_tuple(child.vid, prefix + "     ", depth + 1)

    visit_tuple(root_vid, "", 0)
    return "\n".join(lines)


def exploration_views(
    graph: ProvenanceGraph, relation: str, values: Sequence[object]
) -> Dict[str, str]:
    """The three zoom levels of Figure 2 as text views.

    * ``snapshot`` — the system-wide provenance snapshot: how many tuple /
      rule-execution vertices exist, per relation and per node (Figure 2a);
    * ``table`` — all tuples of the selected relation with their locations
      (Figure 2b);
    * ``tuple`` — the close-up of one tuple instance: its attribute values,
      its location and its derivations (Figure 2c).
    """
    # -- snapshot view -------------------------------------------------------------
    per_relation: Dict[str, int] = {}
    per_location: Dict[str, int] = {}
    for vertex in graph.tuple_vertices():
        per_relation[vertex.relation] = per_relation.get(vertex.relation, 0) + 1
        per_location[str(vertex.location)] = per_location.get(str(vertex.location), 0) + 1
    snapshot_lines = [
        "System-wide provenance snapshot",
        f"  tuple vertices:          {graph.tuple_count}",
        f"  rule-execution vertices: {graph.rule_exec_count}",
        "  tuples per relation:",
    ]
    for name in sorted(per_relation):
        snapshot_lines.append(f"    {name}: {per_relation[name]}")
    snapshot_lines.append("  tuples per node:")
    for name in sorted(per_location):
        snapshot_lines.append(f"    {name}: {per_location[name]}")

    # -- table view -----------------------------------------------------------------
    rows = [vertex for vertex in graph.tuple_vertices() if vertex.relation == relation]
    table_lines = [f"Relation {relation} ({len(rows)} tuples)"]
    for vertex in sorted(rows, key=lambda v: repr(v.values)):
        table_lines.append(f"  {vertex.label}")

    # -- tuple close-up ----------------------------------------------------------------
    matches = graph.find_tuples(relation, tuple(values))
    if not matches:
        raise VisualizationError(
            f"tuple {relation}({', '.join(map(str, values))}) is not in the provenance graph"
        )
    target = matches[0]
    tuple_lines = [
        f"Tuple {target.relation}",
        f"  attributes: {list(target.values)}",
        f"  location:   {target.location}",
        f"  base tuple: {'yes' if target.is_base else 'no'}",
        f"  derivations ({len(graph.derivations_of(target.vid))}):",
    ]
    for derivation in graph.derivations_of(target.vid):
        inputs = ", ".join(child.label for child in graph.inputs_of(derivation.rid))
        tuple_lines.append(f"    {derivation.rule_name} @ {derivation.location} <- [{inputs}]")

    return {
        "snapshot": "\n".join(snapshot_lines),
        "table": "\n".join(table_lines),
        "tuple": "\n".join(tuple_lines),
    }
