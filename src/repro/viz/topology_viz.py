"""Renderings of the network topology (the RapidNet visualizer substitute)."""

from __future__ import annotations

from typing import Dict, Optional

from repro.engine.topology import Topology


def topology_to_dot(topology: Topology, name: Optional[str] = None) -> str:
    """Render a topology in Graphviz DOT format (undirected, costs as labels)."""
    graph_name = (name or topology.name).replace("-", "_").replace(".", "_")
    lines = [f"graph {graph_name} {{", "  layout=neato;"]
    for node in sorted(topology.nodes):
        lines.append(f'  "{node}" [shape=circle];')
    for (a, b), cost in sorted(topology.edges.items()):
        lines.append(f'  "{a}" -- "{b}" [label="{cost:g}"];')
    lines.append("}")
    return "\n".join(lines)


def topology_summary(topology: Topology, traffic: Optional[Dict[str, object]] = None) -> str:
    """A textual summary of the topology and (optionally) traffic statistics."""
    degrees = {node: len(topology.neighbors(node)) for node in topology.nodes}
    lines = [
        f"Topology {topology.name}",
        f"  nodes: {topology.node_count()}",
        f"  links: {topology.edge_count()}",
        f"  connected: {'yes' if topology.is_connected() else 'no'}",
    ]
    if degrees:
        average = sum(degrees.values()) / len(degrees)
        busiest = max(sorted(degrees), key=lambda node: degrees[node])
        lines.append(f"  average degree: {average:.2f}")
        lines.append(f"  highest-degree node: {busiest} ({degrees[busiest]} links)")
    if traffic:
        lines.append("  traffic:")
        lines.append(f"    messages: {traffic.get('messages', 0)}")
        lines.append(f"    bytes:    {traffic.get('bytes', 0)}")
        for category, count in sorted(dict(traffic.get("by_category", {})).items()):
            lines.append(f"    {category}: {count}")
    return "\n".join(lines)
