"""In-memory provenance graph model.

The paper (§2.2): *"Network provenance is modeled as an acyclic graph G(V,E).
The vertex set V consists of tuple vertices and rule execution vertices.
Each tuple vertex in the graph is either a base tuple or a computation
result, and each rule execution vertex represents an instance of a rule
execution based on a set of input tuples.  The edge set E represents
dataflows between tuple vertices and rule execution vertices."*

At runtime this graph only ever exists *partitioned across nodes* as the
``prov`` / ``ruleExec`` tables maintained by
:class:`repro.core.maintenance.ProvenanceEngine`.  The :class:`ProvenanceGraph`
in this module is the materialised, centralized view that the log store and
the visualizer assemble from those tables (or that a subgraph query returns),
plus the traversal helpers that analysis tasks build on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import ProvenanceError, UnknownVertexError


def reachable_closure(
    successors: Mapping[object, Iterable[object]], roots: Iterable[object]
) -> Set[object]:
    """The forward-reachability closure of *roots* over an explicit edge map.

    ``successors`` maps a vertex to the vertices one hop downstream; absent
    keys are sinks.  Vertices are plain hashable tokens, so the helper works
    equally for the centralized :class:`ProvenanceGraph` and for the
    partition-local ``("t", vid)`` / ``("x", rid)`` keys of the interval
    index — the tests use it as the offline oracle that
    :meth:`repro.core.interval_index.PartitionIntervalIndex.closure` must
    reproduce via range scans.  Roots are included in the result (a closure,
    not a strict-descendants set).
    """
    seen: Set[object] = set()
    stack = [root for root in roots]
    while stack:
        vertex = stack.pop()
        if vertex in seen:
            continue
        seen.add(vertex)
        stack.extend(successors.get(vertex, ()))
    return seen


@dataclass(frozen=True)
class TupleVertex:
    """A tuple vertex: a base tuple or a computation result, located at a node."""

    vid: str
    relation: str
    values: Tuple[object, ...]
    location: object
    is_base: bool = False

    @property
    def label(self) -> str:
        rendered = ", ".join(str(v) for v in self.values)
        return f"{self.relation}({rendered})@{self.location}"

    def __str__(self) -> str:
        kind = "base" if self.is_base else "derived"
        return f"[{kind} tuple {self.vid}] {self.label}"


@dataclass(frozen=True)
class RuleExecVertex:
    """A rule-execution vertex: one firing of a rule at a node."""

    rid: str
    rule_name: str
    program_name: str
    location: object

    @property
    def label(self) -> str:
        return f"{self.rule_name}@{self.location}"

    def __str__(self) -> str:
        return f"[rule exec {self.rid}] {self.label}"


class ProvenanceGraph:
    """A bipartite DAG of tuple vertices and rule-execution vertices.

    Edges follow the dataflow direction: input tuple -> rule execution ->
    output tuple.  ``parents``/``children`` are expressed in *derivation*
    terms: the parents of a tuple are the rule executions that derive it, and
    the children of a rule execution are its input tuples.
    """

    def __init__(self) -> None:
        self._tuples: Dict[str, TupleVertex] = {}
        self._rule_execs: Dict[str, RuleExecVertex] = {}
        # dataflow edges
        self._exec_inputs: Dict[str, List[str]] = {}    # rid -> [vid, ...] (inputs)
        self._exec_output: Dict[str, str] = {}          # rid -> vid (output tuple)
        self._tuple_derivations: Dict[str, List[str]] = {}  # vid -> [rid, ...]
        self._tuple_uses: Dict[str, List[str]] = {}     # vid -> [rid, ...] where it is an input

    # -- construction ----------------------------------------------------------

    def add_tuple(self, vertex: TupleVertex) -> TupleVertex:
        existing = self._tuples.get(vertex.vid)
        if existing is None:
            self._tuples[vertex.vid] = vertex
            return vertex
        if existing.is_base != vertex.is_base:
            # A tuple can be both a base tuple and derived (e.g. inserted and
            # also derivable); keep the derived flavour but remember base-ness.
            merged = TupleVertex(
                vid=existing.vid,
                relation=existing.relation,
                values=existing.values,
                location=existing.location,
                is_base=existing.is_base or vertex.is_base,
            )
            self._tuples[vertex.vid] = merged
            return merged
        return existing

    def add_rule_exec(
        self,
        vertex: RuleExecVertex,
        input_vids: Sequence[str],
        output_vid: str,
    ) -> RuleExecVertex:
        self._rule_execs[vertex.rid] = vertex
        self._exec_inputs[vertex.rid] = list(input_vids)
        self._exec_output[vertex.rid] = output_vid
        derivations = self._tuple_derivations.setdefault(output_vid, [])
        if vertex.rid not in derivations:
            derivations.append(vertex.rid)
        for vid in input_vids:
            uses = self._tuple_uses.setdefault(vid, [])
            if vertex.rid not in uses:
                uses.append(vertex.rid)
        return vertex

    def mark_base(self, vid: str) -> None:
        vertex = self.tuple_vertex(vid)
        self._tuples[vid] = TupleVertex(
            vid=vertex.vid,
            relation=vertex.relation,
            values=vertex.values,
            location=vertex.location,
            is_base=True,
        )

    # -- vertex access -----------------------------------------------------------

    def tuple_vertex(self, vid: str) -> TupleVertex:
        if vid not in self._tuples:
            raise UnknownVertexError(f"unknown tuple vertex {vid!r}")
        return self._tuples[vid]

    def rule_exec_vertex(self, rid: str) -> RuleExecVertex:
        if rid not in self._rule_execs:
            raise UnknownVertexError(f"unknown rule-execution vertex {rid!r}")
        return self._rule_execs[rid]

    def has_tuple(self, vid: str) -> bool:
        return vid in self._tuples

    def tuple_vertices(self) -> List[TupleVertex]:
        return [self._tuples[vid] for vid in sorted(self._tuples)]

    def rule_exec_vertices(self) -> List[RuleExecVertex]:
        return [self._rule_execs[rid] for rid in sorted(self._rule_execs)]

    def find_tuples(self, relation: str, values: Optional[Tuple[object, ...]] = None) -> List[TupleVertex]:
        """Find tuple vertices by relation name and (optionally) exact values."""
        result = []
        for vertex in self.tuple_vertices():
            if vertex.relation != relation:
                continue
            if values is not None and vertex.values != tuple(values):
                continue
            result.append(vertex)
        return result

    # -- edges -----------------------------------------------------------------------

    def derivations_of(self, vid: str) -> List[RuleExecVertex]:
        """Rule executions that derive the tuple *vid* (its provenance parents)."""
        return [self._rule_execs[rid] for rid in self._tuple_derivations.get(vid, [])]

    def inputs_of(self, rid: str) -> List[TupleVertex]:
        """Input tuples of the rule execution *rid*."""
        return [self._tuples[vid] for vid in self._exec_inputs.get(rid, []) if vid in self._tuples]

    def input_vids_of(self, rid: str) -> List[str]:
        return list(self._exec_inputs.get(rid, []))

    def output_of(self, rid: str) -> TupleVertex:
        vid = self._exec_output.get(rid)
        if vid is None:
            raise UnknownVertexError(f"rule execution {rid!r} has no recorded output")
        return self.tuple_vertex(vid)

    def uses_of(self, vid: str) -> List[RuleExecVertex]:
        """Rule executions that consume the tuple *vid* (forward direction)."""
        return [self._rule_execs[rid] for rid in self._tuple_uses.get(vid, [])]

    # -- statistics ---------------------------------------------------------------------

    @property
    def tuple_count(self) -> int:
        return len(self._tuples)

    @property
    def rule_exec_count(self) -> int:
        return len(self._rule_execs)

    @property
    def edge_count(self) -> int:
        return sum(len(v) for v in self._exec_inputs.values()) + len(self._exec_output)

    def locations(self) -> Set[object]:
        result: Set[object] = {vertex.location for vertex in self._tuples.values()}
        result |= {vertex.location for vertex in self._rule_execs.values()}
        return result

    # -- traversals ------------------------------------------------------------------------

    def base_tuples_of(self, vid: str) -> List[TupleVertex]:
        """The base tuples reachable from *vid* by following derivations (its lineage)."""
        seen_tuples: Set[str] = set()
        seen_execs: Set[str] = set()
        result: List[TupleVertex] = []

        def visit(current: str) -> None:
            if current in seen_tuples:
                return
            seen_tuples.add(current)
            vertex = self.tuple_vertex(current)
            derivations = self._tuple_derivations.get(current, [])
            if vertex.is_base or not derivations:
                result.append(vertex)
                return
            for rid in derivations:
                if rid in seen_execs:
                    continue
                seen_execs.add(rid)
                for child in self._exec_inputs.get(rid, []):
                    visit(child)

        visit(vid)
        return sorted(result, key=lambda vertex: vertex.vid)

    def participating_nodes(self, vid: str) -> Set[object]:
        """All node identifiers involved in any derivation of *vid*."""
        nodes: Set[object] = set()
        seen_tuples: Set[str] = set()

        def visit(current: str) -> None:
            if current in seen_tuples:
                return
            seen_tuples.add(current)
            vertex = self.tuple_vertex(current)
            nodes.add(vertex.location)
            for rid in self._tuple_derivations.get(current, []):
                nodes.add(self._rule_execs[rid].location)
                for child in self._exec_inputs.get(rid, []):
                    visit(child)

        visit(vid)
        return nodes

    def derivation_count(self, vid: str) -> int:
        """The total number of alternative derivation trees of *vid*.

        Base tuples count as one derivation.  The computation memoises on
        tuple vertices, which is correct because the graph is acyclic.
        """
        memo: Dict[str, int] = {}
        in_progress: Set[str] = set()

        def count(current: str) -> int:
            if current in memo:
                return memo[current]
            if current in in_progress:
                raise ProvenanceError(
                    f"provenance graph contains a cycle through {current!r}"
                )
            in_progress.add(current)
            vertex = self.tuple_vertex(current)
            derivations = self._tuple_derivations.get(current, [])
            total = 0
            for rid in derivations:
                product = 1
                for child in self._exec_inputs.get(rid, []):
                    product *= count(child)
                total += product
            if vertex.is_base or not derivations:
                total += 1 if vertex.is_base or not derivations else 0
            in_progress.discard(current)
            memo[current] = total
            return total

        return count(vid)

    def subgraph_rooted_at(self, vid: str, max_depth: Optional[int] = None) -> "ProvenanceGraph":
        """The provenance subgraph reachable from *vid* (derivation direction)."""
        result = ProvenanceGraph()

        def visit(current: str, depth: int) -> None:
            vertex = self.tuple_vertex(current)
            result.add_tuple(vertex)
            if max_depth is not None and depth >= max_depth:
                return
            for rid in self._tuple_derivations.get(current, []):
                exec_vertex = self._rule_execs[rid]
                inputs = self._exec_inputs.get(rid, [])
                for child in inputs:
                    visit(child, depth + 1)
                result.add_rule_exec(exec_vertex, inputs, current)

        visit(vid, 0)
        return result

    def affected_tuples(self, vid: str) -> List[TupleVertex]:
        """Forward closure: tuples whose derivations (transitively) use *vid*."""
        seen: Set[str] = set()
        result: List[TupleVertex] = []

        def visit(current: str) -> None:
            for exec_vertex in self.uses_of(current):
                output_vid = self._exec_output.get(exec_vertex.rid)
                if output_vid is None or output_vid in seen:
                    continue
                seen.add(output_vid)
                if output_vid in self._tuples:
                    result.append(self._tuples[output_vid])
                visit(output_vid)

        visit(vid)
        return sorted(result, key=lambda vertex: vertex.vid)

    def affected_vids(self, vid: str) -> Set[str]:
        """Vids of the forward closure of *vid* (see :meth:`affected_tuples`).

        This is exactly the set of vertices whose downstream provenance
        subgraph contains *vid* — i.e. the vertices whose per-VID
        reachability version (:meth:`repro.core.maintenance.ProvenanceEngine.vid_version`)
        must advance when *vid*'s derivations change; tests use it as the
        oracle for the engine's incremental upward propagation.
        """
        return {vertex.vid for vertex in self.affected_tuples(vid)}

    # -- merging ---------------------------------------------------------------------------

    def merge(self, other: "ProvenanceGraph") -> None:
        """Merge *other* into this graph (used when combining per-node fragments)."""
        for vertex in other.tuple_vertices():
            self.add_tuple(vertex)
        for exec_vertex in other.rule_exec_vertices():
            self.add_rule_exec(
                exec_vertex,
                other.input_vids_of(exec_vertex.rid),
                other._exec_output[exec_vertex.rid],
            )
