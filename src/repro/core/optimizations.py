"""Query optimisations: caching, traversal orders, threshold-based pruning.

The paper (§2.2): *"To reduce querying overhead, ExSPAN adopts a set of
optimization techniques, which include caching previously queried results,
leveraging alternative tree traversal orders, and performing threshold-based
pruning."*

* **Caching** — every node keeps a cache of completed (sub-)query results
  keyed by (vid, query mode, pruning parameters).  Cached entries are tagged
  with the global provenance version and are discarded when any provenance
  table changes, which keeps the cache trivially consistent.
* **Traversal orders** — a query can expand the alternative derivations of a
  tuple either in parallel or sequentially.  Parallel traversal issues every
  child sub-query of a step in a single fan-out round, with the requests to
  each remote node grouped into one batched message and the replies batched
  on the way back (see :class:`repro.core.query.QueryRequestBatch`): it
  completes in the fewest communication rounds, at the price of exploring
  every alternative.  Sequential traversal dispatches one alternative at a
  time; combined with pruning this avoids sending sub-queries whose results
  would be discarded, trading extra rounds for fewer messages.
* **Threshold-based pruning** — once the partial result reaches a
  user-provided size threshold, remaining alternatives are not explored and
  the result is marked truncated.  A maximum traversal depth is also
  supported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

TRAVERSAL_PARALLEL = "parallel"
TRAVERSAL_SEQUENTIAL = "sequential"


@dataclass(frozen=True)
class QueryOptions:
    """Per-query optimisation settings.

    ``traversal`` picks how a step's alternative derivations are expanded:
    ``"parallel"`` issues them all in one batched fan-out round (fewest
    rounds / lowest latency), ``"sequential"`` one at a time (combined with
    ``threshold`` pruning this sends the fewest messages).  ``use_cache``
    reuses previously computed sub-results, ``threshold`` stops once the
    partial result is large enough, and ``max_depth`` bounds the traversal.

    >>> QueryOptions.baseline().traversal
    'parallel'
    >>> options = QueryOptions.optimized(threshold=3)
    >>> (options.traversal, options.use_cache, options.threshold)
    ('sequential', True, 3)
    >>> QueryOptions(traversal="diagonal")
    Traceback (most recent call last):
        ...
    ValueError: traversal must be 'parallel' or 'sequential', not 'diagonal'
    """

    use_cache: bool = False
    traversal: str = TRAVERSAL_PARALLEL
    threshold: Optional[int] = None
    max_depth: Optional[int] = None

    def __post_init__(self) -> None:
        if self.traversal not in (TRAVERSAL_PARALLEL, TRAVERSAL_SEQUENTIAL):
            raise ValueError(
                f"traversal must be {TRAVERSAL_PARALLEL!r} or {TRAVERSAL_SEQUENTIAL!r}, "
                f"not {self.traversal!r}"
            )
        if self.threshold is not None and self.threshold <= 0:
            raise ValueError("threshold must be positive")
        if self.max_depth is not None and self.max_depth < 0:
            raise ValueError("max_depth must be non-negative")

    def cache_key_part(self) -> Tuple[object, ...]:
        """The part of the cache key that depends on the options.

        Results are only comparable when pruning parameters match, so both
        are part of the key; the traversal order does not change the result
        and is excluded.
        """
        return (self.threshold, self.max_depth)

    @staticmethod
    def baseline() -> "QueryOptions":
        """No optimisations: parallel traversal, no cache, no pruning."""
        return QueryOptions()

    @staticmethod
    def optimized(threshold: Optional[int] = None) -> "QueryOptions":
        """All optimisations on (sequential traversal enables early pruning)."""
        return QueryOptions(
            use_cache=True,
            traversal=TRAVERSAL_SEQUENTIAL,
            threshold=threshold,
            max_depth=None,
        )


@dataclass
class _CacheEntry:
    value: object
    version: int


class NodeQueryCache:
    """Per-node cache of completed sub-query results.

    Entries are validated against a *global* provenance version number: if any
    provenance table anywhere changed since the entry was stored, the entry is
    considered stale.  This is deliberately coarse — it can only produce false
    invalidations, never stale answers.
    """

    def __init__(self) -> None:
        self._entries: Dict[Tuple[str, str, Tuple[object, ...]], _CacheEntry] = {}
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def lookup(self, vid: str, mode: str, options: QueryOptions, version: int) -> Optional[object]:
        key = (vid, mode, options.cache_key_part())
        entry = self._entries.get(key)
        if entry is None or entry.version != version:
            if entry is not None:
                del self._entries[key]
            self.misses += 1
            return None
        self.hits += 1
        return entry.value

    def store(self, vid: str, mode: str, options: QueryOptions, version: int, value: object) -> None:
        key = (vid, mode, options.cache_key_part())
        self._entries[key] = _CacheEntry(value=value, version=version)
        self.stores += 1

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
