"""Query optimisations: caching, traversal orders, threshold-based pruning.

The paper (§2.2): *"To reduce querying overhead, ExSPAN adopts a set of
optimization techniques, which include caching previously queried results,
leveraging alternative tree traversal orders, and performing threshold-based
pruning."*

* **Caching** — every node keeps a cache of completed (sub-)query results
  keyed by (vid, query mode, pruning parameters).  Cached entries are tagged
  with the queried vertex's *per-VID reachability version* (see
  :meth:`repro.core.maintenance.ProvenanceEngine.vid_version`), which bumps
  only when that vertex's downstream provenance subgraph changes — so
  unrelated deltas keep entries alive, while any change a traversal could
  observe invalidates exactly the affected entries.  The cache is an LRU
  with a configurable capacity; stale entries are swept before capacity
  evictions so memory tracks live entries.
* **Traversal orders** — a query can expand the alternative derivations of a
  tuple either in parallel or sequentially.  Parallel traversal issues every
  child sub-query of a step in a single fan-out round, with the requests to
  each remote node grouped into one batched message and the replies batched
  on the way back (see :class:`repro.core.query.QueryRequestBatch`): it
  completes in the fewest communication rounds, at the price of exploring
  every alternative.  Sequential traversal dispatches one alternative at a
  time; combined with pruning this avoids sending sub-queries whose results
  would be discarded, trading extra rounds for fewer messages.
* **Threshold-based pruning** — once the partial result reaches a
  user-provided size threshold, remaining alternatives are not explored and
  the result is marked truncated.  A maximum traversal depth is also
  supported.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

TRAVERSAL_PARALLEL = "parallel"
TRAVERSAL_SEQUENTIAL = "sequential"

#: Default per-node query-cache capacity (entries); override through
#: ``NetTrailsRuntime(query_cache_capacity=N)`` (``0`` there disables the
#: cap, which reaches :class:`NodeQueryCache` as ``capacity=None``).
DEFAULT_CACHE_CAPACITY = 256


@dataclass(frozen=True)
class QueryOptions:
    """Per-query optimisation settings.

    ``traversal`` picks how a step's alternative derivations are expanded:
    ``"parallel"`` issues them all in one batched fan-out round (fewest
    rounds / lowest latency), ``"sequential"`` one at a time (combined with
    ``threshold`` pruning this sends the fewest messages).  ``use_cache``
    reuses previously computed sub-results, ``threshold`` stops once the
    partial result is large enough, and ``max_depth`` bounds the traversal.

    >>> QueryOptions.baseline().traversal
    'parallel'
    >>> options = QueryOptions.optimized(threshold=3)
    >>> (options.traversal, options.use_cache, options.threshold)
    ('sequential', True, 3)
    >>> QueryOptions(traversal="diagonal")
    Traceback (most recent call last):
        ...
    ValueError: traversal must be 'parallel' or 'sequential', not 'diagonal'
    """

    use_cache: bool = False
    traversal: str = TRAVERSAL_PARALLEL
    threshold: Optional[int] = None
    max_depth: Optional[int] = None

    def __post_init__(self) -> None:
        if self.traversal not in (TRAVERSAL_PARALLEL, TRAVERSAL_SEQUENTIAL):
            raise ValueError(
                f"traversal must be {TRAVERSAL_PARALLEL!r} or {TRAVERSAL_SEQUENTIAL!r}, "
                f"not {self.traversal!r}"
            )
        if self.threshold is not None and self.threshold <= 0:
            raise ValueError("threshold must be positive")
        if self.max_depth is not None and self.max_depth < 0:
            raise ValueError("max_depth must be non-negative")

    def cache_key_part(self) -> Tuple[object, ...]:
        """The part of the cache key that depends on the options.

        Results are only comparable when pruning parameters match, so both
        are part of the key; the traversal order does not change the result
        and is excluded.
        """
        return (self.threshold, self.max_depth)

    @staticmethod
    def baseline() -> "QueryOptions":
        """No optimisations: parallel traversal, no cache, no pruning."""
        return QueryOptions()

    @staticmethod
    def optimized(threshold: Optional[int] = None) -> "QueryOptions":
        """All optimisations on (sequential traversal enables early pruning)."""
        return QueryOptions(
            use_cache=True,
            traversal=TRAVERSAL_SEQUENTIAL,
            threshold=threshold,
            max_depth=None,
        )


@dataclass
class _CacheEntry:
    value: object
    version: int


_CacheKey = Tuple[str, str, Tuple[object, ...]]


class NodeQueryCache:
    """Per-node LRU cache of completed sub-query results.

    Entries are tagged with the version their result was computed at — the
    queried vertex's per-VID reachability version, or the global provenance
    version when the recorder offers nothing finer — and are valid only
    while the current version still equals the tag.  Validation can only
    produce false invalidations, never stale answers: any change a traversal
    from the vertex could observe bumps its version before the entry can be
    looked up again.

    ``capacity`` bounds the entry count (``None`` = unbounded): before a
    capacity eviction, :meth:`sweep` drops entries whose version is already
    dead, so live entries are only LRU-evicted once the cache is genuinely
    full of valid results.  ``version_fn`` maps a vid to its *current*
    version and is what lookup callers pass explicitly; the cache uses it
    only to sweep entries under keys that are never re-looked-up.
    ``clock_fn`` is a cheap monotone change counter (the provenance engine's
    memoized global version): no entry can have died while it is unchanged,
    so a saturated cache skips the O(capacity) sweep on the store hot path
    until a mutation actually happens.
    """

    def __init__(
        self,
        capacity: Optional[int] = DEFAULT_CACHE_CAPACITY,
        version_fn: Optional[Callable[[str], int]] = None,
        clock_fn: Optional[Callable[[], int]] = None,
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"cache capacity must be positive or None, got {capacity}")
        self._entries: "OrderedDict[_CacheKey, _CacheEntry]" = OrderedDict()
        self.capacity = capacity
        self._version_fn = version_fn
        self._clock_fn = clock_fn
        self._swept_at: Optional[int] = None
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.stale_dropped = 0

    def lookup(self, vid: str, mode: str, options: QueryOptions, version: int) -> Optional[object]:
        key = (vid, mode, options.cache_key_part())
        entry = self._entries.get(key)
        if entry is None or entry.version != version:
            if entry is not None:
                del self._entries[key]
                self.stale_dropped += 1
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry.value

    def store(self, vid: str, mode: str, options: QueryOptions, version: int, value: object) -> None:
        if self._version_fn is not None and self._version_fn(vid) != version:
            # Stillborn entry: churn already superseded the tag (a traversal
            # raced a delta, or an in-flight reply was computed before one).
            # It could never be served, so don't let it occupy a slot.
            self.stale_dropped += 1
            return
        key = (vid, mode, options.cache_key_part())
        self._entries[key] = _CacheEntry(value=value, version=version)
        self._entries.move_to_end(key)
        self.stores += 1
        if self._clock_fn is not None:
            # Clock-guarded: a full sweep at most once per provenance change,
            # so dead entries are reclaimed even in uncapped or half-full
            # caches and memory tracks live entries, at O(1) amortized cost.
            self.sweep()
        if self.capacity is not None and len(self._entries) > self.capacity:
            self.sweep()
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def sweep(self) -> int:
        """Drop every entry whose tagged version is no longer current.

        Stale entries are otherwise only reclaimed when their exact key is
        looked up again; the sweep (run automatically before a capacity
        eviction) keeps memory proportional to *live* entries.  Returns the
        number of entries dropped; a no-op without a ``version_fn``, and
        skipped entirely while the ``clock_fn`` counter is unchanged since
        the previous sweep (no mutation happened, so nothing can have died
        — entries stored meanwhile were tagged with live versions).
        """
        if self._version_fn is None:
            return 0
        if self._clock_fn is not None:
            now = self._clock_fn()
            if now == self._swept_at:
                return 0
            self._swept_at = now
        dead = [
            key
            for key, entry in self._entries.items()
            if self._version_fn(key[0]) != entry.version
        ]
        for key in dead:
            del self._entries[key]
        self.stale_dropped += len(dead)
        return len(dead)

    def counters(self) -> "OrderedDict[str, int]":
        """All bookkeeping counters plus the live entry count, for reporting."""
        return OrderedDict(
            hits=self.hits,
            misses=self.misses,
            stores=self.stores,
            evictions=self.evictions,
            stale_dropped=self.stale_dropped,
            entries=len(self._entries),
        )

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
