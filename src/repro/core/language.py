"""A small declarative query language for network provenance.

The paper's ongoing-work section proposes "exploring distributed variants of
graph-based provenance query languages such as ProQL for formulating queries
and transformations over network provenance data".  This module provides a
first step in that direction: a compact textual query language that compiles
onto the distributed query engine, so users can ask for provenance without
writing Python::

    LINEAGE OF minCost("n0", "n2", 2.0)
    PARTICIPANTS OF bestPathCost("n0", "n3", *) WITH CACHE
    COUNT OF minCost("n0", *, *) SEQUENTIAL THRESHOLD 5
    SUBGRAPH OF routeEntry("as109", "10.1.0.0/24", *) DEPTH 3 FROM "as100"

Grammar (case-insensitive keywords)::

    query    := mode 'OF' pattern clause*
    mode     := 'LINEAGE' | 'PARTICIPANTS' | 'COUNT' | 'SUBGRAPH' | IDENT   (custom)
    pattern  := relation '(' term (',' term)* ')'
    term     := number | string | '*'
    clause   := 'WITH' 'CACHE' | 'SEQUENTIAL' | 'PARALLEL'
              | 'THRESHOLD' number | 'DEPTH' number | 'FROM' string

``*`` terms make the pattern match every currently-stored tuple with the
given ground attributes; one :class:`~repro.core.results.QueryResult` is
returned per matching tuple.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import QueryError
from repro.ndlog import lexer
from repro.ndlog.lexer import EOF, IDENT, NUMBER, STRING, SYMBOL, VARIABLE
from repro.core.optimizations import (
    QueryOptions,
    TRAVERSAL_PARALLEL,
    TRAVERSAL_SEQUENTIAL,
)
from repro.core.queries import (
    QUERY_COUNT,
    QUERY_LINEAGE,
    QUERY_PARTICIPANTS,
    QUERY_SUBGRAPH,
)
from repro.core.query import DistributedQueryEngine
from repro.core.results import QueryResult

#: Sentinel used for wildcard positions in a pattern.
WILDCARD = object()

_MODE_KEYWORDS = {
    "lineage": QUERY_LINEAGE,
    "participants": QUERY_PARTICIPANTS,
    "count": QUERY_COUNT,
    "subgraph": QUERY_SUBGRAPH,
}


@dataclass
class ParsedQuery:
    """The outcome of parsing one query string."""

    mode: str
    relation: str
    pattern: Tuple[object, ...]
    options: QueryOptions = field(default_factory=QueryOptions)
    issued_at: Optional[object] = None

    def is_ground(self) -> bool:
        return all(term is not WILDCARD for term in self.pattern)

    def matches(self, values: Sequence[object]) -> bool:
        if len(values) != len(self.pattern):
            return False
        for term, value in zip(self.pattern, values):
            if term is WILDCARD:
                continue
            if term != value:
                return False
        return True


class _QueryParser:
    def __init__(self, text: str):
        self._tokens = [token for token in lexer.tokenize(text) if token.kind != EOF]
        self._position = 0

    def _error(self, message: str) -> QueryError:
        return QueryError(f"{message} (while parsing provenance query)")

    def _peek(self):
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def _next(self):
        token = self._peek()
        if token is None:
            raise self._error("unexpected end of query")
        self._position += 1
        return token

    def _expect_symbol(self, symbol: str) -> None:
        token = self._next()
        if token.kind != SYMBOL or token.value != symbol:
            raise self._error(f"expected {symbol!r}, found {token.value!r}")

    def _keyword(self, token) -> Optional[str]:
        if token is not None and token.kind in (IDENT, VARIABLE):
            return str(token.value).lower()
        return None

    def parse(self) -> ParsedQuery:
        mode_token = self._next()
        mode_word = self._keyword(mode_token)
        if mode_word is None:
            raise self._error(f"expected a query mode, found {mode_token.value!r}")
        mode = _MODE_KEYWORDS.get(mode_word, mode_word)

        of_token = self._next()
        if self._keyword(of_token) != "of":
            raise self._error(f"expected 'OF' after the query mode, found {of_token.value!r}")

        relation_token = self._next()
        if relation_token.kind not in (IDENT, VARIABLE):
            raise self._error(f"expected a relation name, found {relation_token.value!r}")
        relation = str(relation_token.value)

        pattern = self._parse_pattern()
        options, issued_at = self._parse_clauses()
        return ParsedQuery(
            mode=mode,
            relation=relation,
            pattern=pattern,
            options=options,
            issued_at=issued_at,
        )

    def _parse_pattern(self) -> Tuple[object, ...]:
        self._expect_symbol("(")
        terms: List[object] = []
        while True:
            token = self._next()
            if token.kind == SYMBOL and token.value == "*":
                terms.append(WILDCARD)
            elif token.kind in (NUMBER, STRING):
                terms.append(token.value)
            elif token.kind in (IDENT, VARIABLE):
                # bare identifiers are treated as string constants (node names)
                terms.append(str(token.value))
            else:
                raise self._error(f"unexpected pattern term {token.value!r}")
            separator = self._next()
            if separator.kind == SYMBOL and separator.value == ",":
                continue
            if separator.kind == SYMBOL and separator.value == ")":
                break
            raise self._error(f"expected ',' or ')' in pattern, found {separator.value!r}")
        return tuple(terms)

    def _parse_clauses(self) -> Tuple[QueryOptions, Optional[object]]:
        use_cache = False
        traversal = TRAVERSAL_PARALLEL
        threshold: Optional[int] = None
        max_depth: Optional[int] = None
        issued_at: Optional[object] = None

        while self._peek() is not None:
            word = self._keyword(self._next())
            if word == "with":
                follower = self._keyword(self._next())
                if follower != "cache":
                    raise self._error(f"expected 'CACHE' after 'WITH', found {follower!r}")
                use_cache = True
            elif word == "cache":
                use_cache = True
            elif word == "sequential":
                traversal = TRAVERSAL_SEQUENTIAL
            elif word == "parallel":
                traversal = TRAVERSAL_PARALLEL
            elif word == "threshold":
                threshold = self._parse_int("THRESHOLD")
            elif word == "depth":
                max_depth = self._parse_int("DEPTH")
            elif word == "from":
                token = self._next()
                if token.kind not in (STRING, IDENT, VARIABLE, NUMBER):
                    raise self._error(f"expected a node name after 'FROM', found {token.value!r}")
                issued_at = token.value if token.kind in (STRING, NUMBER) else str(token.value)
            else:
                raise self._error(f"unknown clause {word!r}")

        try:
            options = QueryOptions(
                use_cache=use_cache,
                traversal=traversal,
                threshold=threshold,
                max_depth=max_depth,
            )
        except ValueError as exc:
            raise QueryError(str(exc)) from exc
        return options, issued_at

    def _parse_int(self, clause: str) -> int:
        token = self._next()
        if token.kind != NUMBER:
            raise self._error(f"expected a number after '{clause}', found {token.value!r}")
        return int(token.value)


def parse_query(text: str) -> ParsedQuery:
    """Parse one provenance query string."""
    if not text or not text.strip():
        raise QueryError("empty provenance query")
    return _QueryParser(text).parse()


class QueryLanguage:
    """Run textual provenance queries against a :class:`DistributedQueryEngine`."""

    def __init__(self, engine: DistributedQueryEngine):
        self.engine = engine

    def _matching_tuples(self, parsed: ParsedQuery) -> List[Tuple[object, ...]]:
        runtime = self.engine.runtime
        if parsed.is_ground():
            return [parsed.pattern]
        return [values for values in runtime.state(parsed.relation) if parsed.matches(values)]

    def run(self, text: str) -> List[QueryResult]:
        """Parse and execute *text*; one result per tuple matching the pattern."""
        parsed = parse_query(text)
        self.engine.reducer(parsed.mode)  # fail fast on unknown modes
        matches = self._matching_tuples(parsed)
        if not matches:
            raise QueryError(
                f"no stored {parsed.relation} tuple matches the pattern "
                f"{tuple('*' if t is WILDCARD else t for t in parsed.pattern)}"
            )
        results: List[QueryResult] = []
        for values in matches:
            results.append(
                self.engine.query(
                    parsed.relation,
                    list(values),
                    mode=parsed.mode,
                    options=parsed.options,
                    at=parsed.issued_at,
                )
            )
        return results

    def run_one(self, text: str) -> QueryResult:
        """Run a query expected to match exactly one tuple."""
        results = self.run(text)
        if len(results) != 1:
            raise QueryError(
                f"query matched {len(results)} tuples; use run() for wildcard patterns"
            )
        return results[0]
