"""Tamper-evident provenance (a simplified "secure network provenance").

The paper closes by pointing at ongoing work on "enhancing the current system
to securely utilize network provenance information in untrusted environments"
(reference [9], *Tracking Adversarial Behavior in Distributed Systems with
Secure Network Provenance*).  This module implements a self-contained,
laptop-scale version of that idea:

* every node holds a secret authentication key;
* an :class:`ProvenanceAuthenticator` produces, for a node's partition of the
  provenance tables, one authenticator (HMAC-SHA256) per ``prov`` /
  ``ruleExec`` row plus a commitment over the whole partition;
* an auditor holding the keys can later :meth:`~ProvenanceAuthenticator.verify`
  a (possibly re-serialised) copy of the tables and obtain a precise
  :class:`TamperReport`: rows that were modified, added or dropped by a
  compromised node.

This is *not* the full SNP protocol (no signed cross-node commitments or
evidence of equivocation), but it exercises the same code path a secure
deployment needs: canonical serialisation of provenance rows, per-node
authentication, and audit-time verification — and it is what the secure-mode
benchmarks and tests build on.
"""

from __future__ import annotations

import hashlib
import hmac
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ProvenanceError
from repro.core.maintenance import NodeProvenanceStore, ProvenanceEngine


def _canonical(row: Iterable[object]) -> bytes:
    """A canonical byte representation of one provenance row."""
    return json.dumps(list(row), sort_keys=True, default=str).encode("utf-8")


def _authenticate(key: bytes, row: Iterable[object]) -> str:
    return hmac.new(key, _canonical(row), hashlib.sha256).hexdigest()


@dataclass
class NodeAttestation:
    """The signed snapshot of one node's provenance partition."""

    node_id: str
    prov_rows: List[Tuple[object, ...]]
    rule_exec_rows: List[Tuple[object, ...]]
    prov_authenticators: List[str]
    rule_exec_authenticators: List[str]
    commitment: str

    def row_count(self) -> int:
        return len(self.prov_rows) + len(self.rule_exec_rows)


@dataclass
class TamperReport:
    """The auditor's verdict for one node's partition."""

    node_id: str
    modified_rows: List[Tuple[object, ...]] = field(default_factory=list)
    missing_rows: List[Tuple[object, ...]] = field(default_factory=list)
    unexpected_rows: List[Tuple[object, ...]] = field(default_factory=list)
    commitment_valid: bool = True

    @property
    def is_clean(self) -> bool:
        return (
            self.commitment_valid
            and not self.modified_rows
            and not self.missing_rows
            and not self.unexpected_rows
        )

    def summary(self) -> str:
        if self.is_clean:
            return f"node {self.node_id}: provenance verified, no tampering detected"
        parts = [f"node {self.node_id}: TAMPERING DETECTED"]
        if not self.commitment_valid:
            parts.append("  partition commitment does not verify")
        if self.modified_rows:
            parts.append(f"  {len(self.modified_rows)} modified row(s)")
        if self.missing_rows:
            parts.append(f"  {len(self.missing_rows)} missing row(s)")
        if self.unexpected_rows:
            parts.append(f"  {len(self.unexpected_rows)} unexpected row(s)")
        return "\n".join(parts)


class ProvenanceAuthenticator:
    """Sign and audit per-node provenance partitions."""

    def __init__(self, keys: Optional[Dict[object, bytes]] = None):
        self._keys: Dict[object, bytes] = dict(keys or {})

    # -- key management ---------------------------------------------------------

    def register_key(self, node_id: object, key: bytes) -> None:
        self._keys[node_id] = key

    def generate_keys(self, node_ids: Iterable[object], master_secret: bytes = b"nettrails") -> None:
        """Derive one deterministic per-node key from a master secret (for tests/demos)."""
        for node_id in node_ids:
            self._keys[node_id] = hashlib.sha256(master_secret + repr(node_id).encode()).digest()

    def key_for(self, node_id: object) -> bytes:
        if node_id not in self._keys:
            raise ProvenanceError(f"no authentication key registered for node {node_id!r}")
        return self._keys[node_id]

    # -- signing -------------------------------------------------------------------

    def _rows_of(self, store: NodeProvenanceStore) -> Tuple[List[Tuple[object, ...]], List[Tuple[object, ...]]]:
        prov_rows = [tuple(row) for row in store.prov_table()]
        rule_exec_rows = [tuple(row) for row in store.rule_exec_table()]
        return prov_rows, rule_exec_rows

    def attest_node(self, store: NodeProvenanceStore) -> NodeAttestation:
        """Produce the signed snapshot of one node's provenance partition."""
        key = self.key_for(store.node_id)
        prov_rows, rule_exec_rows = self._rows_of(store)
        prov_auth = [_authenticate(key, row) for row in prov_rows]
        exec_auth = [_authenticate(key, row) for row in rule_exec_rows]
        commitment = _authenticate(key, prov_auth + exec_auth + [str(store.node_id)])
        return NodeAttestation(
            node_id=str(store.node_id),
            prov_rows=prov_rows,
            rule_exec_rows=rule_exec_rows,
            prov_authenticators=prov_auth,
            rule_exec_authenticators=exec_auth,
            commitment=commitment,
        )

    def attest_engine(self, engine: ProvenanceEngine) -> Dict[object, NodeAttestation]:
        """Sign every node's partition of a provenance engine."""
        return {
            node_id: self.attest_node(engine.store(node_id)) for node_id in engine.node_ids()
        }

    # -- verification -------------------------------------------------------------------

    def verify(
        self,
        node_id: object,
        attestation: NodeAttestation,
        claimed_prov_rows: Iterable[Tuple[object, ...]],
        claimed_rule_exec_rows: Iterable[Tuple[object, ...]],
    ) -> TamperReport:
        """Audit a claimed copy of a node's tables against its attestation.

        The attestation is assumed to have been collected while the node was
        still honest (e.g. shipped to the log store right after each update);
        the *claimed* rows are whatever the node reports at audit time.
        """
        key = self.key_for(node_id)
        report = TamperReport(node_id=str(node_id))

        expected_commitment = _authenticate(
            key,
            attestation.prov_authenticators
            + attestation.rule_exec_authenticators
            + [str(node_id)],
        )
        report.commitment_valid = hmac.compare_digest(
            expected_commitment, attestation.commitment
        )

        def audit(
            signed_rows: List[Tuple[object, ...]],
            authenticators: List[str],
            claimed: Iterable[Tuple[object, ...]],
        ) -> None:
            claimed_set = {tuple(row) for row in claimed}
            signed_set = set()
            for row, authenticator in zip(signed_rows, authenticators):
                signed_set.add(tuple(row))
                if not hmac.compare_digest(_authenticate(key, row), authenticator):
                    report.modified_rows.append(tuple(row))
            report.missing_rows.extend(sorted(signed_set - claimed_set, key=repr))
            report.unexpected_rows.extend(sorted(claimed_set - signed_set, key=repr))

        audit(attestation.prov_rows, attestation.prov_authenticators, claimed_prov_rows)
        audit(
            attestation.rule_exec_rows,
            attestation.rule_exec_authenticators,
            claimed_rule_exec_rows,
        )
        return report

    def verify_engine(
        self, engine: ProvenanceEngine, attestations: Dict[object, NodeAttestation]
    ) -> Dict[object, TamperReport]:
        """Audit every node of *engine* against previously collected attestations."""
        reports = {}
        for node_id, attestation in attestations.items():
            store = engine.store(node_id)
            prov_rows, rule_exec_rows = self._rows_of(store)
            reports[node_id] = self.verify(node_id, attestation, prov_rows, rule_exec_rows)
        return reports
