"""ExSPAN distributed provenance query engine.

Provenance is stored as distributed ``prov`` / ``ruleExec`` tables, so
answering a query requires a *distributed traversal* of the provenance graph:
the query starts at the node storing the queried tuple, follows its ``prov``
entries to the nodes where the deriving rules fired, expands the rule
executions' input tuples there, and so on recursively.  Partial results are
combined bottom-up by the query's reducer (see :mod:`repro.core.queries`) and
travel back as reply messages.

Every hop is a real message through the simulated network, so the traffic
statistics reported by :class:`DistributedQueryEngine.query` measure exactly
the "network traffic" the paper's optimisation discussion refers to, and the
optimisations of :mod:`repro.core.optimizations` (caching, traversal order,
threshold pruning) visibly reduce it.  Cache entries are validated against
per-VID reachability versions maintained incrementally by the provenance
engine, so deltas that cannot affect a queried subtree leave its cached
sub-results usable — the point of the incremental-invalidation design.

Parallel traversal (the default) is a true single-round fan-out: all child
requests of a step are issued at once, requests to the same remote node
share one :class:`QueryRequestBatch` message, and their replies return as
one :class:`QueryReplyBatch` — minimising both communication rounds
(:attr:`QueryStats.rounds <repro.core.results.QueryStats>`) and per-peer
message count.  Sequential traversal instead dispatches one alternative at
a time so threshold pruning can skip the rest.

Under a concurrent execution backend (``backend="thread"`` / ``"asyncio"``,
see :mod:`repro.engine.backends`) the parallel fan-out parallelises in real
time too: the request batches to distinct peers arrive in one simulator
wave, and because deliveries are serialized per *receiving* node, the peers
resolve their sub-traversals on separate workers while each node's agent
state stays single-writer.  Answers, message counts and rounds are
bit-identical to the serial reference either way.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from repro.errors import QueryError
from repro.engine.messages import (
    CATEGORY_PROVENANCE_QUERY,
    CATEGORY_PROVENANCE_REPLY,
)
from repro.engine.node import Node
from repro.engine.tuples import Fact
from repro.core.keys import BASE_RID, vid_for
from repro.core.maintenance import NodeProvenanceStore, ProvenanceEngine
from repro.core.optimizations import (
    DEFAULT_CACHE_CAPACITY,
    NodeQueryCache,
    QueryOptions,
    TRAVERSAL_SEQUENTIAL,
)
from repro.core.queries import (
    BUILTIN_REDUCERS,
    ExecRef,
    QueryReducer,
    QUERY_COUNT,
    QUERY_LINEAGE,
    QUERY_PARTICIPANTS,
    QUERY_SUBGRAPH,
)
from repro.core.results import QueryResult, QueryStats, TupleRef
from repro.obs.tracing import Span, TraceContext

_REQUEST_KIND_TUPLE = "tuple"
_REQUEST_KIND_EXEC = "exec"

_ROOT_MARKER = "__root__"

#: Cache-validation modes: per-VID reachability versions (default) keep
#: entries alive through unrelated churn; the global mode re-creates the
#: original flush-on-any-delta behaviour for ablation benchmarks.
CACHE_VALIDATION_VID = "vid"
CACHE_VALIDATION_GLOBAL = "global"


@dataclass(frozen=True)
class QueryRequest:
    """A traversal step shipped to another node.

    ``trace`` is the requester's observability span context
    (``(trace_id, span_id)``), carried in-band so the responding node's
    frame span parents correctly; it is ``None`` whenever tracing is off
    and is *never* rendered in the repr, so
    :meth:`~repro.engine.messages.Message.size_estimate` — and with it the
    byte statistics of every determinism contract — is identical whether
    observability is enabled or not.
    """

    query_id: str
    request_id: str
    kind: str  # "tuple" (resolve a tuple's provenance) or "exec" (expand a rule execution)
    target: str  # vid or rid
    mode: str
    options: QueryOptions
    depth: int
    reply_to: object
    trace: Optional[Tuple[str, str]] = None

    def __repr__(self) -> str:
        # Byte-identical to the generated dataclass repr before the trace
        # field existed (wire-byte accounting must not see observability).
        return (
            f"QueryRequest(query_id={self.query_id!r}, request_id={self.request_id!r}, "
            f"kind={self.kind!r}, target={self.target!r}, mode={self.mode!r}, "
            f"options={self.options!r}, depth={self.depth!r}, reply_to={self.reply_to!r})"
        )


@dataclass(frozen=True)
class QueryRequestBatch:
    """Every traversal sub-request one node sends to one peer in one round.

    Parallel traversal (``TRAVERSAL_PARALLEL``) expands all alternative
    derivations of a step at once; the requests that target the same remote
    node travel together in a single message, so a fan-out of *k* subtasks to
    one peer costs one message instead of *k* — this is how parallel
    traversal trades network messages for communication rounds.
    """

    requests: Tuple[QueryRequest, ...]

    def __len__(self) -> int:
        return len(self.requests)


@dataclass(frozen=True)
class QueryReply:
    """The combined sub-result for one traversal step.

    ``version`` is the queried vertex's reachability version *captured when
    the responding node started computing* (``None`` for rule-execution
    sub-results).  Carrying it in the reply lets the requesting node cache
    the result soundly: if the subtree changed while the reply was in
    flight, the current version has already moved past the carried one and
    the entry can never be served.
    """

    query_id: str
    request_id: str
    value: object
    truncated: bool
    visited: FrozenSet[object]
    cache_hits: int
    version: Optional[int] = None


@dataclass(frozen=True)
class QueryReplyBatch:
    """The replies to a :class:`QueryRequestBatch`, shipped as one message."""

    replies: Tuple[QueryReply, ...]

    def __len__(self) -> int:
        return len(self.replies)


@dataclass(frozen=True)
class IntervalRequest:
    """One wave of interval-index work for one partition.

    Where the traversal path ships one request per child derivation, the
    interval path ships *one message per partition per wave*, carrying the
    frontier targets of **every** root the batch is answering: ``targets``
    holds ``(root index, tuple vids, exec rids)`` triples.  The partition
    answers each root's targets with a single range-scan closure over its
    label table.
    """

    query_id: str
    request_id: str
    mode: str
    targets: Tuple[Tuple[int, Tuple[str, ...], Tuple[str, ...]], ...]
    reply_to: object
    #: Coordinator span context (see :class:`QueryRequest.trace`); omitted
    #: from the repr so byte accounting is unaffected by observability.
    trace: Optional[Tuple[str, str]] = None

    def __repr__(self) -> str:
        return (
            f"IntervalRequest(query_id={self.query_id!r}, request_id={self.request_id!r}, "
            f"mode={self.mode!r}, targets={self.targets!r}, reply_to={self.reply_to!r})"
        )


@dataclass(frozen=True)
class IntervalRootResult:
    """One root's share of a partition's interval-closure answer.

    ``value`` holds the root's local contributions (base-tuple refs for
    lineage, nothing — the partition id travels implicitly — beyond the
    partition for participants); ``frontier`` lists the remote rule
    executions ``(partition, rid)`` discovered by the scan, which become the
    next wave's targets at their partitions.
    """

    root_index: int
    value: object
    frontier: Tuple[Tuple[object, str], ...]
    truncated: bool


@dataclass(frozen=True)
class IntervalReply:
    """A partition's batched answer to one :class:`IntervalRequest`."""

    query_id: str
    request_id: str
    location: object
    results: Tuple[IntervalRootResult, ...]


@dataclass
class _IntervalRoot:
    """Coordinator-side accumulation state for one root of an interval batch."""

    root_key: str
    value: set = field(default_factory=set)
    visited: set = field(default_factory=set)
    truncated: bool = False
    #: (partition, kind, id) triples ever enqueued, so a frontier entry that
    #: resurfaces (shared sub-DAGs) is expanded at most once per root.
    seen: set = field(default_factory=set)
    #: partition -> (vids to expand, rids to expand) for the next wave.
    pending: Dict[object, Tuple[set, set]] = field(default_factory=dict)


@dataclass
class _IntervalBatch:
    """Coordinator-side state for one batched interval query."""

    query_id: str
    mode: str
    roots: List[_IntervalRoot]
    outstanding: int = 0


@dataclass
class _ReplyCollector:
    """Accumulates the replies for one received request batch.

    The reply batch is sent once every sub-frame spawned by the request batch
    has completed, mirroring the single fan-out message on the request side.
    """

    reply_to: object
    expected: int
    replies: List[QueryReply] = field(default_factory=list)


@dataclass
class _Bundle:
    """A sub-result plus its bookkeeping, as it travels up the traversal."""

    value: object
    truncated: bool = False
    visited: FrozenSet[object] = frozenset()
    cache_hits: int = 0
    #: Reachability version of the sub-result's root vertex at computation
    #: start (tuple sub-results only); what remote caches tag entries with.
    version: Optional[int] = None


@dataclass
class _Subtask:
    kind: str  # "immediate", "local-exec", "local-tuple", "remote-exec", "remote-tuple"
    bundle: Optional[_Bundle] = None
    target: Optional[str] = None      # vid or rid for local/remote subtasks
    remote_node: Optional[object] = None


@dataclass
class _Frame:
    frame_id: str
    kind: str  # "tuple" or "exec"
    target: str
    mode: str
    options: QueryOptions
    depth: int
    tuple_ref: Optional[TupleRef] = None
    exec_ref: Optional[ExecRef] = None
    subtasks: List[_Subtask] = field(default_factory=list)
    collected: List[Optional[_Bundle]] = field(default_factory=list)
    cursor: int = 0
    outstanding: int = 0
    truncated: bool = False
    cached_bundle: Optional[_Bundle] = None
    #: The target vid's reachability version captured at frame creation,
    #: *before* any provenance rows are read.  Completed results are stored
    #: under this version: if churn raced the traversal, the current version
    #: has already advanced and the entry is stillborn — conservative, never
    #: stale.  ``None`` for exec frames (only tuple results are cached).
    version_at_start: Optional[int] = None
    parent: Optional[Tuple[str, int]] = None  # (parent frame id, slot index)
    remote_reply: Optional[Tuple[object, str, str]] = None  # (reply_to, query_id, request_id)
    reply_batch: Optional[Tuple["_ReplyCollector", str, str]] = None  # (collector, query_id, request_id)
    root_key: Optional[str] = None
    query_id: str = ""
    #: Observability span covering this frame's lifetime (``None`` while
    #: tracing is off); finished by ``_complete``.
    span: Optional[Span] = None


class QueryAgent:
    """The per-node part of the distributed query engine.

    One agent runs at every node; it resolves traversal steps against the
    node's partition of the provenance tables, spawns local sub-frames or
    remote sub-requests, and combines the results with the query's reducer.
    """

    def __init__(self, node: Node, engine: "DistributedQueryEngine"):
        self.node = node
        self.engine = engine
        self.obs = getattr(engine.runtime, "obs", None)
        self.cache = NodeQueryCache(
            capacity=engine.cache_capacity,
            version_fn=engine.entry_version,
            clock_fn=engine.global_version,
        )
        self._frames: Dict[str, _Frame] = {}
        self._frame_seq = itertools.count(1)
        self._request_seq = itertools.count(1)
        self._pending_remote: Dict[str, Tuple[str, int]] = {}
        self._root_keys: Dict[str, str] = {}
        #: request id -> (vid, mode, options) of an issued remote root, kept
        #: so the reply — which carries the version it was computed at — can
        #: be cached here at the issuing node.
        self._root_meta: Dict[str, Tuple[str, str, QueryOptions]] = {}
        #: Interval-path coordinator state: query id -> batch, and in-flight
        #: request id -> query id (this agent as the batch's coordinator).
        self._interval_batches: Dict[str, _IntervalBatch] = {}
        self._interval_pending: Dict[str, str] = {}
        node.register_handler(CATEGORY_PROVENANCE_QUERY, self._on_query)
        node.register_handler(CATEGORY_PROVENANCE_REPLY, self._on_reply)

    # -- helpers ---------------------------------------------------------------

    @property
    def _pstore(self) -> NodeProvenanceStore:
        return self.engine.provenance.store(self.node.id)

    def _new_frame_id(self) -> str:
        return f"{self.node.id}/f{next(self._frame_seq)}"

    def _new_request_id(self) -> str:
        return f"{self.node.id}/r{next(self._request_seq)}"

    def _reducer(self, mode: str) -> QueryReducer:
        return self.engine.reducer(mode)

    def _tracing(self) -> bool:
        return self.obs is not None and self.obs.tracing

    def _frame_span(self, frame: _Frame, parent: Union[None, Span, TraceContext]) -> None:
        """Open the observability span for *frame* (no-op while tracing is off).

        *parent* is the requesting side's span or shipped context; ``None``
        falls back to the tracer's ambient context (the engine-level query
        root), and a frame with no resolvable parent stays span-less so a
        trace never contains orphans.
        """
        if not self._tracing():
            return
        tracer = self.obs.tracer
        if parent is None:
            parent = tracer.current()
        if parent is None:
            return
        frame.span = tracer.start_span(
            f"frame.{frame.kind}",
            parent=parent,
            node=repr(self.node.id),
            target=frame.target,
            depth=frame.depth,
        )

    def _request_trace(self, frame: _Frame) -> Optional[Tuple[str, str]]:
        """The span context outgoing requests of *frame* should carry."""
        if not self._tracing():
            return None
        if frame.span is not None:
            return frame.span.context().as_tuple()
        current = self.obs.tracer.current()
        return current.as_tuple() if current is not None else None

    def _tuple_ref(self, vid: str) -> TupleRef:
        store = self._pstore
        if store.knows_tuple(vid):
            relation, values = store.tuple_info(vid)
        else:
            relation, values = "<unknown>", (vid,)
        return TupleRef(relation=relation, values=values, location=self.node.id)

    # -- root entry points --------------------------------------------------------

    def start_root(self, query_id: str, vid: str, mode: str, options: QueryOptions, root_key: str) -> None:
        """Start a query for a tuple stored at this node (no network hop needed)."""
        frame = self._make_tuple_frame(query_id, vid, mode, options, depth=0)
        frame.root_key = root_key
        self._frame_span(frame, None)
        self._activate(frame)

    def start_remote_root(
        self,
        query_id: str,
        vid: str,
        home_node: object,
        mode: str,
        options: QueryOptions,
        root_key: str,
    ) -> None:
        """Issue a query from this node for a tuple stored at *home_node*.

        Replies to earlier issuances are cached locally (tagged with the
        version they were computed at, carried in the reply), so a repeat
        query for an unchanged subtree is answered without any network hop.
        """
        if options.use_cache:
            cached = self.cache.lookup(vid, mode, options, self.engine.entry_version(vid))
            if cached is not None:
                self.engine._finish_root(
                    root_key,
                    _Bundle(
                        value=cached,
                        visited=frozenset({self.node.id}),
                        cache_hits=1,
                    ),
                )
                return
        request_id = self._new_request_id()
        self._pending_remote[request_id] = (_ROOT_MARKER, 0)
        self._root_keys[request_id] = root_key
        self._root_meta[request_id] = (vid, mode, options)
        trace = None
        if self._tracing():
            current = self.obs.tracer.current()
            trace = current.as_tuple() if current is not None else None
        self.node.send(
            home_node,
            CATEGORY_PROVENANCE_QUERY,
            QueryRequest(
                query_id=query_id,
                request_id=request_id,
                kind=_REQUEST_KIND_TUPLE,
                target=vid,
                mode=mode,
                options=options,
                depth=0,
                reply_to=self.node.id,
                trace=trace,
            ),
        )

    # -- message handlers ------------------------------------------------------------

    def _on_query(self, message) -> None:
        payload = message.payload
        if isinstance(payload, IntervalRequest):
            self._on_interval_request(payload)
            return
        if isinstance(payload, QueryRequestBatch):
            requests: Tuple[QueryRequest, ...] = payload.requests
        else:
            requests = (payload,)
        collector: Optional[_ReplyCollector] = None
        if len(requests) > 1:
            collector = _ReplyCollector(reply_to=requests[0].reply_to, expected=len(requests))
        for request in requests:
            if request.kind == _REQUEST_KIND_TUPLE:
                frame = self._make_tuple_frame(
                    request.query_id, request.target, request.mode, request.options, request.depth
                )
            else:
                frame = self._make_exec_frame(
                    request.query_id, request.target, request.mode, request.options, request.depth
                )
            if collector is not None:
                frame.reply_batch = (collector, request.query_id, request.request_id)
            else:
                frame.remote_reply = (request.reply_to, request.query_id, request.request_id)
            self._frame_span(frame, TraceContext.from_tuple(request.trace))
            self._activate(frame)

    def _on_reply(self, message) -> None:
        payload = message.payload
        if isinstance(payload, IntervalReply):
            self._on_interval_reply(payload)
            return
        if isinstance(payload, QueryReplyBatch):
            for reply in payload.replies:
                self._handle_reply(reply)
        else:
            self._handle_reply(payload)

    def _handle_reply(self, reply: QueryReply) -> None:
        pending = self._pending_remote.pop(reply.request_id, None)
        if pending is None:
            return
        bundle = _Bundle(
            value=reply.value,
            truncated=reply.truncated,
            visited=reply.visited,
            cache_hits=reply.cache_hits,
            version=reply.version,
        )
        frame_id, slot = pending
        if frame_id == _ROOT_MARKER:
            root_key = self._root_keys.pop(reply.request_id)
            meta = self._root_meta.pop(reply.request_id, None)
            if (
                meta is not None
                and meta[2].use_cache
                and not reply.truncated
                and reply.version is not None
            ):
                vid, mode, options = meta
                self.cache.store(vid, mode, options, reply.version, reply.value)
            bundle.visited = bundle.visited | frozenset({self.node.id})
            self.engine._finish_root(root_key, bundle)
            return
        frame = self._frames.get(frame_id)
        if frame is None:
            return
        self._deliver(frame, slot, bundle)

    # -- interval-index query path ---------------------------------------------------------
    #
    # This agent acts as the *coordinator* of a batch of roots: it keeps one
    # accumulator per root, repeatedly groups every root's frontier by
    # partition, and ships ONE IntervalRequest per partition per wave — the
    # partitions answer each root with a single range-scan closure over their
    # interval label tables (see repro.core.interval_index).  Targets landing
    # on the coordinator's own partition are drained locally without a
    # message.  Values and truncation flags are always computed from the live
    # store rows, so the answers are bit-identical to the traversal path.

    def start_interval_batch(
        self, query_id: str, mode: str, roots: Sequence[Tuple[str, str, object]]
    ) -> None:
        """Coordinate an interval-path batch of (root_key, vid, home) roots."""
        batch = _IntervalBatch(query_id=query_id, mode=mode, roots=[])
        for root_key, vid, home in roots:
            root = _IntervalRoot(root_key=root_key)
            root.visited.add(self.node.id)
            root.seen.add((home, "t", vid))
            vids, _rids = root.pending.setdefault(home, (set(), set()))
            vids.add(vid)
            batch.roots.append(root)
        self._interval_batches[query_id] = batch
        self._interval_continue(batch)

    def _interval_continue(self, batch: _IntervalBatch) -> None:
        # Drain targets on the coordinator's own partition without a network
        # hop; doing so can surface new local frontier entries, so loop.
        while True:
            local_targets: List[Tuple[int, Tuple[str, ...], Tuple[str, ...]]] = []
            for index, root in enumerate(batch.roots):
                entry = root.pending.pop(self.node.id, None)
                if entry is not None:
                    local_targets.append(
                        (index, tuple(sorted(entry[0])), tuple(sorted(entry[1])))
                    )
            if not local_targets:
                break
            for result in self._interval_partition_results(batch.mode, local_targets):
                self._interval_absorb(batch, result, self.node.id)
        # One message per partition carrying every root's remaining targets.
        by_partition: Dict[object, List[Tuple[int, Tuple[str, ...], Tuple[str, ...]]]] = {}
        for index, root in enumerate(batch.roots):
            pending, root.pending = root.pending, {}
            for partition, (vids, rids) in pending.items():
                by_partition.setdefault(partition, []).append(
                    (index, tuple(sorted(vids)), tuple(sorted(rids)))
                )
        if not by_partition:
            self._interval_finish(batch)
            return
        batch.outstanding = len(by_partition)
        trace = None
        if self._tracing():
            current = self.obs.tracer.current()
            trace = current.as_tuple() if current is not None else None
        for partition in sorted(by_partition, key=repr):
            request_id = self._new_request_id()
            self._interval_pending[request_id] = batch.query_id
            self.node.send(
                partition,
                CATEGORY_PROVENANCE_QUERY,
                IntervalRequest(
                    query_id=batch.query_id,
                    request_id=request_id,
                    mode=batch.mode,
                    targets=tuple(by_partition[partition]),
                    reply_to=self.node.id,
                    trace=trace,
                ),
            )

    def _interval_absorb(
        self, batch: _IntervalBatch, result: IntervalRootResult, partition: object
    ) -> None:
        root = batch.roots[result.root_index]
        root.value |= result.value
        root.truncated = root.truncated or result.truncated
        root.visited.add(partition)
        for rloc, rid in result.frontier:
            token = (rloc, "x", rid)
            if token in root.seen:
                continue
            root.seen.add(token)
            _vids, rids = root.pending.setdefault(rloc, (set(), set()))
            rids.add(rid)

    def _interval_finish(self, batch: _IntervalBatch) -> None:
        self._interval_batches.pop(batch.query_id, None)
        for root in batch.roots:
            self.engine._finish_root(
                root.root_key,
                _Bundle(
                    value=frozenset(root.value),
                    truncated=root.truncated,
                    visited=frozenset(root.visited),
                    cache_hits=0,
                ),
            )

    def _on_interval_request(self, request: IntervalRequest) -> None:
        span = None
        if self._tracing() and request.trace is not None:
            span = self.obs.tracer.start_span(
                "interval.partition",
                parent=TraceContext.from_tuple(request.trace),
                node=repr(self.node.id),
                targets=len(request.targets),
            )
        results = self._interval_partition_results(request.mode, request.targets)
        if span is not None:
            span.finish(results=len(results))
        self.node.send(
            request.reply_to,
            CATEGORY_PROVENANCE_REPLY,
            IntervalReply(
                query_id=request.query_id,
                request_id=request.request_id,
                location=self.node.id,
                results=tuple(results),
            ),
        )

    def _on_interval_reply(self, reply: IntervalReply) -> None:
        query_id = self._interval_pending.pop(reply.request_id, None)
        if query_id is None:
            return
        batch = self._interval_batches.get(query_id)
        if batch is None:
            return
        for result in reply.results:
            self._interval_absorb(batch, result, reply.location)
        batch.outstanding -= 1
        if batch.outstanding == 0:
            self._interval_continue(batch)

    def _interval_partition_results(
        self, mode: str, targets: Sequence[Tuple[int, Tuple[str, ...], Tuple[str, ...]]]
    ) -> List[IntervalRootResult]:
        """Answer one wave of targets against this partition's interval index.

        The index provides only *reachability* (one range-scan closure per
        root); every value and truncation decision is made against the live
        ``prov`` / ``ruleExec`` rows, mirroring the traversal reducers
        exactly:

        * a reached tuple with no prov rows is a leaf (its own ref for
          lineage);
        * a BASE prov row contributes the tuple's ref (lineage);
        * a local non-BASE prov row whose rule execution is gone means the
          firing was retracted mid-flight — empty and truncated, exactly
          like the traversal's retracted-exec frame;
        * a remote prov row becomes a frontier entry for the rid's
          partition;
        * for participants, processing any target here contributes this
          partition (every traversal frame at a node adds that node).
        """
        store = self._pstore
        index = store.interval_index()
        index.ensure_ready()
        results: List[IntervalRootResult] = []
        for root_index, vids, rids in targets:
            keys = [("t", vid) for vid in vids] + [("x", rid) for rid in rids]
            reached, missing = index.closure(keys)
            truncated = False
            items: set = set()
            frontier: set = set()
            for rid in rids:
                if not store.has_rule_exec(rid):
                    truncated = True
            for key in missing:
                kind, ident = key
                if kind == "t" and not store.prov_entries(ident):
                    # Legitimate leaf the index has never needed to see.
                    if mode == QUERY_LINEAGE:
                        items.add(self._tuple_ref(ident))
                elif kind == "t" or store.has_rule_exec(ident):
                    truncated = True  # index raced the store: answer conservatively
            for key in reached:
                kind, ident = key
                if kind != "t":
                    continue
                entries = store.prov_entries(ident)
                if not entries:
                    if mode == QUERY_LINEAGE:
                        items.add(self._tuple_ref(ident))
                    continue
                for entry in entries:
                    if entry.rid == BASE_RID:
                        if mode == QUERY_LINEAGE:
                            items.add(self._tuple_ref(ident))
                    elif entry.rloc == self.node.id:
                        if not store.has_rule_exec(entry.rid):
                            truncated = True
                    else:
                        frontier.add((entry.rloc, entry.rid))
            if mode == QUERY_PARTICIPANTS:
                items.add(self.node.id)
            results.append(
                IntervalRootResult(
                    root_index=root_index,
                    value=frozenset(items),
                    frontier=tuple(
                        sorted(frontier, key=lambda item: (repr(item[0]), item[1]))
                    ),
                    truncated=truncated,
                )
            )
        return results

    # -- frame construction -------------------------------------------------------------

    def _make_tuple_frame(
        self, query_id: str, vid: str, mode: str, options: QueryOptions, depth: int
    ) -> _Frame:
        frame = _Frame(
            frame_id=self._new_frame_id(),
            kind="tuple",
            target=vid,
            mode=mode,
            options=options,
            depth=depth,
            tuple_ref=self._tuple_ref(vid),
            query_id=query_id,
        )
        self._frames[frame.frame_id] = frame
        reducer = self._reducer(mode)

        # Captured before any provenance rows are read: the completed result
        # is stored under this version, so a concurrent subtree change (which
        # bumps the current version past it) can never be masked.
        frame.version_at_start = self.engine.entry_version(vid)
        if options.use_cache:
            cached = self.cache.lookup(vid, mode, options, frame.version_at_start)
            if cached is not None:
                frame.cached_bundle = _Bundle(
                    value=cached,
                    truncated=False,
                    visited=frozenset({self.node.id}),
                    cache_hits=1,
                    version=frame.version_at_start,
                )
                return frame

        if options.max_depth is not None and depth > options.max_depth:
            frame.truncated = True
            return frame  # no subtasks: treated as a leaf

        for entry in self._pstore.prov_entries(vid):
            if entry.rid == BASE_RID:
                bundle = _Bundle(
                    value=reducer.base_value(frame.tuple_ref),
                    visited=frozenset({self.node.id}),
                )
                frame.subtasks.append(_Subtask(kind="immediate", bundle=bundle))
            elif entry.rloc == self.node.id:
                frame.subtasks.append(_Subtask(kind="local-exec", target=entry.rid))
            else:
                frame.subtasks.append(
                    _Subtask(kind="remote-exec", target=entry.rid, remote_node=entry.rloc)
                )
        frame.collected = [None] * len(frame.subtasks)
        return frame

    def _make_exec_frame(
        self, query_id: str, rid: str, mode: str, options: QueryOptions, depth: int
    ) -> _Frame:
        frame = _Frame(
            frame_id=self._new_frame_id(),
            kind="exec",
            target=rid,
            mode=mode,
            options=options,
            depth=depth,
            query_id=query_id,
        )
        self._frames[frame.frame_id] = frame
        store = self._pstore
        if not store.has_rule_exec(rid):
            # The firing was retracted while the query was in flight; report an
            # empty, truncated sub-result rather than failing the whole query.
            frame.truncated = True
            frame.exec_ref = ExecRef(rid=rid, rule_name="<retracted>", program_name="", location=self.node.id)
            return frame
        entry = store.rule_exec(rid)
        frame.exec_ref = ExecRef(
            rid=rid,
            rule_name=entry.rule_name,
            program_name=entry.program_name,
            location=self.node.id,
        )
        for child_vid in entry.child_vids:
            frame.subtasks.append(_Subtask(kind="local-tuple", target=child_vid))
        frame.collected = [None] * len(frame.subtasks)
        return frame

    # -- frame execution -------------------------------------------------------------------

    def _activate(self, frame: _Frame) -> None:
        if frame.cached_bundle is not None:
            self._complete(frame, frame.cached_bundle)
            return
        if not frame.subtasks:
            self._complete(frame, self._combine(frame))
            return
        if frame.options.traversal == TRAVERSAL_SEQUENTIAL:
            self._dispatch_next(frame)
            return
        # Parallel traversal: expand every alternative at once.  Remote
        # subtasks targeting the same peer are grouped into one
        # QueryRequestBatch, so the whole fan-out costs one message per
        # distinct destination and one communication round in total.
        frame.outstanding = len(frame.subtasks)
        frame.cursor = len(frame.subtasks)
        remote_groups: Dict[object, List[int]] = {}
        remote_order: List[object] = []
        for index, subtask in enumerate(frame.subtasks):
            if subtask.kind == "remote-exec":
                if subtask.remote_node not in remote_groups:
                    remote_order.append(subtask.remote_node)
                remote_groups.setdefault(subtask.remote_node, []).append(index)
            else:
                self._execute_subtask(frame, index)
        for destination in remote_order:
            self._send_remote_batch(frame, destination, remote_groups[destination])

    def _send_remote_batch(self, frame: _Frame, destination: object, indexes: List[int]) -> None:
        """Ship the given remote subtasks of *frame* to one peer in one message."""
        trace = self._request_trace(frame)
        requests: List[QueryRequest] = []
        for index in indexes:
            subtask = frame.subtasks[index]
            request_id = self._new_request_id()
            self._pending_remote[request_id] = (frame.frame_id, index)
            requests.append(
                QueryRequest(
                    query_id=frame.query_id,
                    request_id=request_id,
                    kind=_REQUEST_KIND_EXEC,
                    target=subtask.target,
                    mode=frame.mode,
                    options=frame.options,
                    depth=frame.depth,
                    reply_to=self.node.id,
                    trace=trace,
                )
            )
        payload: object = requests[0] if len(requests) == 1 else QueryRequestBatch(tuple(requests))
        self.node.send(destination, CATEGORY_PROVENANCE_QUERY, payload)

    def _dispatch_next(self, frame: _Frame) -> None:
        index = frame.cursor
        frame.cursor += 1
        frame.outstanding += 1
        self._execute_subtask(frame, index)

    def _execute_subtask(self, frame: _Frame, index: int) -> None:
        subtask = frame.subtasks[index]
        if subtask.kind == "immediate":
            self._deliver(frame, index, subtask.bundle)
            return
        if subtask.kind == "local-exec":
            child = self._make_exec_frame(
                frame.query_id, subtask.target, frame.mode, frame.options, frame.depth
            )
            child.parent = (frame.frame_id, index)
            self._frame_span(child, frame.span)
            self._activate(child)
            return
        if subtask.kind == "local-tuple":
            child = self._make_tuple_frame(
                frame.query_id, subtask.target, frame.mode, frame.options, frame.depth + 1
            )
            child.parent = (frame.frame_id, index)
            self._frame_span(child, frame.span)
            self._activate(child)
            return
        # remote-exec (rule fired at another node): a singleton batch, which
        # _send_remote_batch ships as a bare QueryRequest.
        self._send_remote_batch(frame, subtask.remote_node, [index])

    def _deliver(self, frame: _Frame, index: int, bundle: _Bundle) -> None:
        frame.collected[index] = bundle
        frame.outstanding -= 1
        if frame.outstanding > 0:
            return
        if self._threshold_met(frame):
            if frame.cursor < len(frame.subtasks):
                frame.truncated = True  # pruning skipped the remaining alternatives
            self._complete(frame, self._combine(frame))
            return
        if frame.cursor < len(frame.subtasks):
            self._dispatch_next(frame)
            return
        self._complete(frame, self._combine(frame))

    def _threshold_met(self, frame: _Frame) -> bool:
        if frame.options.threshold is None:
            return False
        reducer = self._reducer(frame.mode)
        partial = self._combine(frame)
        return reducer.size(partial.value) >= frame.options.threshold

    def _combine(self, frame: _Frame) -> _Bundle:
        reducer = self._reducer(frame.mode)
        bundles = [bundle for bundle in frame.collected if bundle is not None]
        values = [bundle.value for bundle in bundles]
        visited: FrozenSet[object] = frozenset({self.node.id})
        truncated = frame.truncated
        cache_hits = 0
        for bundle in bundles:
            visited |= bundle.visited
            truncated = truncated or bundle.truncated
            cache_hits += bundle.cache_hits
        if frame.kind == "tuple":
            value = reducer.tuple_value(frame.tuple_ref, values)
        else:
            value = reducer.exec_value(frame.exec_ref, values)
        return _Bundle(
            value=value,
            truncated=truncated,
            visited=visited,
            cache_hits=cache_hits,
            version=frame.version_at_start,
        )

    def _complete(self, frame: _Frame, bundle: _Bundle) -> None:
        self._frames.pop(frame.frame_id, None)
        if frame.span is not None:
            frame.span.finish(
                truncated=bundle.truncated,
                cache_hits=bundle.cache_hits,
                subtasks=len(frame.subtasks),
            )
        if (
            frame.kind == "tuple"
            and frame.options.use_cache
            and not bundle.truncated
            and frame.cached_bundle is None
            and frame.version_at_start is not None
        ):
            self.cache.store(
                frame.target,
                frame.mode,
                frame.options,
                frame.version_at_start,
                bundle.value,
            )
        if frame.parent is not None:
            parent_id, slot = frame.parent
            parent = self._frames.get(parent_id)
            if parent is not None:
                self._deliver(parent, slot, bundle)
            return
        if frame.reply_batch is not None:
            collector, query_id, request_id = frame.reply_batch
            collector.replies.append(
                QueryReply(
                    query_id=query_id,
                    request_id=request_id,
                    value=bundle.value,
                    truncated=bundle.truncated,
                    visited=bundle.visited,
                    cache_hits=bundle.cache_hits,
                    version=bundle.version,
                )
            )
            if len(collector.replies) == collector.expected:
                self.node.send(
                    collector.reply_to,
                    CATEGORY_PROVENANCE_REPLY,
                    QueryReplyBatch(tuple(collector.replies)),
                )
            return
        if frame.remote_reply is not None:
            reply_to, query_id, request_id = frame.remote_reply
            self.node.send(
                reply_to,
                CATEGORY_PROVENANCE_REPLY,
                QueryReply(
                    query_id=query_id,
                    request_id=request_id,
                    value=bundle.value,
                    truncated=bundle.truncated,
                    visited=bundle.visited,
                    cache_hits=bundle.cache_hits,
                    version=bundle.version,
                ),
            )
            return
        if frame.root_key is not None:
            self.engine._finish_root(frame.root_key, bundle)


class DistributedQueryEngine:
    """Issue provenance queries against a running :class:`NetTrailsRuntime`.

    The engine installs a :class:`QueryAgent` at every node; queries are
    evaluated by distributed traversal with all inter-node steps travelling
    through the simulated network, and the returned
    :class:`~repro.core.results.QueryResult` reports the traffic and latency
    the query cost.
    """

    def __init__(
        self,
        runtime,
        provenance: Optional[ProvenanceEngine] = None,
        cache_validation: str = CACHE_VALIDATION_VID,
        use_interval_index: Optional[bool] = None,
    ):
        self.runtime = runtime
        provenance = provenance if provenance is not None else runtime.provenance
        if provenance is None:
            raise QueryError(
                "the runtime has no provenance engine; construct it with provenance=True"
            )
        if cache_validation not in (CACHE_VALIDATION_VID, CACHE_VALIDATION_GLOBAL):
            raise QueryError(
                f"cache_validation must be {CACHE_VALIDATION_VID!r} or "
                f"{CACHE_VALIDATION_GLOBAL!r}, not {cache_validation!r}"
            )
        self.provenance: ProvenanceEngine = provenance
        #: Per-node query-cache capacity, taken from the runtime
        #: (``NetTrailsRuntime(query_cache_capacity=...)``): ``None`` there
        #: keeps :data:`DEFAULT_CACHE_CAPACITY`, ``0`` disables the cap.
        raw_capacity = getattr(runtime, "query_cache_capacity", None)
        if raw_capacity is None:
            self.cache_capacity: Optional[int] = DEFAULT_CACHE_CAPACITY
        elif raw_capacity == 0:
            self.cache_capacity = None
        else:
            self.cache_capacity = raw_capacity
        #: How cache entries are validated: per-VID reachability versions
        #: (the default — unrelated deltas keep entries alive) or the coarse
        #: global provenance version (any delta anywhere invalidates
        #: everything; kept as an ablation knob and as the automatic
        #: fallback for duck-typed recorders without per-VID versions).
        self.cache_validation = cache_validation
        #: Whether eligible queries use the per-partition interval index
        #: (one range-scan request per partition per wave) instead of the
        #: per-edge traversal.  ``None`` inherits the runtime's knob
        #: (``NetTrailsRuntime(use_interval_index=...)`` /
        #: ``NETTRAILS_INTERVAL_INDEX``); an explicit bool overrides it, so
        #: ablation runs can pit both paths against one shared runtime.
        if use_interval_index is None:
            use_interval_index = bool(getattr(runtime, "use_interval_index", False))
        self.use_interval_index = bool(use_interval_index)
        self._vid_version_fn = (
            getattr(provenance, "vid_version", None)
            if cache_validation == CACHE_VALIDATION_VID
            else None
        )
        self._global_version_fn = getattr(provenance, "global_version", None)
        self._reducers: Dict[str, QueryReducer] = dict(BUILTIN_REDUCERS)
        self._agents: Dict[object, QueryAgent] = {}
        for node_id, node in runtime.nodes.items():
            self._agents[node_id] = QueryAgent(node, self)
        self._completions: Dict[str, _Bundle] = {}
        # Root completions may be recorded from a concurrent backend's worker
        # threads (a root frame finishing inside a wave); the lock keeps the
        # completion map coherent without constraining per-node agent state,
        # which stays single-writer under the backend scheduling contract.
        self._completions_lock = threading.Lock()
        self._query_seq = itertools.count(1)
        #: Observability: adopt the runtime's bundle (if any) and expose the
        #: query-cache counters as a registry view plus a per-mode latency
        #: histogram.  Purely observational — absent entirely when the
        #: runtime's ``observability`` knob is off.
        self.obs = getattr(runtime, "obs", None)
        self._latency_histogram = None
        if self.obs is not None:
            self.obs.registry.register_view("cache", self.cache_totals)
            self._latency_histogram = self.obs.registry.histogram(
                "query.latency_seconds",
                "Wall-clock provenance query latency by query mode",
            )

    # -- reducers ---------------------------------------------------------------------

    def register_query(self, reducer: QueryReducer) -> None:
        """Register a custom query type (a :class:`~repro.core.queries.CustomQuery`)."""
        self._reducers[reducer.name] = reducer

    def reducer(self, mode: str) -> QueryReducer:
        if mode not in self._reducers:
            raise QueryError(
                f"unknown query mode {mode!r}; known modes: {sorted(self._reducers)}"
            )
        return self._reducers[mode]

    def global_version(self) -> int:
        """A counter that changes whenever any provenance table changes anywhere.

        Served from :meth:`ProvenanceEngine.global_version`'s memoized
        counter in O(1); the O(#nodes) scan over every partition remains
        only as the fallback for duck-typed recorders without one.
        """
        if self._global_version_fn is not None:
            return self._global_version_fn()
        return sum(
            self.provenance.store(node_id).version for node_id in self.provenance.node_ids()
        )

    def entry_version(self, vid: str) -> int:
        """The version cache entries for *vid* are tagged with and validated against.

        Per-VID reachability version under the default validation mode —
        bumped only when *vid*'s downstream provenance subgraph changes — or
        the global version under ``cache_validation="global"`` (and for
        recorders that don't track per-VID versions), where any delta
        anywhere invalidates every entry.
        """
        if self._vid_version_fn is not None:
            return self._vid_version_fn(vid)
        return self.global_version()

    def agent(self, node_id: object) -> QueryAgent:
        return self._agents[node_id]

    def _finish_root(self, root_key: str, bundle: _Bundle) -> None:
        with self._completions_lock:
            self._completions[root_key] = bundle

    # -- observability helpers -------------------------------------------------------------

    def _begin_query_span(self, query_id: str, mode: str):
        """Open the engine-level root span for one query (or interval batch).

        Returns ``(span, previous_ambient_context, wall_start)``; all three
        are ``None``-ish no-ops while tracing is off.  The span's context is
        installed as the tracer's ambient context so node drains executed
        inside the query's quiescence run parent to the query root instead
        of opening their own window trace.
        """
        if self.obs is None or not self.obs.tracing:
            return None, None, time.perf_counter()
        span = self.obs.tracer.start_span("query", trace_id=query_id, mode=mode)
        previous = self.obs.tracer.set_current(span.context())
        return span, previous, time.perf_counter()

    def _end_query_span(
        self,
        span: Optional[Span],
        wall_start: float,
        mode: str,
        messages: int,
        rounds: int,
        n_roots: int,
    ) -> None:
        """Finish the root span with the exact per-query deltas.

        The ``messages`` / ``rounds`` attributes are the same network-stat
        deltas :class:`~repro.core.results.QueryStats` reports, so summing
        them across every ``query``-named span reconciles exactly with the
        scenario driver's ``MetricsReport`` totals — the completeness
        invariant benchmark E20 gates.
        """
        if self._latency_histogram is not None:
            self._latency_histogram.labels(mode=mode).observe(time.perf_counter() - wall_start)
        if span is not None:
            span.finish(messages=messages, rounds=rounds, n_roots=n_roots)

    # -- query API ---------------------------------------------------------------------------

    def query(
        self,
        relation: str,
        values: Sequence[object],
        mode: str = QUERY_LINEAGE,
        options: Optional[QueryOptions] = None,
        at: Optional[object] = None,
    ) -> QueryResult:
        """Run a provenance query for the tuple ``relation(values)``.

        ``at`` is the node the query is issued from (defaults to the node
        storing the tuple).  The simulator is run to quiescence so the result
        is complete when this method returns.
        """
        options = options or QueryOptions.baseline()
        self.reducer(mode)  # validate the mode before doing any work
        if self._interval_eligible(mode, options):
            return self._run_interval_batch(relation, [values], mode, options, at)[0]
        fact = Fact.make(relation, values)
        vid = vid_for(fact)
        location = self.runtime.compiled.catalog.location_of(fact)
        if location not in self.runtime.nodes:
            raise QueryError(f"tuple {fact} is located at unknown node {location!r}")
        if not self.runtime.node(location).store.contains(fact):
            raise QueryError(f"tuple {fact} is not currently present at node {location!r}")

        query_id = f"query{next(self._query_seq)}"
        root_key = query_id
        stats_before = self.runtime.network.stats.snapshot()
        time_before = self.runtime.simulator.now
        rounds_before = self.runtime.simulator.rounds

        span, previous, wall_start = self._begin_query_span(query_id, mode)
        try:
            if at is None or at == location:
                self._agents[location].start_root(query_id, vid, mode, options, root_key)
            else:
                if at not in self._agents:
                    raise QueryError(f"query issued at unknown node {at!r}")
                self._agents[at].start_remote_root(query_id, vid, location, mode, options, root_key)

            self.runtime.run_to_quiescence()
        finally:
            if span is not None:
                self.obs.tracer.set_current(previous)
        with self._completions_lock:
            bundle = self._completions.pop(root_key, None)
        if bundle is None:
            raise QueryError(f"query {query_id} did not complete")

        stats_after = self.runtime.network.stats.snapshot()
        stats = QueryStats(
            messages=int(stats_after["messages"]) - int(stats_before["messages"]),
            bytes=int(stats_after["bytes"]) - int(stats_before["bytes"]),
            latency=self.runtime.simulator.now - time_before,
            rounds=self.runtime.simulator.rounds - rounds_before,
            nodes_visited=len(bundle.visited),
            cache_hits=bundle.cache_hits,
        )
        self._end_query_span(span, wall_start, mode, stats.messages, stats.rounds, n_roots=1)
        return QueryResult(
            mode=mode,
            root=TupleRef(relation=relation, values=fact.values, location=location),
            root_vid=vid,
            value=bundle.value,
            truncated=bundle.truncated,
            stats=stats,
        )

    def query_batch(
        self,
        relation: str,
        values_list: Sequence[Sequence[object]],
        mode: str = QUERY_LINEAGE,
        options: Optional[QueryOptions] = None,
        at: Optional[object] = None,
    ) -> List[QueryResult]:
        """Run one provenance query per row of *values_list*, batched.

        On the interval path every root shares the per-partition wave
        messages, so a whole wave of deep-lineage queries costs one request
        per partition per wave instead of one per child per root — the
        order-of-magnitude message saving the E16 benchmark measures.  When
        the interval path is off (or the mode/options are ineligible), the
        batch degrades to issuing the queries one by one.
        """
        options = options or QueryOptions.baseline()
        self.reducer(mode)
        rows = list(values_list)
        if not rows:
            return []
        if self._interval_eligible(mode, options):
            return self._run_interval_batch(relation, rows, mode, options, at)
        return [
            self.query(relation, values, mode=mode, options=options, at=at)
            for values in rows
        ]

    def _interval_eligible(self, mode: str, options: QueryOptions) -> bool:
        """Whether the interval index can answer this query bit-identically.

        The index accelerates full-closure set queries; threshold pruning,
        depth bounds and the per-vertex result cache are traversal-shaped
        options, so any of them falls back to the reference path.
        """
        return (
            self.use_interval_index
            and mode in (QUERY_LINEAGE, QUERY_PARTICIPANTS)
            and not options.use_cache
            and options.threshold is None
            and options.max_depth is None
        )

    def _run_interval_batch(
        self,
        relation: str,
        values_list: Sequence[Sequence[object]],
        mode: str,
        options: QueryOptions,
        at: Optional[object],
    ) -> List[QueryResult]:
        roots: List[Tuple[Fact, str, object]] = []
        for values in values_list:
            fact = Fact.make(relation, values)
            vid = vid_for(fact)
            location = self.runtime.compiled.catalog.location_of(fact)
            if location not in self.runtime.nodes:
                raise QueryError(f"tuple {fact} is located at unknown node {location!r}")
            if not self.runtime.node(location).store.contains(fact):
                raise QueryError(
                    f"tuple {fact} is not currently present at node {location!r}"
                )
            roots.append((fact, vid, location))
        coordinator = at if at is not None else roots[0][2]
        if coordinator not in self._agents:
            raise QueryError(f"query issued at unknown node {coordinator!r}")

        query_id = f"query{next(self._query_seq)}"
        root_keys = [f"{query_id}/{index}" for index in range(len(roots))]
        stats_before = self.runtime.network.stats.snapshot()
        time_before = self.runtime.simulator.now
        rounds_before = self.runtime.simulator.rounds

        span, previous, wall_start = self._begin_query_span(query_id, mode)
        try:
            self._agents[coordinator].start_interval_batch(
                query_id,
                mode,
                [
                    (root_keys[index], vid, location)
                    for index, (_fact, vid, location) in enumerate(roots)
                ],
            )
            self.runtime.run_to_quiescence()
        finally:
            if span is not None:
                self.obs.tracer.set_current(previous)

        stats_after = self.runtime.network.stats.snapshot()
        # Wave messages are shared by every root of the batch, so the stats
        # below are whole-batch figures repeated on each result (only
        # nodes_visited is per-root); summing them across a batch would
        # overcount.
        messages = int(stats_after["messages"]) - int(stats_before["messages"])
        octets = int(stats_after["bytes"]) - int(stats_before["bytes"])
        latency = self.runtime.simulator.now - time_before
        rounds = self.runtime.simulator.rounds - rounds_before
        self._end_query_span(span, wall_start, mode, messages, rounds, n_roots=len(roots))

        results: List[QueryResult] = []
        for index, (fact, vid, location) in enumerate(roots):
            with self._completions_lock:
                bundle = self._completions.pop(root_keys[index], None)
            if bundle is None:
                raise QueryError(f"query {query_id} did not complete")
            results.append(
                QueryResult(
                    mode=mode,
                    root=TupleRef(relation=relation, values=fact.values, location=location),
                    root_vid=vid,
                    value=bundle.value,
                    truncated=bundle.truncated,
                    stats=QueryStats(
                        messages=messages,
                        bytes=octets,
                        latency=latency,
                        rounds=rounds,
                        nodes_visited=len(bundle.visited),
                        cache_hits=bundle.cache_hits,
                    ),
                )
            )
        return results

    # -- convenience wrappers -------------------------------------------------------------------

    def lineage(self, relation: str, values: Sequence[object], **kwargs) -> QueryResult:
        """The set of base tuples contributing to the derivation of a tuple."""
        return self.query(relation, values, mode=QUERY_LINEAGE, **kwargs)

    def participants(self, relation: str, values: Sequence[object], **kwargs) -> QueryResult:
        """The set of nodes involved in the derivation of a tuple."""
        return self.query(relation, values, mode=QUERY_PARTICIPANTS, **kwargs)

    def derivation_count(self, relation: str, values: Sequence[object], **kwargs) -> QueryResult:
        """The total number of alternative derivations of a tuple."""
        return self.query(relation, values, mode=QUERY_COUNT, **kwargs)

    def subgraph(self, relation: str, values: Sequence[object], **kwargs) -> QueryResult:
        """The provenance subgraph rooted at a tuple (for visualization)."""
        return self.query(relation, values, mode=QUERY_SUBGRAPH, **kwargs)

    # -- cache statistics -----------------------------------------------------------------------

    def cache_stats(self) -> Dict[object, Dict[str, int]]:
        """Per-node cache hit/miss/store/eviction counters."""
        return {
            node_id: dict(agent.cache.counters())
            for node_id, agent in sorted(self._agents.items(), key=lambda item: repr(item[0]))
        }

    def cache_totals(self) -> Dict[str, int]:
        """System-wide cache counters, summed over every node's cache."""
        totals: Dict[str, int] = {}
        for stats in self.cache_stats().values():
            for key, value in stats.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def interval_totals(self) -> Dict[str, int]:
        """System-wide interval-index counters (empty if the recorder has none)."""
        totals_fn = getattr(self.provenance, "interval_totals", None)
        return totals_fn() if totals_fn is not None else {}
