"""Automatic provenance rule rewriting (the ExSPAN rewrite).

The paper (§2.2): *"we have presented an automatic rule rewriting algorithm
that takes as input a NDlog program and outputs a modified program that
contains additional rules for capturing the program's provenance information.
These additional rules define network provenance in terms of views over base
and derived tuples.  As the network protocol executes and updates network
state, views are incrementally recomputed."*

:func:`rewrite_program` implements that rewrite.  For every (localized) rule

    rX  h(@H, ...) :- b1(@L, ...), ..., bk(@L, ...), <conditions/assignments>.

it adds two provenance rules:

    rX_prov      prov(@H, VID, RID, RLoc)            :- <same body>,
                     ProvVid1 := f_vid("b1", ...), ..., RLoc := L,
                     RID := f_rid("rX", RLoc, ProvVid1, ..., ProvVidK),
                     VID := f_vid("h", ...).
    rX_ruleExec  ruleExec(@RLoc, RID, "rX", "prog", CVIDs) :- <same body>, ... .

plus, for every base relation ``b``, a rule deriving its ``prov`` entry with
the ``BASE`` marker.  Because the added rules are ordinary NDlog rules over
the same bodies, the provenance tables are *views* that the engine maintains
incrementally exactly like any other derived relation — which demonstrates
the paper's claim that maintenance and querying are both expressible in
NDlog ("our architecture offers a unified framework").

The engine-level hooks in :mod:`repro.core.maintenance` compute the same
tables more efficiently (without re-evaluating rule bodies); the equivalence
of the two paths on concrete programs is checked by the test suite.

Aggregate rules are passed through unmodified: their provenance (which input
tuples currently support a ``min``/``max``/``count`` value) depends on the
aggregate's group state and is therefore captured by the engine-level hooks
only.  "maybe" rules are likewise passed through — they describe possible
dependencies observed at a proxy, not derivations the engine computes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ProvenanceError
from repro.ndlog.ast import (
    Assignment,
    Atom,
    BodyElement,
    Condition,
    Constant,
    FunctionCall,
    Literal,
    Program,
    Rule,
    Term,
    Variable,
)
from repro.ndlog.functions import FunctionRegistry, default_registry
from repro.ndlog.localization import localize_program
from repro.core.keys import BASE_RID, rid_for, vid_for_values

#: Relation names used by the provenance views.
PROV_RELATION = "prov"
RULE_EXEC_RELATION = "ruleExec"

_VID_PREFIX = "Prov_Vid_"
_RID_VARIABLE = "Prov_Rid"
_HEAD_VID_VARIABLE = "Prov_HeadVid"
_CVIDS_VARIABLE = "Prov_ChildVids"
_RLOC_VARIABLE = "Prov_RLoc"


def provenance_registry(base: Optional[FunctionRegistry] = None) -> FunctionRegistry:
    """A function registry whose ``f_vid`` / ``f_rid`` match the engine's identifiers.

    Using this registry when executing a rewritten program makes the VIDs and
    RIDs it computes byte-for-byte identical to the ones produced by the
    engine-level :class:`~repro.core.maintenance.ProvenanceEngine`, so the two
    maintenance paths can be compared directly.
    """
    registry = (base or default_registry()).copy()
    registry.register("f_vid", lambda relation, *values: vid_for_values(str(relation), list(values)))
    registry.register(
        "f_rid",
        lambda rule_name, location, *vids: rid_for(str(rule_name), location, list(vids)),
    )
    return registry


def _location_variable(rule: Rule) -> Optional[str]:
    """The single body location variable of a localized rule (None if constant)."""
    names = rule.location_variables()
    if len(names) == 1:
        return next(iter(names))
    return None


def _vid_call(atom: Atom) -> FunctionCall:
    """Build ``f_vid("relation", <terms>)`` for one atom."""
    return FunctionCall("f_vid", (Constant(atom.relation),) + atom.terms)


def _head_terms_without_aggregate(rule: Rule) -> Tuple[Term, ...]:
    return rule.head.terms


def rewrite_rule(rule: Rule, program_name: str) -> List[Rule]:
    """Return the provenance rules for one localized, aggregate-free rule."""
    if rule.is_maybe or rule.has_aggregate:
        return []

    location_variable = _location_variable(rule)
    if location_variable is None:
        raise ProvenanceError(
            f"rule {rule.name!r} has no single body location variable; localize the program first"
        )

    shared_body: List[BodyElement] = list(rule.body)
    vid_assignments: List[Assignment] = []
    vid_variables: List[Variable] = []
    for index, literal in enumerate(rule.positive_literals, start=1):
        variable = f"{_VID_PREFIX}{index}"
        vid_assignments.append(Assignment(variable, _vid_call(literal.atom)))
        vid_variables.append(Variable(variable))

    rloc_assignment = Assignment(_RLOC_VARIABLE, Variable(location_variable))
    rid_assignment = Assignment(
        _RID_VARIABLE,
        FunctionCall(
            "f_rid",
            (Constant(rule.name), Variable(_RLOC_VARIABLE)) + tuple(vid_variables),
        ),
    )
    head_vid_assignment = Assignment(
        _HEAD_VID_VARIABLE, _vid_call(rule.head)
    )
    cvids_assignment = Assignment(
        _CVIDS_VARIABLE, FunctionCall("f_makeList", tuple(vid_variables))
    )

    head_location_term = rule.head.location_term
    if head_location_term is None:
        head_location_term = Variable(location_variable)

    prov_head = Atom(
        PROV_RELATION,
        (
            head_location_term,
            Variable(_HEAD_VID_VARIABLE),
            Variable(_RID_VARIABLE),
            Variable(_RLOC_VARIABLE),
        ),
        location_index=0,
    )
    prov_rule = Rule(
        head=prov_head,
        body=tuple(
            shared_body
            + vid_assignments
            + [rloc_assignment, rid_assignment, head_vid_assignment]
        ),
        name=f"{rule.name}_prov",
    )

    rule_exec_head = Atom(
        RULE_EXEC_RELATION,
        (
            Variable(_RLOC_VARIABLE),
            Variable(_RID_VARIABLE),
            Constant(rule.name),
            Constant(program_name),
            Variable(_CVIDS_VARIABLE),
        ),
        location_index=0,
    )
    rule_exec_rule = Rule(
        head=rule_exec_head,
        body=tuple(
            shared_body
            + vid_assignments
            + [rloc_assignment, rid_assignment, cvids_assignment]
        ),
        name=f"{rule.name}_ruleExec",
    )
    return [prov_rule, rule_exec_rule]


def base_provenance_rule(relation: str, arity: int, location_index: int = 0) -> Rule:
    """The rule deriving the ``prov`` entry (with the BASE marker) of one base relation."""
    terms: List[Term] = []
    for index in range(arity):
        terms.append(Variable(f"Base_A{index}"))
    atom = Atom(relation, tuple(terms), location_index=location_index)
    location_term = terms[location_index]
    vid_assignment = Assignment(_HEAD_VID_VARIABLE, _vid_call(atom))
    prov_head = Atom(
        PROV_RELATION,
        (location_term, Variable(_HEAD_VID_VARIABLE), Constant(BASE_RID), location_term),
        location_index=0,
    )
    return Rule(
        head=prov_head,
        body=(Literal(atom), vid_assignment),
        name=f"{relation}_base_prov",
    )


def rewrite_program(program: Program, localize: bool = True) -> Program:
    """Return *program* extended with provenance-capturing rules.

    The returned program contains the original rules (localized when
    ``localize=True``, which is what the execution engine will do anyway)
    plus the ``prov`` / ``ruleExec`` view rules.  Execute it with the
    registry returned by :func:`provenance_registry` so that the computed
    identifiers match the engine's.
    """
    working = program
    if localize:
        ordinary = Program(name=program.name, materialized=dict(program.materialized))
        maybe_rules = []
        for rule in program.rules:
            if rule.is_maybe:
                maybe_rules.append(rule)
            else:
                ordinary.add_rule(rule)
        working = localize_program(ordinary)
        for rule in maybe_rules:
            working.add_rule(rule)

    rewritten = Program(
        name=f"{program.name}_with_provenance", materialized=dict(program.materialized)
    )
    for rule in working.rules:
        rewritten.add_rule(rule)
    for rule in working.rules:
        for extra in rewrite_rule(rule, program.name):
            rewritten.add_rule(extra)

    # Base-tuple provenance: one rule per extensional relation.
    arities = {}
    location_indices = {}
    for rule in working.rules:
        for literal in rule.literals:
            atom = literal.atom
            arities.setdefault(atom.relation, atom.arity)
            if atom.location_index is not None:
                location_indices.setdefault(atom.relation, atom.location_index)
    derived = working.head_relations()
    for relation in sorted(arities):
        if relation in derived or relation in (PROV_RELATION, RULE_EXEC_RELATION):
            continue
        rewritten.add_rule(
            base_provenance_rule(
                relation, arities[relation], location_indices.get(relation, 0)
            )
        )
    return rewritten
