"""Result objects returned by the distributed provenance query engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple


@dataclass(frozen=True)
class TupleRef:
    """A lightweight reference to a tuple (used in lineage results)."""

    relation: str
    values: Tuple[object, ...]
    location: object

    def __str__(self) -> str:
        rendered = ", ".join(str(v) for v in self.values)
        return f"{self.relation}({rendered})@{self.location}"


@dataclass
class QueryStats:
    """Cost accounting for one provenance query.

    ``messages``/``bytes`` measure network traffic, ``latency`` the elapsed
    virtual time, and ``rounds`` the number of distinct virtual-time instants
    the traversal needed (see :attr:`repro.engine.simulator.Simulator.rounds`)
    — parallel traversal minimises rounds at the price of exploring every
    alternative, sequential traversal the reverse.
    """

    messages: int = 0
    bytes: int = 0
    latency: float = 0.0
    rounds: int = 0
    nodes_visited: int = 0
    cache_hits: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "messages": self.messages,
            "bytes": self.bytes,
            "latency": self.latency,
            "rounds": self.rounds,
            "nodes_visited": self.nodes_visited,
            "cache_hits": self.cache_hits,
        }


@dataclass
class QueryResult:
    """The answer to one provenance query plus its execution statistics.

    ``value`` depends on the query mode:

    * lineage: a frozen set of :class:`TupleRef` (the contributing base tuples)
    * participants: a frozen set of node identifiers
    * count: an integer (number of alternative derivations)
    * subgraph: a :class:`repro.core.graph.ProvenanceGraph`
    * custom: whatever the registered reducer produces
    """

    mode: str
    root: TupleRef
    root_vid: str
    value: object
    truncated: bool = False
    stats: QueryStats = field(default_factory=QueryStats)

    def __str__(self) -> str:
        return (
            f"QueryResult(mode={self.mode}, root={self.root}, value={self.value!r}, "
            f"truncated={self.truncated}, messages={self.stats.messages})"
        )
