"""Content-addressed identifiers for provenance vertices.

ExSPAN's provenance graph is stored as distributed relational tables, so
vertices need stable identifiers that any node can recompute locally:

* a **VID** identifies a tuple vertex and is a hash of the relation name and
  the attribute values;
* an **RID** identifies a rule-execution vertex and is a hash of the rule
  name, the node the rule fired at, and the VIDs of its input tuples.

Because the identifiers are content-addressed, alternative derivations of the
same tuple map to the same tuple vertex (they appear as multiple ``prov``
entries for one VID), and re-derivations after churn map to the same vertex
ids — exactly the behaviour required for incremental maintenance.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

from repro.engine.tuples import Fact

#: RID marker used in ``prov`` entries of base tuples.
BASE_RID = "BASE"


def _digest(payload: str) -> str:
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]


def vid_for(fact: Fact) -> str:
    """Return the tuple-vertex identifier of *fact*."""
    return "vid_" + _digest(repr((fact.relation, fact.values)))


def vid_for_values(relation: str, values: Sequence[object]) -> str:
    """VID computed from raw relation name + values (used by the NDlog rewrite)."""
    return vid_for(Fact.make(relation, values))


def rid_for(rule_name: str, exec_node: object, child_vids: Iterable[str]) -> str:
    """Return the rule-execution vertex identifier for one rule firing."""
    return "rid_" + _digest(repr((rule_name, exec_node, tuple(child_vids))))
