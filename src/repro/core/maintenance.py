"""ExSPAN maintenance engine: incremental, distributed provenance tables.

The provenance graph is stored as two relational tables partitioned across
the nodes of the system, exactly as in ExSPAN / the paper:

* ``prov(@Loc, VID, RID, RLoc)`` — stored at the node ``Loc`` where the tuple
  identified by ``VID`` resides; one entry per derivation of the tuple.  The
  derivation is the rule execution ``RID`` which happened at node ``RLoc``
  (``RID = BASE`` and ``RLoc = Loc`` for base tuples).
* ``ruleExec(@RLoc, RID, Rule, Program, ChildVIDs)`` — stored at the node
  ``RLoc`` where the rule fired; ``ChildVIDs`` are the input tuples of the
  firing, which are always local to ``RLoc`` because rule bodies are
  localized before execution.

The engine is *incremental*: entries are added when the execution engine
reports a rule firing / derivation and removed when the corresponding
derivation is retracted, so the tables always reflect the provenance of the
current network state — which is what lets NetTrails answer provenance
queries while the protocols keep running.

The :class:`ProvenanceEngine` object is shared by all nodes of a runtime, but
its data is strictly partitioned into per-node :class:`NodeProvenanceStore`
instances; the distributed query engine only ever reads the partition of the
node a query step executes on, preserving the distribution semantics.

Beyond the per-partition version counters, the engine maintains **per-VID
reachability versions** for incremental query-cache invalidation:
:meth:`ProvenanceEngine.vid_version` reports a counter that advances exactly
when the tuple's *downstream provenance subgraph* — its ``prov`` /
``ruleExec`` descendants, the set a lineage or derivation traversal visits —
changes.  Every mutation marks the directly-affected vertex dirty, and the
dirty set is propagated *upward* along the support index (``child vid ->
consuming rule execs -> head vids``, hopping partitions through each rule
execution's recorded head location), so an unrelated delta leaves unrelated
vertices' versions — and therefore their cached query results — untouched.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import ProvenanceError, UnknownVertexError
from repro.engine.compiler import CompiledProgram
from repro.engine.evaluator import DerivationEffect
from repro.engine.messages import ProvenanceTag
from repro.engine.store import BASE_DERIVATION
from repro.engine.tuples import Fact
from repro.core.graph import ProvenanceGraph, RuleExecVertex, TupleVertex
from repro.core.interval_index import PartitionIntervalIndex
from repro.core.keys import BASE_RID, rid_for, vid_for


@dataclass(frozen=True)
class ProvEntry:
    """One row of the ``prov`` table (the ``@Loc`` column is the store's node)."""

    vid: str
    rid: str
    rloc: object

    def as_row(self, location: object) -> Tuple[object, ...]:
        return (location, self.vid, self.rid, self.rloc)


@dataclass(frozen=True)
class RuleExecEntry:
    """One row of the ``ruleExec`` table (the ``@RLoc`` column is the store's node)."""

    rid: str
    rule_name: str
    program_name: str
    child_vids: Tuple[str, ...]
    head_vid: str
    head_location: object

    def as_row(self, location: object) -> Tuple[object, ...]:
        return (location, self.rid, self.rule_name, self.program_name, self.child_vids)


class NodeProvenanceStore:
    """The partition of the provenance tables stored at one node.

    When the store belongs to a :class:`ProvenanceEngine` (*engine* is set),
    every mutation additionally reports the directly-affected vertex — the
    tuple whose derivations changed, or the head tuple of an added/removed
    rule execution — so the engine can propagate per-VID reachability
    versions upward; standalone stores skip that bookkeeping entirely.
    """

    def __init__(self, node_id: object, engine: Optional["ProvenanceEngine"] = None):
        self.node_id = node_id
        self._engine = engine
        #: vid -> set of ProvEntry (derivations of the tuple stored here)
        self._prov: Dict[str, Set[ProvEntry]] = {}
        #: rid -> RuleExecEntry for rules that fired here
        self._rule_execs: Dict[str, RuleExecEntry] = {}
        #: vid -> tuple descriptor for tuples this node has seen locally
        self._tuple_info: Dict[str, Tuple[str, Tuple[object, ...]]] = {}
        #: child vid -> set of rids (local rule execs that consumed it)
        self._uses: Dict[str, Set[str]] = {}
        #: bumped on every mutation; used by the query cache for invalidation
        self.version = 0
        self._bumps_suspended = 0
        self._pending_bump = False
        #: (home location, vid) pairs whose downstream subgraph changed since
        #: the last flush; insertion-ordered so propagation is deterministic.
        self._dirty: Dict[Tuple[object, str], None] = {}
        # Guards _rule_execs/_uses against the engine's cross-partition
        # reachability walk; standalone stores get a private lock.
        self._exec_lock = engine._graph_lock if engine is not None else threading.Lock()
        #: Lazily-created interval index over this partition's provenance DAG
        #: (see :mod:`repro.core.interval_index`).  ``None`` until a query
        #: first asks for it, so runs that never use the interval path pay
        #: nothing beyond a no-op attribute check per mutation.
        self._interval_index: Optional[PartitionIntervalIndex] = None

    # -- mutation -----------------------------------------------------------------

    def _bump(self) -> None:
        if self._bumps_suspended:
            self._pending_bump = True
            return
        self.version += 1
        if self._engine is not None:
            self._engine._note_store_bump()

    def _mark_dirty(self, home: object, vid: str) -> None:
        """Note that *vid*'s provenance subgraph changed; flush when unbatched.

        Callers mark dirty (flushing the per-VID bumps) *before* advancing
        the store version: the cache's clock-guarded sweep treats the global
        clock as "vid versions can only have changed if this moved", so the
        vid bumps must never trail the clock bump — a concurrently-running
        sweep that caught the new clock with old vid versions would record
        itself as up to date and strand that flush's dead entries forever.
        The reverse race (new vid versions, old clock) merely causes one
        extra sweep later.
        """
        self._dirty[(home, vid)] = None
        if not self._bumps_suspended:
            self._flush_dirty()

    def _flush_dirty(self) -> None:
        if not self._dirty:
            return
        dirty = list(self._dirty)
        self._dirty.clear()
        if self._engine is not None:
            self._engine._bump_reachability(dirty)

    @contextmanager
    def batched(self) -> Iterator["NodeProvenanceStore"]:
        """Coalesce all version bumps inside the block into (at most) one.

        Batch-first execution applies a whole delta batch under this context
        manager, so the provenance store advances its version once per batch
        instead of once per row — the query cache then sees one invalidation
        per batch, and version arithmetic stays O(1) per batch.  Per-VID
        reachability versions coalesce the same way: the dirty vertices of
        the whole batch propagate in one upward walk, bumping each affected
        vertex at most once per batch regardless of row count or shard
        layout.
        """
        self._bumps_suspended += 1
        try:
            yield self
        finally:
            self._bumps_suspended -= 1
            if self._bumps_suspended == 0:
                # Dirty flush strictly before the clock bump — see _mark_dirty.
                self._flush_dirty()
                if self._pending_bump:
                    self._pending_bump = False
                    self.version += 1
                    if self._engine is not None:
                        self._engine._note_store_bump()

    def record_tuple(self, fact: Fact) -> str:
        vid = vid_for(fact)
        self._tuple_info[vid] = (fact.relation, fact.values)
        return vid

    def interval_index(self) -> PartitionIntervalIndex:
        """This partition's interval index, created (cold) on first use."""
        if self._interval_index is None:
            self._interval_index = PartitionIntervalIndex(self)
        return self._interval_index

    def add_prov(self, vid: str, rid: str, rloc: object) -> ProvEntry:
        entry = ProvEntry(vid=vid, rid=rid, rloc=rloc)
        self._prov.setdefault(vid, set()).add(entry)
        if self._interval_index is not None:
            self._interval_index.note_prov_added(vid, rid, rloc)
        self._mark_dirty(self.node_id, vid)
        self._bump()
        return entry

    def remove_prov(self, entry: ProvEntry) -> None:
        entries = self._prov.get(entry.vid)
        if entries is None:
            return
        if self._interval_index is not None and entry in entries:
            self._interval_index.note_prov_removed(entry.vid, entry.rid, entry.rloc)
        entries.discard(entry)
        if not entries:
            del self._prov[entry.vid]
        self._mark_dirty(self.node_id, entry.vid)
        self._bump()

    def add_rule_exec(self, entry: RuleExecEntry) -> None:
        with self._exec_lock:
            self._rule_execs[entry.rid] = entry
            for child in entry.child_vids:
                self._uses.setdefault(child, set()).add(entry.rid)
        if self._interval_index is not None:
            self._interval_index.note_exec_added(entry.rid, entry.child_vids)
        self._mark_dirty(entry.head_location, entry.head_vid)
        self._bump()

    def remove_rule_exec(self, rid: str) -> None:
        with self._exec_lock:
            entry = self._rule_execs.pop(rid, None)
            if entry is None:
                return
            for child in entry.child_vids:
                uses = self._uses.get(child)
                if uses is not None:
                    uses.discard(rid)
                    if not uses:
                        del self._uses[child]
        if self._interval_index is not None:
            self._interval_index.note_exec_removed(rid, entry.child_vids)
        self._mark_dirty(entry.head_location, entry.head_vid)
        self._bump()

    # -- queries ------------------------------------------------------------------

    def prov_entries(self, vid: str) -> List[ProvEntry]:
        return sorted(self._prov.get(vid, set()), key=lambda e: (e.rid, repr(e.rloc)))

    def rule_exec(self, rid: str) -> RuleExecEntry:
        if rid not in self._rule_execs:
            raise UnknownVertexError(
                f"rule execution {rid!r} is not recorded at node {self.node_id!r}"
            )
        return self._rule_execs[rid]

    def has_rule_exec(self, rid: str) -> bool:
        return rid in self._rule_execs

    def tuple_info(self, vid: str) -> Tuple[str, Tuple[object, ...]]:
        if vid not in self._tuple_info:
            raise UnknownVertexError(f"tuple {vid!r} is not known at node {self.node_id!r}")
        return self._tuple_info[vid]

    def knows_tuple(self, vid: str) -> bool:
        return vid in self._tuple_info

    def uses_of(self, vid: str) -> List[str]:
        """RIDs of local rule executions that consumed tuple *vid*."""
        return sorted(self._uses.get(vid, set()))

    def prov_table(self) -> List[Tuple[object, ...]]:
        """The full local ``prov`` relation as rows ``(Loc, VID, RID, RLoc)``."""
        rows = []
        for vid in sorted(self._prov):
            for entry in self.prov_entries(vid):
                rows.append(entry.as_row(self.node_id))
        return rows

    def rule_exec_table(self) -> List[Tuple[object, ...]]:
        """The full local ``ruleExec`` relation as rows ``(RLoc, RID, Rule, Program, ChildVIDs)``."""
        return [self._rule_execs[rid].as_row(self.node_id) for rid in sorted(self._rule_execs)]

    @property
    def prov_count(self) -> int:
        return sum(len(entries) for entries in self._prov.values())

    @property
    def rule_exec_count(self) -> int:
        return len(self._rule_execs)


class ProvenanceEngine:
    """The system-wide (but per-node partitioned) provenance maintenance engine.

    Instances implement the recorder protocol expected by
    :class:`repro.engine.node.Node`:

    * :meth:`record_rule_exec` / :meth:`remove_rule_exec` are called at the
      node where a rule fires (or a firing is retracted);
    * :meth:`record_support` / :meth:`remove_support` are called at the node
      where a derived (or base) tuple is stored when a derivation is added or
      removed.
    """

    def __init__(self, compiled: Optional[CompiledProgram] = None):
        self.compiled = compiled
        self._stores: Dict[object, NodeProvenanceStore] = {}
        #: node -> (fact, derivation_id) -> ProvEntry, so retractions can find
        #: exactly the prov row that the corresponding insertion created.  The
        #: index is partitioned per node (like the stores themselves) so the
        #: recorder protocol stays single-writer per node when a concurrent
        #: execution backend drains distinct nodes in parallel.
        self._support_index: Dict[object, Dict[Tuple[Fact, str], ProvEntry]] = {}
        self.events_processed = 0
        # Guards the shared registry (lazy store creation, node enumeration)
        # and the events_processed counter; the per-node stores themselves
        # need no locking because each is only ever written by its node's
        # (serialized) events.
        self._registry_lock = threading.Lock()
        # Guards the cross-partition reachability metadata: the per-VID
        # version map, the memoized global version counter, and the
        # _rule_execs/_uses maps while the upward propagation walk reads
        # them.  Per-node event serialization does not cover this state —
        # one node's batch bumps *other* nodes' head vertices when it fires
        # or retracts rules whose heads live elsewhere.
        self._graph_lock = threading.Lock()
        #: vid -> reachability version; bumped (under _graph_lock) whenever
        #: the vertex's downstream provenance subgraph changes.  Missing
        #: entries read as 0.  Entries for *dead* vids (no live consumer and
        #: no live rule execution heading them) are pruned by a capped sweep
        #: once the map exceeds ``_vid_version_sweep_threshold``; soundness
        #: is preserved by **rebirth-epoch stamping**: the sweep folds every
        #: pruned counter into ``_rebirth_epoch``, and any later bump of any
        #: vid starts from at least that epoch — so a re-derivation of a
        #: pruned vid can never climb back to a version some cache still
        #: holds an entry for.  (A pruned-but-unchanged vid reads version 0,
        #: which at worst costs one conservative cache miss.)
        self._vid_versions: Dict[str, int] = {}
        #: Floor folded in from pruned counters (see above); bumps resume
        #: from max(current, epoch) + 1 so pruned versions are never reused.
        self._rebirth_epoch = 0
        #: Sweep trigger: map size above which _bump_reachability prunes dead
        #: vids.  Instance attribute so long-churn tests can lower it.
        self._vid_version_sweep_threshold = 65536
        #: Raised to 2x the post-sweep size after each sweep so a
        #: large-but-fully-live map costs amortized O(1) per flush instead
        #: of one full liveness scan each; the trigger is the max of this
        #: and the threshold, so lowering the threshold (tests) still works.
        self._vid_version_next_sweep = 0
        self._vid_version_sweeps = 0
        self._vid_versions_pruned = 0
        #: Memoized sum of all per-partition versions, so query-cache hot
        #: paths that still consult the global fallback stay O(1) instead of
        #: re-scanning every node's partition.
        self._global_version = 0

    def _count_event(self) -> None:
        with self._registry_lock:
            self.events_processed += 1

    # -- store access -------------------------------------------------------------

    def store(self, node_id: object) -> NodeProvenanceStore:
        store = self._stores.get(node_id)
        if store is None:
            with self._registry_lock:
                store = self._stores.get(node_id)
                if store is None:
                    store = NodeProvenanceStore(node_id, engine=self)
                    self._stores[node_id] = store
                    self._support_index[node_id] = {}
        return store

    def node_ids(self) -> List[object]:
        with self._registry_lock:
            known = list(self._stores)
        return sorted(known, key=repr)

    # -- recorder protocol (called by the execution engine) --------------------------

    def record_rule_exec(self, exec_node: object, effect: DerivationEffect) -> ProvenanceTag:
        """Record one rule firing at *exec_node*; return the tag to ship with the head."""
        self._count_event()
        store = self.store(exec_node)
        child_vids = []
        for fact in effect.body_facts:
            child_vids.append(store.record_tuple(fact))
        head_vid = vid_for(effect.head_fact)
        rid = rid_for(effect.rule_name, exec_node, child_vids)
        store.add_rule_exec(
            RuleExecEntry(
                rid=rid,
                rule_name=effect.rule_name,
                program_name=effect.program_name,
                child_vids=tuple(child_vids),
                head_vid=head_vid,
                head_location=effect.head_location,
            )
        )
        return ProvenanceTag(
            rule_name=effect.rule_name,
            program_name=effect.program_name,
            exec_node=exec_node,
            rid=rid,
        )

    def remove_rule_exec(self, exec_node: object, effect: DerivationEffect) -> None:
        """Remove the rule-execution entry for a retracted firing."""
        self._count_event()
        store = self.store(exec_node)
        child_vids = [vid_for(fact) for fact in effect.body_facts]
        rid = rid_for(effect.rule_name, exec_node, child_vids)
        store.remove_rule_exec(rid)

    def record_support(
        self,
        node_id: object,
        fact: Fact,
        derivation_id: str,
        tag: Optional[ProvenanceTag],
    ) -> None:
        """Record one derivation (prov entry) of *fact* at its home node."""
        self._count_event()
        store = self.store(node_id)
        vid = store.record_tuple(fact)
        if tag is None or derivation_id == BASE_DERIVATION:
            entry = store.add_prov(vid, BASE_RID, node_id)
        else:
            entry = store.add_prov(vid, tag.rid, tag.exec_node)
        self._support_index[node_id][(fact, derivation_id)] = entry

    def remove_support(self, node_id: object, fact: Fact, derivation_id: str) -> None:
        """Remove the prov entry created for (*fact*, *derivation_id*) at *node_id*."""
        self._count_event()
        store = self.store(node_id)
        entry = self._support_index[node_id].pop((fact, derivation_id), None)
        if entry is None:
            return
        store.remove_prov(entry)

    # -- batched recorder protocol (used by the batch-first execution path) -----------

    def apply_support_batch(
        self,
        node_id: object,
        ops: Sequence[Tuple[int, Fact, str, Optional[ProvenanceTag]]],
    ) -> None:
        """Apply an ordered batch of support changes with one version bump.

        Each op is ``(sign, fact, derivation_id, tag)``; ``sign > 0`` records
        a prov entry exactly like :meth:`record_support`, ``sign < 0`` removes
        one like :meth:`remove_support` (the tag is ignored).  The whole batch
        bumps the node's provenance version at most once.

        The batch is always the *logical node's* whole delta batch: when the
        node's store is sharded, the per-shard sub-batches are merged back
        before the support ops are built, so the provenance partition sees
        one batch — and at most one version bump — per logical-node batch
        regardless of the shard count (asserted by the sharding equivalence
        suite via :meth:`version_of`).
        """
        if not ops:
            return
        with self.store(node_id).batched():
            for sign, fact, derivation_id, tag in ops:
                if sign > 0:
                    self.record_support(node_id, fact, derivation_id, tag)
                else:
                    self.remove_support(node_id, fact, derivation_id)

    def apply_rule_exec_batch(
        self, exec_node: object, effects: Sequence[DerivationEffect]
    ) -> List[Optional[ProvenanceTag]]:
        """Record/remove a batch of rule executions with one version bump.

        Returns one entry per effect: the :class:`ProvenanceTag` to ship with
        a firing (``sign > 0``), or ``None`` for a retraction.
        """
        if not effects:
            return []
        tags: List[Optional[ProvenanceTag]] = []
        with self.store(exec_node).batched():
            for effect in effects:
                if effect.sign > 0:
                    tags.append(self.record_rule_exec(exec_node, effect))
                else:
                    self.remove_rule_exec(exec_node, effect)
                    tags.append(None)
        return tags

    # -- per-VID reachability versions ----------------------------------------------------

    def _note_store_bump(self) -> None:
        """Advance the memoized global version; one call per partition bump."""
        with self._graph_lock:
            self._global_version += 1

    def _bump_reachability(self, dirty: Sequence[Tuple[object, str]]) -> None:
        """Bump the reachability version of every ancestor of the dirty set.

        *dirty* holds ``(home location, vid)`` pairs of vertices whose own
        derivations (or deriving rule executions) just changed.  A change to
        a vertex's subgraph is a change to every ancestor's subgraph too, so
        the walk follows the support index upward — local consuming rule
        executions, then their head tuples at the heads' recorded home
        partitions — bumping each visited vertex exactly once per flush.
        Cyclic support (possible while a retraction wave is mid-flight) is
        handled by the visited set.
        """
        with self._graph_lock:
            seen: Set[str] = set()
            stack = list(dirty)
            while stack:
                home, vid = stack.pop()
                if vid in seen:
                    continue
                seen.add(vid)
                self._vid_versions[vid] = (
                    max(self._vid_versions.get(vid, 0), self._rebirth_epoch) + 1
                )
                store = self._stores.get(home)
                if store is None:
                    continue
                for rid in sorted(store._uses.get(vid, ())):
                    entry = store._rule_execs.get(rid)
                    if entry is not None:
                        stack.append((entry.head_location, entry.head_vid))
            if len(self._vid_versions) > max(
                self._vid_version_sweep_threshold, self._vid_version_next_sweep
            ):
                self._sweep_vid_versions()

    def _sweep_vid_versions(self) -> None:
        """Prune version counters of dead vids, folding them into the epoch.

        Caller holds ``_graph_lock``.  Liveness is judged only from state
        that same lock guards (the per-store ``_uses`` keys and live rule
        executions' head vids) — deliberately *not* from the unlocked
        ``_prov`` / ``_tuple_info`` maps, which concurrent node events may
        be mutating.  That makes the live set an under-approximation (a
        base tuple nothing consumes yet counts as dead), which is sound:
        pruning such a vid merely downgrades cache validation to a miss.
        """
        live: Set[str] = set()
        for store in self._stores.values():
            live.update(store._uses)
            for entry in store._rule_execs.values():
                live.add(entry.head_vid)
        dead = [vid for vid in self._vid_versions if vid not in live]
        for vid in dead:
            self._rebirth_epoch = max(self._rebirth_epoch, self._vid_versions.pop(vid))
        self._vid_version_sweeps += 1
        self._vid_versions_pruned += len(dead)
        self._vid_version_next_sweep = 2 * len(self._vid_versions)

    def vid_version(self, vid: str) -> int:
        """The reachability version of one tuple vertex (0 if never touched).

        The counter advances exactly when the vertex's downstream provenance
        subgraph — what a lineage/derivation traversal from it would visit —
        changes; deltas elsewhere leave it alone.  The query cache validates
        entries against this, so unrelated churn no longer flushes them.
        """
        return self._vid_versions.get(vid, 0)

    def vid_versions(self) -> Dict[str, int]:
        """A snapshot of every non-zero per-VID reachability version."""
        with self._graph_lock:
            return dict(self._vid_versions)

    def vid_version_stats(self) -> Dict[str, int]:
        """Size/pruning statistics of the per-VID version map."""
        with self._graph_lock:
            return {
                "entries": len(self._vid_versions),
                "epoch": self._rebirth_epoch,
                "sweeps": self._vid_version_sweeps,
                "pruned": self._vid_versions_pruned,
            }

    # -- interval-index statistics --------------------------------------------------------

    def interval_stats(self) -> Dict[object, Dict[str, int]]:
        """Per-partition interval-index counters (partitions that have one)."""
        stats = {}
        for node_id, store in sorted(self._stores.items(), key=lambda item: repr(item[0])):
            index = store._interval_index
            if index is not None:
                stats[node_id] = index.counters()
        return stats

    def interval_totals(self) -> Dict[str, int]:
        """Interval-index counters summed across all partitions."""
        totals: Dict[str, int] = {}
        for counters in self.interval_stats().values():
            for key, value in counters.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def global_version(self) -> int:
        """The sum of all per-partition versions, memoized to O(1).

        Kept as the coarse fallback for cache validation against recorders
        that predate per-VID versions; equal, by construction, to
        ``sum(self.versions().values())``.
        """
        return self._global_version

    # -- statistics ----------------------------------------------------------------------

    def version_of(self, node_id: object) -> int:
        """The provenance version of one node's partition.

        The version advances at most once per applied batch
        (:meth:`NodeProvenanceStore.batched`), so two executions that absorb
        the same logical batches — e.g. a sharded and an unsharded run of the
        same workload — report identical versions here; tests use this to pin
        the one-bump-per-batch invariant.

        Purely a read accessor: asking about a node without a partition
        raises instead of materialising an empty one.
        """
        store = self._stores.get(node_id)
        if store is None:
            raise ProvenanceError(f"no provenance partition recorded for node {node_id!r}")
        return store.version

    def versions(self) -> Dict[object, int]:
        """Provenance versions of every known partition (sorted by node repr)."""
        return {
            node_id: store.version
            for node_id, store in sorted(self._stores.items(), key=lambda item: repr(item[0]))
        }

    def table_sizes(self) -> Dict[str, int]:
        """Total sizes of the distributed provenance tables."""
        prov = sum(store.prov_count for store in self._stores.values())
        rule_execs = sum(store.rule_exec_count for store in self._stores.values())
        return {"prov": prov, "ruleExec": rule_execs}

    def per_node_sizes(self) -> Dict[object, Dict[str, int]]:
        return {
            node_id: {"prov": store.prov_count, "ruleExec": store.rule_exec_count}
            for node_id, store in sorted(self._stores.items(), key=lambda item: repr(item[0]))
        }

    # -- graph assembly (centralized view for visualization / analysis) ---------------------

    def vid_of(self, relation: str, values: Iterable[object]) -> str:
        return vid_for(Fact.make(relation, list(values)))

    def resolve_tuple(self, vid: str) -> Tuple[str, Tuple[object, ...], object]:
        """Find (relation, values, location) of a tuple vertex by searching all partitions."""
        for node_id, store in self._stores.items():
            if store.knows_tuple(vid) and store.prov_entries(vid):
                relation, values = store.tuple_info(vid)
                return relation, values, node_id
        # Fall back to any node that has seen the tuple (e.g. as a rule input).
        for node_id, store in self._stores.items():
            if store.knows_tuple(vid):
                relation, values = store.tuple_info(vid)
                return relation, values, node_id
        raise UnknownVertexError(f"tuple vertex {vid!r} is unknown to every node")

    def build_graph(self) -> ProvenanceGraph:
        """Assemble the full provenance graph from the distributed tables.

        This is a *centralized* convenience used by the log store, the
        visualizer and the offline analysis helpers; the distributed query
        engine never calls it.
        """
        graph = ProvenanceGraph()
        # Tuple vertices, with base-ness from prov entries.
        for node_id, store in self._stores.items():
            for vid in sorted(store._prov):
                relation, values = store.tuple_info(vid)
                is_base = any(entry.rid == BASE_RID for entry in store.prov_entries(vid))
                graph.add_tuple(
                    TupleVertex(
                        vid=vid,
                        relation=relation,
                        values=values,
                        location=node_id,
                        is_base=is_base,
                    )
                )
        # Rule-execution vertices and their dataflow edges; input tuples are
        # local to the executing node, so their descriptors are available.
        for node_id, store in self._stores.items():
            for rid in sorted(store._rule_execs):
                entry = store.rule_exec(rid)
                for child_vid in entry.child_vids:
                    if not graph.has_tuple(child_vid):
                        relation, values, location = self.resolve_tuple(child_vid)
                        graph.add_tuple(
                            TupleVertex(
                                vid=child_vid,
                                relation=relation,
                                values=values,
                                location=location,
                                is_base=False,
                            )
                        )
                if not graph.has_tuple(entry.head_vid):
                    try:
                        relation, values, location = self.resolve_tuple(entry.head_vid)
                    except UnknownVertexError:
                        continue
                    graph.add_tuple(
                        TupleVertex(
                            vid=entry.head_vid,
                            relation=relation,
                            values=values,
                            location=location,
                            is_base=False,
                        )
                    )
                graph.add_rule_exec(
                    RuleExecVertex(
                        rid=rid,
                        rule_name=entry.rule_name,
                        program_name=entry.program_name,
                        location=node_id,
                    ),
                    entry.child_vids,
                    entry.head_vid,
                )
        return graph
