"""Provenance query types, expressed as distributed reducers.

ExSPAN lets users customise provenance queries; the paper lists querying "a
tuple's lineage, the set of all nodes that have been involved in the
derivation of a given tuple, and/or the total number of alternative
derivations".  All of these — and user-defined ones — are expressed here as
*reducers* over the provenance graph:

* ``base_value(tuple_ref)`` — the value of a base-tuple leaf;
* ``exec_value(exec_ref, child_values)`` — the value of a rule execution,
  combining the values of its input tuples;
* ``tuple_value(tuple_ref, derivation_values)`` — the value of a tuple
  vertex, combining the values of its alternative derivations;
* ``size(value)`` — a magnitude used by threshold-based pruning.

The distributed query engine evaluates a reducer bottom-up while traversing
the distributed ``prov`` / ``ruleExec`` tables; because every reducer is
defined by these three local combination steps, the same traversal machinery
answers every query type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, Sequence

from repro.core.graph import ProvenanceGraph, TupleVertex
from repro.core.results import TupleRef

QUERY_LINEAGE = "lineage"
QUERY_PARTICIPANTS = "participants"
QUERY_COUNT = "count"
QUERY_SUBGRAPH = "subgraph"


@dataclass(frozen=True)
class ExecRef:
    """A lightweight reference to a rule execution (passed to reducers)."""

    rid: str
    rule_name: str
    program_name: str
    location: object


class QueryReducer:
    """Base class for provenance query reducers.

    Subclasses must provide a ``name`` attribute (the query mode string used
    to select the reducer).
    """

    def base_value(self, tuple_ref: TupleRef) -> object:
        raise NotImplementedError

    def exec_value(self, exec_ref: ExecRef, child_values: Sequence[object]) -> object:
        raise NotImplementedError

    def tuple_value(self, tuple_ref: TupleRef, derivation_values: Sequence[object]) -> object:
        raise NotImplementedError

    def size(self, value: object) -> int:
        """Magnitude of a partial result, used for threshold-based pruning."""
        return 1


class LineageReducer(QueryReducer):
    """The set of base tuples contributing to a derivation."""

    name = QUERY_LINEAGE

    def base_value(self, tuple_ref: TupleRef) -> FrozenSet[TupleRef]:
        return frozenset({tuple_ref})

    def exec_value(self, exec_ref: ExecRef, child_values: Sequence[object]) -> FrozenSet[TupleRef]:
        result: FrozenSet[TupleRef] = frozenset()
        for value in child_values:
            result |= value
        return result

    def tuple_value(self, tuple_ref: TupleRef, derivation_values: Sequence[object]) -> FrozenSet[TupleRef]:
        if not derivation_values:
            return frozenset({tuple_ref})
        result: FrozenSet[TupleRef] = frozenset()
        for value in derivation_values:
            result |= value
        return result

    def size(self, value: object) -> int:
        return len(value)  # type: ignore[arg-type]


class ParticipantsReducer(QueryReducer):
    """The set of nodes that participated in any derivation of the tuple."""

    name = QUERY_PARTICIPANTS

    def base_value(self, tuple_ref: TupleRef) -> FrozenSet[object]:
        return frozenset({tuple_ref.location})

    def exec_value(self, exec_ref: ExecRef, child_values: Sequence[object]) -> FrozenSet[object]:
        result: FrozenSet[object] = frozenset({exec_ref.location})
        for value in child_values:
            result |= value
        return result

    def tuple_value(self, tuple_ref: TupleRef, derivation_values: Sequence[object]) -> FrozenSet[object]:
        result: FrozenSet[object] = frozenset({tuple_ref.location})
        for value in derivation_values:
            result |= value
        return result

    def size(self, value: object) -> int:
        return len(value)  # type: ignore[arg-type]


class CountReducer(QueryReducer):
    """The total number of alternative derivations of the tuple."""

    name = QUERY_COUNT

    def base_value(self, tuple_ref: TupleRef) -> int:
        return 1

    def exec_value(self, exec_ref: ExecRef, child_values: Sequence[object]) -> int:
        product = 1
        for value in child_values:
            product *= int(value)
        return product

    def tuple_value(self, tuple_ref: TupleRef, derivation_values: Sequence[object]) -> int:
        if not derivation_values:
            return 1
        return sum(int(value) for value in derivation_values)

    def size(self, value: object) -> int:
        return int(value)


class SubgraphReducer(QueryReducer):
    """The provenance subgraph rooted at the queried tuple.

    Values are :class:`ProvenanceGraph` fragments that are merged while the
    distributed traversal returns; the root value is the full subgraph, which
    the visualizer renders as a hypertree.
    """

    name = QUERY_SUBGRAPH

    def base_value(self, tuple_ref: TupleRef) -> ProvenanceGraph:
        graph = ProvenanceGraph()
        graph.add_tuple(self._vertex(tuple_ref, is_base=True))
        return graph

    def exec_value(self, exec_ref: ExecRef, child_values: Sequence[object]) -> ProvenanceGraph:
        graph = ProvenanceGraph()
        for value in child_values:
            graph.merge(value)
        return graph

    def tuple_value(self, tuple_ref: TupleRef, derivation_values: Sequence[object]) -> ProvenanceGraph:
        graph = ProvenanceGraph()
        graph.add_tuple(self._vertex(tuple_ref, is_base=not derivation_values))
        for value in derivation_values:
            graph.merge(value)
        return graph

    def size(self, value: object) -> int:
        return value.tuple_count  # type: ignore[union-attr]

    @staticmethod
    def _vertex(tuple_ref: TupleRef, is_base: bool) -> TupleVertex:
        from repro.core.keys import vid_for_values

        return TupleVertex(
            vid=vid_for_values(tuple_ref.relation, list(tuple_ref.values)),
            relation=tuple_ref.relation,
            values=tuple_ref.values,
            location=tuple_ref.location,
            is_base=is_base,
        )


@dataclass
class CustomQuery(QueryReducer):
    """A user-customised provenance query built from three plain functions.

    Example — "maximum derivation depth"::

        depth_query = CustomQuery(
            name="depth",
            on_base=lambda ref: 0,
            on_exec=lambda exec_ref, children: 1 + max(children, default=0),
            on_tuple=lambda ref, derivations: max(derivations, default=0),
        )
    """

    name: str
    on_base: Callable[[TupleRef], object]
    on_exec: Callable[[ExecRef, Sequence[object]], object]
    on_tuple: Callable[[TupleRef, Sequence[object]], object]
    size_of: Callable[[object], int] = lambda value: 1

    def base_value(self, tuple_ref: TupleRef) -> object:
        return self.on_base(tuple_ref)

    def exec_value(self, exec_ref: ExecRef, child_values: Sequence[object]) -> object:
        return self.on_exec(exec_ref, child_values)

    def tuple_value(self, tuple_ref: TupleRef, derivation_values: Sequence[object]) -> object:
        return self.on_tuple(tuple_ref, derivation_values)

    def size(self, value: object) -> int:
        return self.size_of(value)


BUILTIN_REDUCERS = {
    QUERY_LINEAGE: LineageReducer(),
    QUERY_PARTICIPANTS: ParticipantsReducer(),
    QUERY_COUNT: CountReducer(),
    QUERY_SUBGRAPH: SubgraphReducer(),
}


def builtin_reducer(mode: str) -> QueryReducer:
    """Look up one of the built-in reducers by query mode name."""
    if mode not in BUILTIN_REDUCERS:
        raise KeyError(
            f"unknown query mode {mode!r}; built-in modes are {sorted(BUILTIN_REDUCERS)}"
        )
    return BUILTIN_REDUCERS[mode]
