"""Per-partition interval index over the provenance DAG.

The distributed query engine's traversal path answers "all supporting
descendants of this vertex" by recursive message passing over ``prov`` /
``ruleExec`` rows — one frame per vertex, one request per remote child.
This module implements the classic XPath/GRIPP-style acceleration the
ROADMAP names: DAG-ify each partition's provenance graph via a
deterministic spanning forest, label every vertex with a pre/post-order
integer interval ``[start, end)``, and keep the non-tree edges in
per-vertex *exception lists*.  A local descendant query then becomes one
binary search plus a contiguous range scan over the partition's label
table (following exception edges into other ranges), and a distributed
query ships **one batched request per partition** instead of one request
per child.

Vertices are keyed ``("t", vid)`` for tuples and ``("x", rid)`` for rule
executions.  Edges mirror the store's set semantics exactly:

* ``t:vid -> x:rid`` iff a *local*, non-BASE ``ProvEntry`` for ``vid``
  names ``rid`` (remote entries are the query-time frontier, not edges);
* ``x:rid -> t:child`` for every child VID of a registered rule
  execution (children are always partition-local — rule bodies are
  localized before evaluation).

Labels are allocated with *gap-preserving slack*: every subtree gets an
interval ``slack`` times its size, so single-vertex inserts usually land
in an existing gap without touching any other label.  When a gap
exhausts, the smallest enclosing ancestor whose interval still fits its
grown subtree is relabeled in place; when even the forest root is too
small the subtree moves to a fresh top-level interval; and when the
label space itself is exhausted the partition index is rebuilt from
scratch.  This escalation never fails — the capacity is a soft bound
that triggers compaction, not an error.

Maintenance is incremental and piggybacks on the per-VID dirty
propagation hooks in :mod:`repro.core.maintenance`: the store notes
every ``prov`` / ``ruleExec`` mutation on its index as a self-contained
pending op, and :meth:`PartitionIntervalIndex.ensure_ready` drains the
backlog at the next query.  A cold index (or one whose backlog overflowed
``pending_limit``) is rebuilt directly from the store tables instead.

The index is an *accelerator*, never an oracle: query-time value and
truncation decisions are always made against the live store rows, so the
interval path is bit-identical to the traversal path by construction —
the differential property suite (``tests/property/test_property_interval``)
enforces exactly that under randomized churn.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.keys import BASE_RID

#: Vertex keys: ("t", vid) for tuples, ("x", rid) for rule executions.
Key = Tuple[str, object]

#: Default slack multiplier: each subtree's interval is this many times its
#: size, leaving gaps for future single-vertex inserts.
DEFAULT_SLACK = 8

#: Default label-space capacity.  Far beyond any realistic partition; the
#: escalation path treats it as a soft compaction trigger, never an error.
DEFAULT_CAPACITY = 2**40

#: Pending-op backlog bound.  Beyond this the incremental drain would cost
#: more than a rebuild, so the index deactivates and rebuilds lazily.
DEFAULT_PENDING_LIMIT = 4096


class PartitionIntervalIndex:
    """Interval-labeled spanning forest over one partition's provenance DAG.

    The index is owned by a :class:`~repro.core.maintenance.NodeProvenanceStore`
    and is lazy: it stays cold (``active == False``) until the first
    :meth:`ensure_ready`, which builds it from the store tables.  While
    active, the store feeds it mutation notes (``note_*``); each note is a
    self-contained pending op so the drain never has to consult future
    store state.
    """

    def __init__(
        self,
        store,
        slack: int = DEFAULT_SLACK,
        capacity: int = DEFAULT_CAPACITY,
        pending_limit: int = DEFAULT_PENDING_LIMIT,
    ) -> None:
        if slack < 1:
            raise ValueError("slack must be >= 1")
        self._store = store
        self._slack = slack
        self._capacity = capacity
        self._pending_limit = pending_limit
        self._active = False
        self._pending: List[Tuple] = []
        # Forest + labels (reset together; _succ/_pred are the edge source
        # of truth that survives relabels and feeds rebuilds).
        self._parent: Dict[Key, Optional[Key]] = {}
        self._children: Dict[Key, List[Key]] = {}
        self._start: Dict[Key, int] = {}
        self._end: Dict[Key, int] = {}
        self._exceptions: Dict[Key, Set[Key]] = {}
        self._succ: Dict[Key, Set[Key]] = {}
        self._pred: Dict[Key, Set[Key]] = {}
        self._top_cursor = 0
        # Sorted-by-start view of the label table, rebuilt lazily.
        self._order_starts: List[int] = []
        self._order_keys: List[Key] = []
        self._order_dirty = False
        # Observability counters (surfaced through ProvenanceEngine).
        self._builds = 0
        self._rebuilds = 0
        self._subtree_relabels = 0
        self._range_scans = 0
        self._closures = 0
        self._pending_applied = 0
        self._overflows = 0

    # -- public surface ----------------------------------------------------

    @property
    def active(self) -> bool:
        return self._active

    def __len__(self) -> int:
        return len(self._parent)

    def counters(self) -> Dict[str, int]:
        return {
            "builds": self._builds,
            "rebuilds": self._rebuilds,
            "subtree_relabels": self._subtree_relabels,
            "range_scans": self._range_scans,
            "closures": self._closures,
            "pending_applied": self._pending_applied,
            "overflows": self._overflows,
        }

    def ensure_ready(self) -> None:
        """Bring the index up to date with the store before a query."""
        if not self._active:
            self._build_from_store()
            self._active = True
            return
        if self._pending:
            pending, self._pending = self._pending, []
            for op in pending:
                self._apply(op)
            self._pending_applied += len(pending)

    def closure(self, targets: Iterable[Key]) -> Tuple[Set[Key], List[Key]]:
        """All descendants (inclusive) of *targets*; unlabeled ones returned
        separately so the caller can resolve them against the store."""
        self._closures += 1
        if self._order_dirty:
            self._refresh_order()
        reached: Set[Key] = set()
        missing: List[Key] = []
        stack: List[Key] = []
        for key in targets:
            if key in self._start:
                stack.append(key)
            else:
                missing.append(key)
        starts = self._order_starts
        keys = self._order_keys
        while stack:
            key = stack.pop()
            if key in reached:
                continue
            self._range_scans += 1
            index = bisect_left(starts, self._start[key])
            bound = self._end[key]
            while index < len(starts) and starts[index] < bound:
                member = keys[index]
                index += 1
                reached.add(member)
                for target in self._exceptions.get(member, ()):
                    if target not in reached:
                        stack.append(target)
        return reached, missing

    def labels(self) -> Dict[Key, Tuple[int, int]]:
        """Snapshot of the label table (tests assert determinism on this)."""
        return {key: (self._start[key], self._end[key]) for key in self._start}

    # -- store-side mutation notes ----------------------------------------

    def note_prov_added(self, vid, rid, rloc) -> None:
        if self._active:
            self._pending.append(("ap", vid, rid, rloc))
            self._check_overflow()

    def note_prov_removed(self, vid, rid, rloc) -> None:
        if self._active:
            self._pending.append(("rp", vid, rid, rloc))
            self._check_overflow()

    def note_exec_added(self, rid, child_vids: Sequence) -> None:
        if self._active:
            self._pending.append(("ax", rid, tuple(child_vids)))
            self._check_overflow()

    def note_exec_removed(self, rid, child_vids: Sequence) -> None:
        if self._active:
            self._pending.append(("rx", rid, tuple(child_vids)))
            self._check_overflow()

    # -- lifecycle ---------------------------------------------------------

    def _check_overflow(self) -> None:
        if len(self._pending) > self._pending_limit:
            # Draining would cost more than a rebuild: drop the backlog and
            # go cold; the next ensure_ready() rebuilds from the store.
            self._pending.clear()
            self._active = False
            self._overflows += 1
            self._reset_structures()

    def _reset_structures(self) -> None:
        self._parent = {}
        self._children = {}
        self._start = {}
        self._end = {}
        self._exceptions = {}
        self._succ = {}
        self._pred = {}
        self._top_cursor = 0
        self._order_starts = []
        self._order_keys = []
        self._order_dirty = False

    def _build_from_store(self) -> None:
        self._builds += 1
        self._reset_structures()
        store = self._store
        for vid in sorted(store._prov, key=repr):
            key = ("t", vid)
            self._parent.setdefault(key, None)
            for entry in store.prov_entries(vid):
                if entry.rid != BASE_RID and entry.rloc == store.node_id:
                    xkey = ("x", entry.rid)
                    self._parent.setdefault(xkey, None)
                    self._succ.setdefault(key, set()).add(xkey)
                    self._pred.setdefault(xkey, set()).add(key)
        for rid in sorted(store._rule_execs, key=repr):
            xkey = ("x", rid)
            self._parent.setdefault(xkey, None)
            for child in store._rule_execs[rid].child_vids:
                ckey = ("t", child)
                self._parent.setdefault(ckey, None)
                self._succ.setdefault(xkey, set()).add(ckey)
                self._pred.setdefault(ckey, set()).add(xkey)
        self._rebuild()

    def _apply(self, op: Tuple) -> None:
        kind = op[0]
        if kind == "ap":
            _, vid, rid, rloc = op
            self._ensure_vertex(("t", vid))
            if rid != BASE_RID and rloc == self._store.node_id:
                self._add_edge(("t", vid), ("x", rid))
        elif kind == "rp":
            _, vid, rid, rloc = op
            if rid != BASE_RID and rloc == self._store.node_id:
                self._remove_edge(("t", vid), ("x", rid))
        elif kind == "ax":
            _, rid, children = op
            self._ensure_vertex(("x", rid))
            for child in children:
                self._add_edge(("x", rid), ("t", child))
        elif kind == "rx":
            _, rid, children = op
            for child in children:
                self._remove_edge(("x", rid), ("t", child))

    # -- forest maintenance ------------------------------------------------

    def _register(self, key: Key) -> None:
        self._parent[key] = None

    def _ensure_vertex(self, key: Key) -> None:
        if key in self._parent:
            return
        self._register(key)
        width = self._slack
        if self._top_cursor + width > self._capacity:
            self._escalated_rebuild()
            return
        self._start[key] = self._top_cursor
        self._end[key] = self._top_cursor + width
        self._top_cursor += width
        self._order_dirty = True

    def _in_subtree(self, root: Key, key: Key) -> bool:
        """Is *key* inside *root*'s subtree, per the current labels?"""
        return self._start[root] <= self._start[key] < self._end[root]

    def _add_edge(self, u: Key, v: Key) -> None:
        self._ensure_vertex(u)
        fresh = v not in self._parent
        if fresh:
            self._register(v)
        succ = self._succ.setdefault(u, set())
        if v in succ:
            return
        succ.add(v)
        self._pred.setdefault(v, set()).add(u)
        if fresh:
            self._parent[v] = u
            self._children.setdefault(u, []).append(v)
            self._place_subtree(v, u)
        elif self._parent.get(v) == u:
            pass
        elif self._parent.get(v) is None and not self._in_subtree(v, u):
            # Adopt the forest root v as a tree child of u.  The
            # _in_subtree guard keeps the forest acyclic even when the
            # pending backlog replays through transiently cyclic states.
            self._parent[v] = u
            self._children.setdefault(u, []).append(v)
            self._place_subtree(v, u)
        else:
            self._exceptions.setdefault(u, set()).add(v)

    def _remove_edge(self, u: Key, v: Key) -> None:
        succ = self._succ.get(u)
        if not succ or v not in succ:
            return
        succ.discard(v)
        preds = self._pred.get(v)
        if preds is not None:
            preds.discard(u)
        exceptions = self._exceptions.get(u)
        if exceptions is not None and v in exceptions:
            exceptions.discard(v)
            return
        # Keys are value-compared: pending ops rebuild equal-but-distinct
        # tuples, so identity comparison here would silently skip the detach.
        if self._parent.get(v) != u:
            return
        # Detach the tree child and try to promote a remaining
        # predecessor's exception edge into the new tree edge.
        self._children[u].remove(v)
        self._parent[v] = None
        for candidate in sorted(self._pred.get(v, ()), key=repr):
            if self._in_subtree(v, candidate):
                continue
            candidate_exceptions = self._exceptions.get(candidate)
            if candidate_exceptions is not None:
                candidate_exceptions.discard(v)
            self._parent[v] = candidate
            self._children.setdefault(candidate, []).append(v)
            self._place_subtree(v, candidate)
            return
        # v stays a forest root.  Its labels still sit inside the old
        # ancestors' ranges, which would corrupt their scans — move the
        # subtree to a fresh top-level interval.
        sizes = self._subtree_sizes(v)
        width = sizes[v] * self._slack
        if self._top_cursor + width > self._capacity:
            self._escalated_rebuild()
            return
        self._relabel_subtree(v, self._top_cursor, self._top_cursor + width)
        self._top_cursor += width
        self._order_dirty = True

    def _place_subtree(self, v: Key, parent: Key) -> None:
        """Label v's subtree inside *parent*'s interval, escalating from
        gap-fit to ancestor relabel to fresh top interval to rebuild."""
        sizes = self._subtree_sizes(v)
        need = sizes[v]
        gap = self._find_gap(parent, need, v)
        if gap is not None:
            lo, hi = gap
            width = min(hi - lo, need * self._slack)
            self._relabel_subtree(v, lo, lo + width)
            self._order_dirty = True
            return
        node: Optional[Key] = parent
        while node is not None:
            size = self._subtree_sizes(node)[node]
            if self._end[node] - self._start[node] >= size:
                self._subtree_relabels += 1
                self._relabel_subtree(node, self._start[node], self._end[node])
                self._order_dirty = True
                return
            if self._parent.get(node) is None:
                width = size * self._slack
                if self._top_cursor + width > self._capacity:
                    self._escalated_rebuild()
                    return
                self._subtree_relabels += 1
                self._relabel_subtree(node, self._top_cursor, self._top_cursor + width)
                self._top_cursor += width
                self._order_dirty = True
                return
            node = self._parent[node]

    def _find_gap(self, parent: Key, need: int, exclude: Key):
        """First interior gap of *parent* with room for *need* slots, skipping
        *exclude* (the child being placed, whose labels are stale)."""
        cursor = self._start[parent] + 1
        bound = self._end[parent]
        spans = sorted(
            (self._start[child], self._end[child])
            for child in self._children.get(parent, ())
            if child != exclude and child in self._start
        )
        for lo, hi in spans:
            if lo - cursor >= need:
                return cursor, lo
            cursor = max(cursor, hi)
        if bound - cursor >= need:
            return cursor, bound
        return None

    def _subtree_sizes(self, root: Key) -> Dict[Key, int]:
        sizes: Dict[Key, int] = {}
        stack: List[Tuple[Key, bool]] = [(root, False)]
        while stack:
            key, expanded = stack.pop()
            if expanded:
                sizes[key] = 1 + sum(
                    sizes[child] for child in self._children.get(key, ())
                )
            else:
                stack.append((key, True))
                for child in self._children.get(key, ()):
                    stack.append((child, False))
        return sizes

    def _relabel_subtree(self, root: Key, lo: int, hi: int) -> None:
        """Assign [lo, hi) to *root*'s subtree, spreading the slack evenly.

        Requires ``hi - lo >= subtree size``; every subtree then receives an
        interval at least as wide as its size, so recursion never starves.
        """
        sizes = self._subtree_sizes(root)
        stack: List[Tuple[Key, int, int]] = [(root, lo, hi)]
        while stack:
            key, start, end = stack.pop()
            self._start[key] = start
            self._end[key] = end
            kids = self._children.get(key)
            if not kids:
                continue
            total = sizes[key] - 1
            per = (end - start - 1) // total
            cursor = start + 1
            for child in kids:
                # Cap each child at slack-proportional width so every level
                # of the tree keeps a tail gap: single-vertex inserts (e.g.
                # transient aggregate losers) then land in the parent's gap
                # without perturbing the labels of sibling subtrees.
                width = min(sizes[child] * per, sizes[child] * self._slack)
                stack.append((child, cursor, cursor + width))
                cursor += width

    def _escalated_rebuild(self) -> None:
        self._rebuilds += 1
        self._rebuild()

    def _rebuild(self) -> None:
        """Recompute forest, exceptions and labels from the edge mirror.

        Deterministic: vertices and successors are visited in sorted order,
        so two runs with identical mutation histories produce identical
        label tables (the property suite asserts this).
        """
        vertices = sorted(self._parent, key=repr)
        self._parent = {key: None for key in vertices}
        self._children = {}
        self._exceptions = {}
        self._start = {}
        self._end = {}
        visited: Set[Key] = set()
        roots: List[Key] = []
        seeds = [key for key in vertices if not self._pred.get(key)]
        seeds += [key for key in vertices if self._pred.get(key)]
        for seed in seeds:
            if seed in visited:
                continue
            visited.add(seed)
            roots.append(seed)
            stack = [seed]
            while stack:
                u = stack.pop()
                fresh: List[Key] = []
                for v in sorted(self._succ.get(u, ()), key=repr):
                    if v in visited:
                        self._exceptions.setdefault(u, set()).add(v)
                    else:
                        visited.add(v)
                        self._parent[v] = u
                        self._children.setdefault(u, []).append(v)
                        fresh.append(v)
                stack.extend(reversed(fresh))
        total = len(vertices)
        slack = self._slack
        if total and total * slack > self._capacity:
            slack = max(1, self._capacity // total)
        cursor = 0
        for root in roots:
            width = self._subtree_sizes(root)[root] * slack
            self._relabel_subtree(root, cursor, cursor + width)
            cursor += width
        self._top_cursor = cursor
        self._order_dirty = True

    def _refresh_order(self) -> None:
        # Starts are unique (intervals are nested-or-disjoint and every
        # vertex owns its start slot), so sorting by start alone is total.
        pairs = sorted(self._start.items(), key=lambda item: item[1])
        self._order_keys = [key for key, _ in pairs]
        self._order_starts = [start for _, start in pairs]
        self._order_dirty = False
