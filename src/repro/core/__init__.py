"""ExSPAN: the network provenance engine (the paper's primary contribution).

The package is organised exactly like the system description in the paper:

* :mod:`repro.core.maintenance` — the **maintenance engine**: it observes
  rule executions and tuple derivations reported by the execution engine and
  incrementally maintains the distributed ``prov`` / ``ruleExec`` relational
  tables that encode the provenance graph.
* :mod:`repro.core.rewrite` — the **automatic rule rewriting** algorithm that
  takes an NDlog program and outputs a modified program containing additional
  rules which compute the same provenance tables as distributed views.
* :mod:`repro.core.query` — the **distributed query engine** that traverses
  the provenance graph across nodes to answer lineage, participating-node,
  derivation-count, subgraph and custom queries.
* :mod:`repro.core.optimizations` — result caching, alternative traversal
  orders and threshold-based pruning.
* :mod:`repro.core.graph` — the in-memory provenance graph model (tuple
  vertices + rule-execution vertices) used for visualization and analysis.
"""

from repro.core.keys import BASE_RID, rid_for, vid_for
from repro.core.graph import (
    ProvenanceGraph,
    RuleExecVertex,
    TupleVertex,
    reachable_closure,
)
from repro.core.interval_index import PartitionIntervalIndex
from repro.core.maintenance import NodeProvenanceStore, ProvenanceEngine
from repro.core.rewrite import rewrite_program
from repro.core.queries import (
    CustomQuery,
    QUERY_COUNT,
    QUERY_LINEAGE,
    QUERY_PARTICIPANTS,
    QUERY_SUBGRAPH,
)
from repro.core.optimizations import DEFAULT_CACHE_CAPACITY, NodeQueryCache, QueryOptions
from repro.core.query import (
    CACHE_VALIDATION_GLOBAL,
    CACHE_VALIDATION_VID,
    DistributedQueryEngine,
)
from repro.core.results import QueryResult
from repro.core.language import ParsedQuery, QueryLanguage, parse_query
from repro.core.security import NodeAttestation, ProvenanceAuthenticator, TamperReport

__all__ = [
    "BASE_RID",
    "rid_for",
    "vid_for",
    "ProvenanceGraph",
    "RuleExecVertex",
    "TupleVertex",
    "reachable_closure",
    "PartitionIntervalIndex",
    "NodeProvenanceStore",
    "ProvenanceEngine",
    "rewrite_program",
    "CustomQuery",
    "QUERY_COUNT",
    "QUERY_LINEAGE",
    "QUERY_PARTICIPANTS",
    "QUERY_SUBGRAPH",
    "QueryOptions",
    "NodeQueryCache",
    "DEFAULT_CACHE_CAPACITY",
    "CACHE_VALIDATION_VID",
    "CACHE_VALIDATION_GLOBAL",
    "DistributedQueryEngine",
    "QueryResult",
    "ParsedQuery",
    "QueryLanguage",
    "parse_query",
    "NodeAttestation",
    "ProvenanceAuthenticator",
    "TamperReport",
]
