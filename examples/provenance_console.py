#!/usr/bin/env python3
"""Textual provenance queries and a tamper-evidence audit (the extensions).

The paper's closing section sketches two directions of ongoing work: richer
(graph-based) provenance query languages and securely using provenance in
untrusted environments.  This example demonstrates the reproduction's take on
both:

* the textual query language (``repro.core.language``): lineage / count /
  participants queries written as strings, with wildcards and optimisation
  clauses;
* tamper-evident provenance (``repro.core.security``): per-node attestations
  of the provenance tables, and an audit that pinpoints a node that dropped
  one of its rule-execution records.

Run with::

    python examples/provenance_console.py
"""

from repro import DistributedQueryEngine
from repro.core.language import QueryLanguage
from repro.core.security import ProvenanceAuthenticator
from repro.engine import topology
from repro.protocols import path_vector


def main() -> None:
    net = topology.random_connected(8, edge_probability=0.35, seed=3)
    runtime = path_vector.setup(net)
    engine = DistributedQueryEngine(runtime)
    language = QueryLanguage(engine)

    print("== Textual provenance queries ==")
    queries = [
        'COUNT OF bestPathCost("n0", *, *)',
        'PARTICIPANTS OF bestPathCost("n0", "n5", *) WITH CACHE',
        'LINEAGE OF bestPathCost("n0", "n5", *) SEQUENTIAL THRESHOLD 3',
    ]
    for text in queries:
        print(f"\n> {text}")
        try:
            results = language.run(text)
        except Exception as error:  # noqa: BLE001 - demo output
            print(f"  error: {error}")
            continue
        for result in results[:3]:
            answer = sorted(map(str, result.value)) if isinstance(result.value, frozenset) else result.value
            print(f"  {result.root}: {answer}  [{result.stats.messages} msgs]")
        if len(results) > 3:
            print(f"  ... and {len(results) - 3} more matching tuples")

    print("\n== Tamper-evidence audit ==")
    authenticator = ProvenanceAuthenticator()
    authenticator.generate_keys(runtime.node_ids())
    attestations = authenticator.attest_engine(runtime.provenance)
    print(f"Collected attestations for {len(attestations)} nodes "
          f"({sum(a.row_count() for a in attestations.values())} signed provenance rows)")

    # A compromised node quietly drops one of its rule-execution records.
    victim_store = runtime.provenance.store("n2")
    dropped_rid = sorted(victim_store._rule_execs)[0]
    victim_store.remove_rule_exec(dropped_rid)
    print("Node n2 silently dropped one ruleExec record...")

    reports = authenticator.verify_engine(runtime.provenance, attestations)
    for node_id in runtime.node_ids():
        report = reports[node_id]
        if not report.is_clean:
            print(report.summary())
    clean = sum(1 for report in reports.values() if report.is_clean)
    print(f"Audit result: {clean}/{len(reports)} nodes verified clean; the tampering was detected.")


if __name__ == "__main__":
    main()
