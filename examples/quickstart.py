#!/usr/bin/env python3
"""Quickstart: run a declarative protocol and query the provenance of its state.

This is the smallest end-to-end NetTrails scenario:

1. build a small topology,
2. execute the MINCOST protocol (pair-wise minimal path costs) over it with
   provenance maintenance enabled,
3. ask the distributed query engine where a particular ``minCost`` tuple came
   from (its lineage, the participating nodes and the number of alternative
   derivations),
4. print a textual rendering of its provenance tree, and
5. re-run the protocol with sharded per-node stores (``num_shards=4``,
   ``shard_workers=2``) and check the converged state is identical.

Run with::

    python examples/quickstart.py
"""

from repro import DistributedQueryEngine, NetTrailsRuntime
from repro.core.keys import vid_for
from repro.engine import topology
from repro.engine.tuples import Fact
from repro.protocols import mincost
from repro.viz import render_ascii_tree


def main() -> None:
    # 1. A 5-node ring with unit link costs.
    net = topology.ring(5)
    print(f"Topology: {net.name} with {net.node_count()} nodes / {net.edge_count()} links")

    # 2. Execute MINCOST with provenance maintenance (the default).
    runtime = mincost.setup(net)
    print(f"Converged: minCost has {len(runtime.state('minCost'))} rows, "
          f"{runtime.message_stats().messages} protocol messages exchanged")
    print(f"Provenance tables: {runtime.provenance.table_sizes()}")

    # 3. Query the provenance of minCost(n0 -> n2).
    queries = DistributedQueryEngine(runtime)
    target = ["n0", "n2", 2.0]

    lineage = queries.lineage("minCost", target)
    print(f"\nLineage of minCost({', '.join(map(str, target))}):")
    for ref in sorted(lineage.value, key=str):
        print(f"  {ref}")
    print(f"  (query used {lineage.stats.messages} messages across "
          f"{lineage.stats.nodes_visited} nodes)")

    participants = queries.participants("minCost", target)
    print(f"Participating nodes: {sorted(participants.value)}")

    count = queries.derivation_count("minCost", target)
    print(f"Alternative derivations: {count.value}")

    # 4. Render the provenance tree.
    graph = runtime.provenance.build_graph()
    root = vid_for(Fact.make("minCost", target))
    print("\nProvenance tree:")
    print(render_ascii_tree(graph, root))

    # 5. Hot-node scaling: shard every node's store across 4 hash partitions
    #    and absorb delta batches on 2 worker threads — bit-identical results.
    #    The runtime is a context manager, so the worker threads cannot leak.
    flat = NetTrailsRuntime(mincost.program(), topology.star(10))
    flat.seed_links(run=True)
    with NetTrailsRuntime(mincost.program(), topology.star(10),
                          num_shards=4, shard_workers=2) as sharded:
        sharded.seed_links(run=True)
        assert sharded.state("minCost") == flat.state("minCost")
        print(f"\nSharded star-10 run (4 shards, 2 workers): "
              f"{len(sharded.state('minCost'))} minCost rows, identical to unsharded")

    # 6. Concurrent execution backend: drain independent nodes' delta waves
    #    on a thread pool (or asyncio: backend="asyncio") — same state,
    #    messages and provenance as the deterministic serial reference.
    with NetTrailsRuntime(mincost.program(), topology.star(10),
                          backend="thread", backend_workers=4) as threaded:
        threaded.seed_links(run=True)
        assert threaded.state("minCost") == flat.state("minCost")
        assert threaded.message_stats().messages == flat.message_stats().messages
        print(f"Thread-backend star-10 run: {len(threaded.state('minCost'))} "
              f"minCost rows, identical state and message counts")


if __name__ == "__main__":
    main()
