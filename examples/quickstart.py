#!/usr/bin/env python3
"""Quickstart: run a declarative protocol and query the provenance of its state.

This is the smallest end-to-end NetTrails scenario:

1. build a small topology,
2. execute the MINCOST protocol (pair-wise minimal path costs) over it with
   provenance maintenance enabled,
3. ask the distributed query engine where a particular ``minCost`` tuple came
   from (its lineage, the participating nodes and the number of alternative
   derivations), and
4. print a textual rendering of its provenance tree.

Run with::

    python examples/quickstart.py
"""

from repro import DistributedQueryEngine
from repro.core.keys import vid_for
from repro.engine import topology
from repro.engine.tuples import Fact
from repro.protocols import mincost
from repro.viz import render_ascii_tree


def main() -> None:
    # 1. A 5-node ring with unit link costs.
    net = topology.ring(5)
    print(f"Topology: {net.name} with {net.node_count()} nodes / {net.edge_count()} links")

    # 2. Execute MINCOST with provenance maintenance (the default).
    runtime = mincost.setup(net)
    print(f"Converged: minCost has {len(runtime.state('minCost'))} rows, "
          f"{runtime.message_stats().messages} protocol messages exchanged")
    print(f"Provenance tables: {runtime.provenance.table_sizes()}")

    # 3. Query the provenance of minCost(n0 -> n2).
    queries = DistributedQueryEngine(runtime)
    target = ["n0", "n2", 2.0]

    lineage = queries.lineage("minCost", target)
    print(f"\nLineage of minCost({', '.join(map(str, target))}):")
    for ref in sorted(lineage.value, key=str):
        print(f"  {ref}")
    print(f"  (query used {lineage.stats.messages} messages across "
          f"{lineage.stats.nodes_visited} nodes)")

    participants = queries.participants("minCost", target)
    print(f"Participating nodes: {sorted(participants.value)}")

    count = queries.derivation_count("minCost", target)
    print(f"Alternative derivations: {count.value}")

    # 4. Render the provenance tree.
    graph = runtime.provenance.build_graph()
    root = vid_for(Fact.make("minCost", target))
    print("\nProvenance tree:")
    print(render_ascii_tree(graph, root))


if __name__ == "__main__":
    main()
