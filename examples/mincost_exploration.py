#!/usr/bin/env python3
"""Interactive-exploration scenario (the paper's Figure 2, programmatically).

The demonstration lets users start from a system-wide provenance snapshot,
zoom into one relation, and finally inspect a single tuple instance with its
attribute values and location, while a hypertree lays the provenance out on a
hyperbolic plane.  This example reproduces those three zoom levels as text,
computes the hypertree layout (and a re-focus step), and then replays a
topology change from the log store — the other interactive feature of the
demo.

Run with::

    python examples/mincost_exploration.py
"""

from repro.core.keys import vid_for
from repro.engine import topology
from repro.engine.tuples import Fact
from repro.logstore import LogStore, ReplaySession
from repro.protocols import mincost
from repro.viz import HypertreeLayout, exploration_views, refocus, topology_summary


def main() -> None:
    net = topology.random_connected(8, edge_probability=0.35, seed=7)
    runtime = mincost.setup(net)
    log = LogStore()
    log.collect(runtime, label="T0")

    print(topology_summary(net, runtime.network.stats.snapshot()))

    # Pick an interesting tuple: the most expensive shortest path.
    rows = runtime.state("minCost")
    source, destination, cost = max(rows, key=lambda row: row[2])
    target = (source, destination, cost)

    graph = runtime.provenance.build_graph()
    views = exploration_views(graph, "minCost", target)

    print("\n=== Figure 2(a): system-wide provenance snapshot ===")
    print(views["snapshot"])
    print("\n=== Figure 2(b): the minCost relation ===")
    print(views["table"])
    print("\n=== Figure 2(c): close-up of one tuple instance ===")
    print(views["tuple"])

    # Hypertree layout plus a focus change, as in the visualizer.
    root = vid_for(Fact.make("minCost", list(target)))
    layout = HypertreeLayout().compute(graph, root)
    print(f"\nHypertree layout: {len(layout)} vertices placed on the Poincaré disk")
    deepest = max(layout.values(), key=lambda placed: placed.depth)
    refocused = refocus(layout, deepest.vertex_id)
    print(f"Re-focused on {deepest.label}: it now sits at the centre "
          f"(radius {refocused[deepest.vertex_id].radius:.3f})")

    # Replay: pause the network before and after a link failure.
    victim = sorted(net.edges)[0]
    print(f"\nFailing link {victim[0]} <-> {victim[1]} and replaying from the log store...")
    runtime.remove_link(*victim)
    runtime.run_to_quiescence()
    log.collect(runtime, label="T1")

    session = ReplaySession(log)
    diff = session.step()
    print(diff.summary())


if __name__ == "__main__":
    main()
