#!/usr/bin/env python3
"""Dynamic source routing under mobility, with provenance kept up to date.

The paper's declarative-networks use case includes DSR "in different
environments (e.g. static vs mobile network)" and stresses that provenance is
correctly maintained "as network state is incrementally recomputed as the
underlying network topology changes".  This example drives a DSR network with
a random-waypoint mobility model: links come and go, discovered source routes
appear and disappear, and at every step the provenance of the surviving
routes still refers only to links that currently exist.

Run with::

    python examples/dsr_mobile.py
"""

from repro import DistributedQueryEngine
from repro.engine import topology
from repro.engine.mobility import WaypointMobilityModel
from repro.engine.runtime import NetTrailsRuntime
from repro.protocols import dsr


def main() -> None:
    names = [f"m{i}" for i in range(6)]
    model = WaypointMobilityModel(names, field_size=70.0, radio_range=38.0, seed=11)

    net = topology.Topology(name="manet")
    for name in names:
        net.add_node(name)
    runtime = NetTrailsRuntime(dsr.program(), net, provenance=True)
    runtime.seed_links(run=True)
    runtime.insert("request", ["m0", "m4"])
    runtime.run_to_quiescence()
    queries = DistributedQueryEngine(runtime)

    print("time   event              routes m0 -> m4")
    for event in model.events(duration=20.0, dt=2.0):
        if event.kind == "up":
            runtime.add_link(event.source, event.target, 1.0)
        else:
            runtime.remove_link(event.source, event.target)
        runtime.run_to_quiescence()
        routes = dsr.discovered_routes(runtime, "m0", "m4")
        print(f"{event.time:5.1f}  {event.kind:4} {event.source}-{event.target}     "
              f"{len(routes)} route(s)")

    routes = dsr.discovered_routes(runtime, "m0", "m4")
    if not routes:
        print("\nm0 currently has no route to m4 (they drifted apart).")
        return

    best = min(routes, key=len)
    print(f"\nShortest discovered route: {' -> '.join(best)}")
    lineage = queries.lineage("sourceRoute", ["m0", "m4", best])
    print("It depends on these facts:")
    for ref in sorted(lineage.value, key=str):
        print(f"  {ref}")
    for ref in lineage.value:
        if ref.relation == "link":
            assert runtime.topology.has_edge(ref.values[0], ref.values[1]), "stale provenance!"
    print("All contributing links still exist: provenance stayed consistent under mobility.")


if __name__ == "__main__":
    main()
