#!/usr/bin/env python3
"""Legacy-application use case: BGP (Quagga) provenance through the proxy.

This reproduces the paper's second demonstration use case: a topology of ASes
(large and small ISPs connected by customer/provider/peer relationships) runs
BGP; the NetTrails proxy intercepts the route advertisements and, using the
"maybe" rule ``br1`` from the paper, infers the causal relationships between
the advertisements entering and leaving each (black-box) router.  The result
is queryable network provenance for routing entries: where did this route come
from, and which ASes participated in its derivation?

Run with::

    python examples/bgp_quagga.py
"""

from repro.analysis import explain_derivation
from repro.legacy.quagga import QuaggaDeployment
from repro.legacy.routeviews import generate_trace, render_trace


def main() -> None:
    deployment = QuaggaDeployment(tier1_count=3, tier2_per_tier1=2, stubs_per_tier2=1, seed=1)
    topo = deployment.as_topology
    print(f"AS topology: {topo.as_count()} ASes "
          f"({sum(1 for t in topo.tiers.values() if t == 1)} tier-1, "
          f"{sum(1 for t in topo.tiers.values() if t == 2)} tier-2, "
          f"{sum(1 for t in topo.tiers.values() if t == 3)} stubs)")

    trace = generate_trace(topo, prefixes_per_stub=1, flap_probability=0.4, seed=9)
    print(f"Synthetic RouteViews-style trace: {len(trace)} events")
    print(render_trace(trace[:5]) + "  ...")

    deployment.play_trace(trace)
    print(f"BGP converged: {deployment.bgp.stats.updates_sent} updates exchanged, "
          f"{deployment.proxy.stats.outputs_explained} advertisements explained by rule br1, "
          f"{deployment.proxy.stats.outputs_unexplained} identified as originations")
    print(f"Provenance tables: {deployment.provenance.table_sizes()}")

    # Pick the first prefix that is still announced and look at a distant AS.
    for event in trace:
        entries = deployment.route_entries(event.prefix)
        if entries:
            prefix, origin = event.prefix, event.asn
            break
    else:
        print("every prefix ended withdrawn; nothing to analyse")
        return

    far = max(entries, key=lambda asn: len(entries[asn]))
    print(f"\nAS {far} installs {prefix} via AS path {entries[far]}")

    lineage = deployment.derivation_of_route(far, prefix)
    print("Derivation history (origins of the routing entry):")
    for ref in sorted(lineage.value, key=str):
        print(f"  {ref}")
    participants = deployment.participants_of_route(far, prefix)
    print(f"ASes that participated in the derivation: {sorted(participants.value)}")
    print(f"(distributed query: {lineage.stats.messages} messages, "
          f"{lineage.stats.nodes_visited} nodes visited)")

    graph = deployment.provenance.build_graph()
    entry = deployment.proxy.current_route_entry(far, prefix)
    print("\nExplanation read off the provenance graph:")
    print(explain_derivation(graph, "routeEntry", list(entry.values), max_depth=3))


if __name__ == "__main__":
    main()
