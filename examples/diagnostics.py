#!/usr/bin/env python3
"""Diagnostic tasks on network provenance: root causes, cascades, participants.

The demonstration plan highlights three analyst workflows: "tracing back from
root causes, monitoring cascading effects that result from network topology
updates, and determining the parties that have participated in the derivation
of a tuple".  This example performs all three on a path-vector network that
suffers a link failure.

Run with::

    python examples/diagnostics.py
"""

from repro.analysis import (
    cascading_effects,
    explain_derivation,
    impact_of_link_failure,
    participant_contributions,
)
from repro.engine import topology
from repro.protocols import path_vector


def main() -> None:
    net = topology.random_connected(7, edge_probability=0.4, seed=21)
    runtime = path_vector.setup(net)
    graph = runtime.provenance.build_graph()

    # 1. Root-cause tracing: why does n0 route to its farthest destination this way?
    paths = path_vector.best_paths(runtime)
    (source, destination), path = max(paths.items(), key=lambda item: len(item[1]))
    costs = {(s, d): c for (s, d, c) in runtime.state("bestPathCost")}
    target = [source, destination, path, costs[(source, destination)]]
    print(f"Selected route {source} -> {destination}: {' -> '.join(path)}")
    print("\n--- Root-cause explanation ---")
    print(explain_derivation(graph, "bestPath", target, max_depth=2))

    # 2. Participants: who took part in deriving this route?
    print("\n--- Participants ---")
    for node, contribution in sorted(participant_contributions(graph, "bestPath", target).items()):
        print(f"  {node}: {contribution['tuples']} tuples, "
              f"{contribution['rule_executions']} rule executions")

    # 3. Cascading effects of a link failure along the chosen path.
    a, b = path[0], path[1]
    cost = net.cost(a, b)
    print(f"\n--- Cascading effects of failing link {a} <-> {b} ---")
    potential = cascading_effects(graph, "link", [a, b, cost])
    print(f"Potentially affected tuples (from the provenance graph): {len(potential)}")
    impact = impact_of_link_failure(runtime, a, b)
    print(impact.summary())
    print(f"Derived tuples removed: {impact.removed_count()}, replacements derived: {impact.added_count()}")
    print("(the link was restored afterwards; the network is back to its original state)")


if __name__ == "__main__":
    main()
