"""Tests for the NDlog parser."""

import pytest

from repro.errors import NDlogSyntaxError
from repro.ndlog.ast import (
    Aggregate,
    Assignment,
    Condition,
    Constant,
    Expression,
    FunctionCall,
    Literal,
    Variable,
)
from repro.ndlog.parser import parse_program, parse_rule


class TestRuleParsing:
    def test_simple_rule_with_label(self):
        rule = parse_rule("r1 path(@S, D, C) :- link(@S, D, C).")
        assert rule.name == "r1"
        assert rule.head.relation == "path"
        assert rule.head.location_index == 0
        assert len(rule.positive_literals) == 1
        assert rule.positive_literals[0].atom.relation == "link"

    def test_rule_without_label_gets_synthetic_name(self):
        rule = parse_rule("path(@S, D, C) :- link(@S, D, C).")
        assert rule.name  # synthetic but non-empty

    def test_maybe_rule_detection(self):
        rule = parse_rule(
            "br1 outputRoute(@AS, R2, P, Route2) ?- inputRoute(@AS, R1, P, Route1), "
            "f_isExtend(Route2, Route1, AS) == 1."
        )
        assert rule.is_maybe
        assert len(rule.conditions) == 1

    def test_paper_maybe_rule_with_single_equals(self):
        # The paper writes "f_isExtend(...)=1" with a single '='.
        rule = parse_rule(
            "br1 outputRoute(@AS, R2, P, Route2) ?- inputRoute(@AS, R1, P, Route1), "
            "f_isExtend(Route2, Route1, AS) = 1."
        )
        condition = rule.conditions[0]
        assert isinstance(condition.expression, Expression)
        assert condition.expression.op == "=="

    def test_negated_literal(self):
        rule = parse_rule("r x(@A, B) :- y(@A, B), !z(@A, B).")
        assert len(rule.negative_literals) == 1
        assert rule.negative_literals[0].atom.relation == "z"

    def test_assignment_and_arithmetic(self):
        rule = parse_rule("r p(@S, D, C) :- l(@S, D, C1), C := C1 + 2 * 3.")
        assignment = rule.assignments[0]
        assert assignment.variable == "C"
        expression = assignment.expression
        assert isinstance(expression, Expression) and expression.op == "+"
        # multiplication binds tighter than addition
        assert isinstance(expression.right, Expression) and expression.right.op == "*"

    def test_aggregate_in_head(self):
        rule = parse_rule("r3 minCost(@S, D, min<C>) :- path(@S, D, C).")
        aggregate = rule.aggregate
        assert aggregate is not None
        assert aggregate.func == "min"
        assert aggregate.variable == "C"

    def test_count_star_aggregate(self):
        rule = parse_rule("r c(@S, count<*>) :- p(@S, X).")
        assert rule.aggregate.func == "count"
        assert rule.aggregate.variable is None

    def test_function_call_argument(self):
        rule = parse_rule("r p(@S, D, P) :- l(@S, D), P := f_makeList(S, D).")
        assert isinstance(rule.assignments[0].expression, FunctionCall)

    def test_list_literal_of_constants_becomes_tuple(self):
        rule = parse_rule('r p(@S, L) :- q(@S), L := [1, 2, "x"].')
        value = rule.assignments[0].expression
        assert isinstance(value, Constant)
        assert value.value == (1, 2, "x")

    def test_list_with_variables_becomes_function_call(self):
        rule = parse_rule("r p(@S, L) :- q(@S, X), L := [S, X].")
        value = rule.assignments[0].expression
        assert isinstance(value, FunctionCall)
        assert value.name == "f_makeList"

    def test_comparison_condition(self):
        rule = parse_rule("r p(@S, C) :- q(@S, C), C < 16.")
        assert len(rule.conditions) == 1

    def test_string_constant_argument(self):
        rule = parse_rule('r p(@S, "hello") :- q(@S).')
        assert rule.head.terms[1] == Constant("hello")

    def test_negative_number(self):
        rule = parse_rule("r p(@S, C) :- q(@S), C := -5.")
        # -5 is parsed as 0 - 5 and still evaluates to -5
        expression = rule.assignments[0].expression
        assert isinstance(expression, Expression)

    def test_location_specifier_on_non_first_argument(self):
        rule = parse_rule("r p(A, @B) :- q(A, @B).")
        assert rule.head.location_index == 1

    def test_round_trip_str_reparses(self):
        text = "mc2 path(@S, D, C) :- link(@S, Z, C1), minCost(@Z, D, C2), C := C1 + C2."
        rule = parse_rule(text)
        reparsed = parse_rule(str(rule))
        assert reparsed.head == rule.head
        assert reparsed.body == rule.body


class TestParserErrors:
    def test_missing_body_separator(self):
        with pytest.raises(NDlogSyntaxError):
            parse_rule("r p(@S) q(@S).")

    def test_unbalanced_parenthesis(self):
        with pytest.raises(NDlogSyntaxError):
            parse_rule("r p(@S :- q(@S).")

    def test_two_location_specifiers_rejected(self):
        with pytest.raises(NDlogSyntaxError):
            parse_rule("r p(@S, @D) :- q(@S, D).")

    def test_materialize_passed_to_parse_rule_rejected(self):
        with pytest.raises(NDlogSyntaxError):
            parse_rule("materialize(link, infinity, infinity, keys(1,2)).")

    def test_multiple_rules_passed_to_parse_rule_rejected(self):
        with pytest.raises(NDlogSyntaxError):
            parse_rule("r p(@S) :- q(@S). r2 p(@S) :- z(@S).")


class TestProgramParsing:
    PROGRAM = """
    materialize(link, infinity, infinity, keys(1, 2)).
    materialize(path, 120, 1000, keys(1, 2, 3)).

    r1 path(@S, D, C) :- link(@S, D, C).
    r2 path(@S, D, C) :- link(@S, Z, C1), path(@Z, D, C2), C := C1 + C2.
    """

    def test_program_rules_and_materialize(self):
        program = parse_program(self.PROGRAM, name="test")
        assert len(program.rules) == 2
        assert set(program.materialized) == {"link", "path"}
        assert program.materialized["link"].keys == (1, 2)
        assert program.materialized["link"].lifetime is None  # infinity
        assert program.materialized["path"].lifetime == 120
        assert program.materialized["path"].max_size == 1000

    def test_base_and_derived_relation_classification(self):
        program = parse_program(self.PROGRAM, name="test")
        assert program.head_relations() == {"path"}
        assert "link" in program.base_relations()

    def test_rule_lookup_by_name(self):
        program = parse_program(self.PROGRAM, name="test")
        assert program.rule_named("r2").head.relation == "path"
        with pytest.raises(KeyError):
            program.rule_named("missing")

    def test_unlabeled_rules_get_program_scoped_names(self):
        program = parse_program("p(@X) :- q(@X). p(@X) :- r(@X).", name="prog")
        names = [rule.name for rule in program.rules]
        assert len(set(names)) == 2
        assert all(name.startswith("prog_r") for name in names)

    def test_program_str_round_trip(self):
        program = parse_program(self.PROGRAM, name="test")
        reparsed = parse_program(str(program), name="test")
        assert len(reparsed.rules) == len(program.rules)
        assert set(reparsed.materialized) == set(program.materialized)
