"""Tests for the builtin f_* function library."""

import pytest

from repro.errors import UnknownFunctionError
from repro.ndlog import functions
from repro.ndlog.functions import FunctionRegistry, default_registry


@pytest.fixture
def registry():
    return default_registry()


class TestListFunctions:
    def test_make_list_and_init(self):
        assert functions.f_make_list(1, 2, 3) == (1, 2, 3)
        assert functions.f_init("a", "b") == ("a", "b")

    def test_concat_and_prepend_append(self):
        assert functions.f_concat((1, 2), (3,)) == (1, 2, 3)
        assert functions.f_concat((1, 2), 3) == (1, 2, 3)
        assert functions.f_prepend(0, (1, 2)) == (0, 1, 2)
        assert functions.f_append((1, 2), 3) == (1, 2, 3)

    def test_member_and_size(self):
        assert functions.f_member((1, 2, 3), 2) == 1
        assert functions.f_member((1, 2, 3), 9) == 0
        assert functions.f_size((1, 2, 3)) == 3

    def test_first_last_reverse(self):
        assert functions.f_first(("a", "b", "c")) == "a"
        assert functions.f_last(("a", "b", "c")) == "c"
        assert functions.f_reverse((1, 2, 3)) == (3, 2, 1)


class TestIsExtend:
    """The f_isExtend function from the paper's maybe rule br1."""

    def test_prepend_extension_detected(self):
        assert functions.f_is_extend(("as2", "as1"), ("as1",), "as2") == 1

    def test_append_extension_detected(self):
        assert functions.f_is_extend(("as1", "as2"), ("as1",), "as2") == 1

    def test_wrong_node_rejected(self):
        assert functions.f_is_extend(("as3", "as1"), ("as1",), "as2") == 0

    def test_wrong_length_rejected(self):
        assert functions.f_is_extend(("as2", "as9", "as1"), ("as1",), "as2") == 0
        assert functions.f_is_extend(("as1",), ("as1",), "as2") == 0


class TestHashing:
    def test_sha1_is_deterministic_and_distinct(self):
        assert functions.f_sha1("a", 1) == functions.f_sha1("a", 1)
        assert functions.f_sha1("a", 1) != functions.f_sha1("a", 2)


class TestRegistry:
    def test_default_registry_contains_paper_spellings(self, registry):
        for name in ("f_isExtend", "f_member", "f_concat", "f_makeList", "f_sha1"):
            assert registry.registered(name)

    def test_call_dispatch(self, registry):
        assert registry.call("f_member", [(1, 2), 1]) == 1

    def test_unknown_function_raises_with_helpful_message(self, registry):
        with pytest.raises(UnknownFunctionError) as excinfo:
            registry.call("f_nonexistent", [])
        assert "f_nonexistent" in str(excinfo.value)

    def test_copy_is_independent(self, registry):
        clone = registry.copy()
        clone.register("f_custom", lambda: 42)
        assert clone.registered("f_custom")
        assert not registry.registered("f_custom")

    def test_register_overrides(self):
        registry = FunctionRegistry()
        registry.register("f_x", lambda: 1)
        registry.register("f_x", lambda: 2)
        assert registry.call("f_x", []) == 2
