"""Tests for AST helpers: terms, rules, programs, stratification."""

import pytest

from repro.ndlog.ast import (
    Aggregate,
    Atom,
    Condition,
    Constant,
    Expression,
    Literal,
    Program,
    Rule,
    Variable,
    atom,
    const,
    var,
)
from repro.ndlog.parser import parse_program, parse_rule
from repro.protocols import distance_vector, mincost, path_vector


class TestTerms:
    def test_variable_substitution(self):
        assert Variable("X").substitute({"X": 3}) == Constant(3)
        assert Variable("X").substitute({}) == Variable("X")

    def test_expression_variables(self):
        expression = Expression("+", Variable("A"), Expression("*", Variable("B"), Constant(2)))
        assert expression.variables() == {"A", "B"}

    def test_constant_rendering(self):
        assert str(Constant("x")) == '"x"'
        assert str(Constant((1, 2))) == "[1, 2]"
        assert str(Constant(3)) == "3"

    def test_aggregate_rendering(self):
        assert str(Aggregate("min", "C")) == "min<C>"
        assert str(Aggregate("count", None)) == "count<*>"


class TestAtomHelpers:
    def test_atom_builder_coercion(self):
        built = atom("link", "S", "D", 3)
        assert built.terms[0] == Variable("S")
        assert built.terms[2] == Constant(3)
        assert built.location_index == 0

    def test_atom_substitute(self):
        built = atom("link", "S", "D", "C")
        ground = built.substitute({"S": "n0", "D": "n1", "C": 1})
        assert ground.terms == (Constant("n0"), Constant("n1"), Constant(1))

    def test_atom_str_shows_location_marker(self):
        assert str(atom("link", "S", "D")) == "link(@S, D)"


class TestRuleAccessors:
    def test_rule_classification_of_body_elements(self):
        rule = parse_rule(
            "r p(@S, D, C) :- l(@S, Z, C1), !bad(@S, Z), C := C1 + 1, C < 10, q(@S, D)."
        )
        assert len(rule.positive_literals) == 2
        assert len(rule.negative_literals) == 1
        assert len(rule.assignments) == 1
        assert len(rule.conditions) == 1
        assert rule.body_relations() == {"l", "bad", "q"}

    def test_rule_locality(self):
        local = parse_rule("r p(@S, D) :- a(@S, D), b(@S, D).")
        assert local.is_local()
        non_local = parse_rule("r p(@S, D) :- a(@S, Z), b(@Z, D).")
        assert not non_local.is_local()
        assert non_local.location_variables() == {"S", "Z"}

    def test_rule_aggregate_detection(self):
        rule = parse_rule("r m(@S, min<C>) :- p(@S, C).")
        assert rule.has_aggregate
        assert parse_rule("r m(@S, C) :- p(@S, C).").has_aggregate is False


class TestProgramStructure:
    def test_dependency_graph(self):
        program = mincost.program()
        graph = program.dependency_graph()
        assert "minCost" in graph
        assert "path" in graph["minCost"]
        assert "link" in graph["path"]

    def test_strata_allow_min_aggregate_recursion(self):
        # MINCOST recurses through a min aggregate; that must be allowed.
        strata = mincost.program().strata()
        assert any("minCost" in stratum for stratum in strata)

    def test_strata_reject_count_aggregate_recursion(self):
        source = """
        r1 total(@S, count<X>) :- item(@S, X).
        r2 item(@S, X) :- total(@S, X).
        """
        with pytest.raises(ValueError):
            parse_program(source, name="bad").strata()

    def test_strata_put_negated_dependency_earlier(self):
        source = """
        r1 up(@S, D) :- link(@S, D).
        r2 down(@S, D) :- node(@S, D), !up(@S, D).
        """
        program = parse_program(source, name="neg")
        strata = program.strata()
        up_level = next(i for i, s in enumerate(strata) if "up" in s)
        down_level = next(i for i, s in enumerate(strata) if "down" in s)
        assert up_level < down_level

    def test_strata_reject_negative_cycle(self):
        source = """
        r1 a(@S, X) :- base(@S, X), !b(@S, X).
        r2 b(@S, X) :- base(@S, X), !a(@S, X).
        """
        with pytest.raises(ValueError):
            parse_program(source, name="negcycle").strata()

    def test_rules_for(self):
        program = path_vector.program()
        assert len(program.rules_for("path")) == 2
        assert len(program.rules_for("bestPathCost")) == 1

    def test_all_shipped_protocols_have_consistent_structure(self):
        for module in (mincost, path_vector, distance_vector):
            program = module.program()
            assert "link" in program.base_relations()
            assert program.head_relations()
