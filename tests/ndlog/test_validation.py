"""Tests for program validation / safety checks."""

import pytest

from repro.errors import NDlogValidationError
from repro.ndlog.parser import parse_program, parse_rule
from repro.ndlog.validation import validate_program, validate_rule
from repro.protocols import distance_vector, dsr, mincost, path_vector
from repro.legacy.proxy import LEGACY_PROGRAM_SOURCE


class TestRuleValidation:
    def test_valid_rule_produces_no_warnings(self):
        rule = parse_rule("r p(@S, D, C) :- l(@S, D, C).")
        assert validate_rule(rule) == []

    def test_missing_location_specifier_rejected(self):
        rule = parse_rule("r p(@S, D) :- l(S, D).")
        with pytest.raises(NDlogValidationError, match="location specifier"):
            validate_rule(rule)

    def test_unbound_head_variable_rejected(self):
        rule = parse_rule("r p(@S, D, X) :- l(@S, D).")
        with pytest.raises(NDlogValidationError, match="head variables"):
            validate_rule(rule)

    def test_unbound_head_variable_allowed_in_maybe_rule(self):
        rule = parse_rule("r p(@S, D, X) ?- l(@S, D).")
        warnings = validate_rule(rule)
        assert warnings  # reported, but not fatal

    def test_unbound_condition_variable_rejected(self):
        rule = parse_rule("r p(@S, D) :- l(@S, D), X > 3.")
        with pytest.raises(NDlogValidationError, match="condition"):
            validate_rule(rule)

    def test_unbound_assignment_variable_rejected(self):
        rule = parse_rule("r p(@S, D, C) :- l(@S, D), C := X + 1.")
        with pytest.raises(NDlogValidationError, match="assignment"):
            validate_rule(rule)

    def test_assignment_chains_are_allowed(self):
        rule = parse_rule("r p(@S, D, C2) :- l(@S, D, C), C1 := C + 1, C2 := C1 * 2.")
        assert validate_rule(rule) == []

    def test_unbound_negated_atom_variable_rejected(self):
        rule = parse_rule("r p(@S, D) :- l(@S, D), !q(@S, X).")
        with pytest.raises(NDlogValidationError, match="negated"):
            validate_rule(rule)

    def test_aggregate_only_in_head(self):
        rule = parse_rule("r p(@S, min<C>) :- l(@S, C).")
        assert validate_rule(rule) == []
        # The surface syntax already rejects aggregates in body atoms, but a
        # programmatically-built rule must be caught by validation too.
        from repro.ndlog.ast import Aggregate, Atom, Literal, Rule, Variable

        bad = Rule(
            head=Atom("p", (Variable("S"), Variable("C")), 0),
            body=(Literal(Atom("l", (Variable("S"), Aggregate("min", "C")), 0)),),
            name="bad",
        )
        with pytest.raises(NDlogValidationError):
            validate_rule(bad)

    def test_unknown_builtin_function_rejected(self):
        rule = parse_rule("r p(@S, C) :- l(@S, C1), C := f_wat(C1).")
        with pytest.raises(NDlogValidationError, match="f_wat"):
            validate_rule(rule)

    def test_rule_without_body_atoms_rejected(self):
        rule = parse_rule("r p(@S, C) :- C := 1.")
        with pytest.raises(NDlogValidationError, match="no body atoms"):
            validate_rule(rule)

    def test_constant_location_produces_warning(self):
        rule = parse_rule('r p(@S, D) :- l(@"n0", D), s(@S, D).')
        warnings = validate_rule(rule)
        assert any("constant location" in warning for warning in warnings)


class TestProgramValidation:
    def test_empty_program_rejected(self):
        from repro.ndlog.ast import Program

        with pytest.raises(NDlogValidationError):
            validate_program(Program(name="empty"))

    def test_duplicate_rule_names_rejected(self):
        program = parse_program("r1 p(@S) :- q(@S). r1 p(@S) :- z(@S).", name="dup")
        with pytest.raises(NDlogValidationError, match="duplicate"):
            validate_program(program)

    def test_inconsistent_arity_rejected(self):
        program = parse_program("r1 p(@S, D) :- q(@S, D). r2 p(@S) :- q(@S, D).", name="arity")
        with pytest.raises(NDlogValidationError, match="arities"):
            validate_program(program)

    def test_non_link_restricted_rule_rejected(self):
        # Z appears only at the remote location; nothing at S binds it.
        program = parse_program("r1 p(@S, D) :- a(@S, D), b(@Z, D).", name="nolink")
        with pytest.raises(NDlogValidationError, match="link-restricted"):
            validate_program(program)

    def test_all_shipped_protocols_validate(self):
        for module in (mincost, path_vector, distance_vector, dsr):
            assert isinstance(validate_program(module.program()), list)

    def test_legacy_program_validates_with_maybe_warnings(self):
        program = parse_program(LEGACY_PROGRAM_SOURCE, name="legacy")
        warnings = validate_program(program)
        assert any("maybe" in warning for warning in warnings)
