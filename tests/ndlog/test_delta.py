"""Tests for the semi-naive delta-rule rewrite."""

from repro.ndlog.delta import (
    delta_rules_by_relation,
    delta_rules_for_program,
    delta_rules_for_rule,
)
from repro.ndlog.parser import parse_program, parse_rule
from repro.protocols import mincost


class TestDeltaRules:
    def test_one_delta_rule_per_positive_literal(self):
        rule = parse_rule("r p(@S, D) :- a(@S, Z), b(@S, Z), !c(@S, Z).")
        deltas = delta_rules_for_rule(rule)
        assert len(deltas) == 2  # the negated literal does not get a delta position
        assert [d.delta_relation for d in deltas] == ["a", "b"]

    def test_other_literals_exclude_delta_position(self):
        rule = parse_rule("r p(@S, D) :- a(@S, Z), b(@Z, D).")
        deltas = delta_rules_for_rule(rule)
        assert [lit.atom.relation for lit in deltas[0].other_literals()] == ["b"]
        assert [lit.atom.relation for lit in deltas[1].other_literals()] == ["a"]

    def test_program_delta_count(self):
        program = parse_program(
            "r1 p(@S, D) :- a(@S, D). r2 q(@S, D) :- a(@S, Z), p(@Z, D).", name="t"
        )
        assert len(delta_rules_for_program(program)) == 3

    def test_delta_index_by_relation(self):
        program = mincost.program()
        index = delta_rules_by_relation(program)
        assert "link" in index
        assert "minCost" in index
        # link appears in mc1 and mc2, so it triggers two delta rules
        assert len(index["link"]) == 2

    def test_str_rendering(self):
        rule = parse_rule("r p(@S, D) :- a(@S, D).")
        assert "a" in str(delta_rules_for_rule(rule)[0])
