"""Tests for the localization rewrite."""

import pytest

from repro.errors import NDlogValidationError
from repro.ndlog.localization import (
    INTERMEDIATE_PREFIX,
    is_intermediate_relation,
    localize_program,
    localize_rule,
)
from repro.ndlog.parser import parse_program, parse_rule
from repro.protocols import mincost, path_vector


class TestLocalizeRule:
    def test_local_rule_unchanged(self):
        rule = parse_rule("r p(@S, D) :- a(@S, D), b(@S, D).")
        assert localize_rule(rule) == [rule]

    def test_two_location_rule_split_into_two_local_rules(self):
        rule = parse_rule("mc2 path(@S, D, C) :- link(@S, Z, C1), minCost(@Z, D, C2), C := C1 + C2.")
        rewritten = localize_rule(rule)
        assert len(rewritten) == 2
        shipping, remainder = rewritten
        # The shipping rule derives an intermediate relation located at Z.
        assert is_intermediate_relation(shipping.head.relation)
        assert shipping.is_local()
        assert str(shipping.head.location_term) == "Z"
        # The remainder is local at Z and keeps the original rule name.
        assert remainder.is_local()
        assert remainder.name == "mc2"
        assert remainder.head.relation == "path"

    def test_shipping_rule_carries_needed_variables_only(self):
        rule = parse_rule("mc2 path(@S, D, C) :- link(@S, Z, C1), minCost(@Z, D, C2), C := C1 + C2.")
        shipping = localize_rule(rule)[0]
        carried = {str(term) for term in shipping.head.terms}
        assert "Z" in carried and "S" in carried and "C1" in carried
        assert "D" not in carried  # D is only bound at the remote location

    def test_three_location_rule_localizes_recursively(self):
        rule = parse_rule(
            "r3 out(@S, D, X) :- a(@S, M), b(@M, Z), c(@Z, D, X)."
        )
        rewritten = localize_rule(rule)
        assert len(rewritten) == 3
        assert all(r.is_local() for r in rewritten)
        # the final rule keeps the original name
        assert rewritten[-1].name == "r3"

    def test_unlocalizable_rule_raises(self):
        rule = parse_rule("r p(@S, D) :- a(@S, D), b(@Z, D).")
        with pytest.raises(NDlogValidationError, match="link-restricted"):
            localize_rule(rule)


class TestLocalizeProgram:
    def test_every_rule_local_after_rewrite(self):
        for module in (mincost, path_vector):
            localized = localize_program(module.program())
            assert all(rule.is_local() for rule in localized.rules)

    def test_materialize_declarations_preserved(self):
        localized = localize_program(mincost.program())
        assert "link" in localized.materialized

    def test_intermediate_relations_are_marked(self):
        localized = localize_program(mincost.program())
        intermediates = [
            relation for relation in localized.head_relations() if is_intermediate_relation(relation)
        ]
        assert intermediates
        assert all(relation.startswith(INTERMEDIATE_PREFIX) for relation in intermediates)

    def test_local_program_unchanged_in_size(self):
        program = parse_program("r p(@S, D) :- a(@S, D), b(@S, D).", name="local")
        assert len(localize_program(program).rules) == 1
