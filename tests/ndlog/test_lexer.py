"""Tests for the NDlog tokenizer."""

import pytest

from repro.errors import NDlogSyntaxError
from repro.ndlog import lexer


def kinds(text):
    return [token.kind for token in lexer.tokenize(text)]


def values(text):
    return [token.value for token in lexer.tokenize(text)]


class TestTokenKinds:
    def test_identifier_and_variable_distinction(self):
        tokens = lexer.tokenize("link Link _link")
        assert tokens[0].kind == lexer.IDENT
        assert tokens[1].kind == lexer.VARIABLE
        assert tokens[2].kind == lexer.VARIABLE  # leading underscore counts as a variable

    def test_numbers_integer_and_float(self):
        tokens = lexer.tokenize("42 3.5")
        assert tokens[0].value == 42 and isinstance(tokens[0].value, int)
        assert tokens[1].value == 3.5 and isinstance(tokens[1].value, float)

    def test_number_followed_by_clause_period(self):
        # "1." at the end of a clause must tokenize as the integer 1 plus '.'.
        tokens = lexer.tokenize("foo(1).")
        assert [t.value for t in tokens[:-1]] == ["foo", "(", 1, ")", "."]

    def test_string_literals_double_and_single_quotes(self):
        tokens = lexer.tokenize('"hello" \'world\'')
        assert tokens[0].kind == lexer.STRING and tokens[0].value == "hello"
        assert tokens[1].kind == lexer.STRING and tokens[1].value == "world"

    def test_multi_character_symbols(self):
        tokens = lexer.tokenize(":- ?- := <= >= == !=")
        assert [t.value for t in tokens[:-1]] == [":-", "?-", ":=", "<=", ">=", "==", "!="]

    def test_location_specifier_symbol(self):
        assert "@" in values("p(@X)")

    def test_eof_token_is_last(self):
        tokens = lexer.tokenize("x")
        assert tokens[-1].kind == lexer.EOF


class TestCommentsAndWhitespace:
    def test_double_slash_comments_are_skipped(self):
        assert values("a // comment here\nb")[:2] == ["a", "b"]

    def test_hash_comments_are_skipped(self):
        assert values("a # comment\nb")[:2] == ["a", "b"]

    def test_line_and_column_positions(self):
        tokens = lexer.tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)


class TestLexerErrors:
    def test_unterminated_string_raises(self):
        with pytest.raises(NDlogSyntaxError):
            lexer.tokenize('"unterminated')

    def test_unexpected_character_raises(self):
        with pytest.raises(NDlogSyntaxError):
            lexer.tokenize("p(x) & q(y)")

    def test_error_carries_position(self):
        with pytest.raises(NDlogSyntaxError) as excinfo:
            lexer.tokenize("abc\n  $")
        assert excinfo.value.line == 2


class TestClauseSplitting:
    def test_clauses_split_on_period(self):
        tokens = lexer.tokenize("a(1). b(2).")
        clauses = list(lexer.iter_clauses(tokens))
        assert len(clauses) == 2
        assert clauses[0][0].value == "a"
        assert clauses[1][0].value == "b"

    def test_missing_terminating_period_raises(self):
        tokens = lexer.tokenize("a(1). b(2)")
        with pytest.raises(NDlogSyntaxError):
            list(lexer.iter_clauses(tokens))

    def test_empty_input_yields_no_clauses(self):
        assert list(lexer.iter_clauses(lexer.tokenize("   \n// nothing\n"))) == []
