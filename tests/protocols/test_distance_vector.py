"""Tests for the distance-vector protocol."""

import pytest

from repro.engine import topology
from repro.protocols import distance_vector


class TestConvergence:
    @pytest.mark.parametrize(
        "net",
        [topology.line(5), topology.ring(6), topology.grid(3, 3)],
        ids=["line5", "ring6", "grid3x3"],
    )
    def test_hop_counts_match_bfs_reference(self, net):
        runtime = distance_vector.setup(net)
        assert distance_vector.check_against_reference(runtime, net)

    def test_hop_counts_ignore_link_costs(self):
        net = topology.from_edges([("a", "b", 100.0), ("a", "c", 1.0), ("c", "b", 1.0)])
        runtime = distance_vector.setup(net)
        hops = {(s, d): h for (s, d, h) in runtime.state("bestHop")}
        assert hops[("a", "b")] == 1  # direct link, despite its high cost

    def test_ttl_bound_limits_propagation(self):
        # A chain longer than MAX_HOPS: far-apart pairs must not appear.
        net = topology.line(distance_vector.MAX_HOPS + 3)
        runtime = distance_vector.setup(net)
        assert distance_vector.check_against_reference(runtime, net)
        hops = {(s, d) for (s, d, _h) in runtime.state("bestHop")}
        assert ("n0", f"n{distance_vector.MAX_HOPS + 2}") not in hops
        assert ("n0", "n1") in hops


class TestDynamics:
    def test_failure_and_recovery(self, ring5):
        runtime = distance_vector.setup(ring5)
        runtime.remove_link("n0", "n1")
        runtime.run_to_quiescence()
        assert distance_vector.check_against_reference(runtime, ring5)
        runtime.add_link("n0", "n1", 1.0)
        runtime.run_to_quiescence()
        assert distance_vector.check_against_reference(runtime, ring5)
