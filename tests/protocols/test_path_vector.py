"""Tests for the path-vector protocol."""

import pytest

from repro.engine import topology
from repro.protocols import path_vector


class TestConvergence:
    @pytest.mark.parametrize(
        "net",
        [
            topology.line(4),
            topology.ring(5),
            topology.random_connected(7, edge_probability=0.35, seed=2),
        ],
        ids=["line4", "ring5", "random7"],
    )
    def test_best_costs_match_reference(self, net):
        runtime = path_vector.setup(net)
        assert path_vector.check_against_reference(runtime, net)

    def test_best_paths_are_consistent_with_costs(self, line4):
        runtime = path_vector.setup(line4)
        costs = {(s, d): c for (s, d, c) in runtime.state("bestPathCost")}
        for (source, destination), path in path_vector.best_paths(runtime).items():
            assert path[0] == source and path[-1] == destination
            hop_cost = sum(
                line4.cost(a, b) for a, b in zip(path, path[1:])
            )
            assert hop_cost == costs[(source, destination)]

    def test_paths_are_loop_free(self, ring5):
        runtime = path_vector.setup(ring5)
        for _source, _destination, path, _cost in runtime.state("bestPath"):
            assert len(set(path)) == len(path)

    def test_paths_follow_existing_links(self, small_random):
        runtime = path_vector.setup(small_random)
        for _s, _d, path, _cost in runtime.state("bestPath"):
            for a, b in zip(path, path[1:]):
                assert small_random.has_edge(a, b)


class TestDynamics:
    def test_reroute_after_link_failure(self, ring5):
        runtime = path_vector.setup(ring5)
        before = path_vector.best_paths(runtime)
        assert before[("n0", "n1")] == ("n0", "n1")
        runtime.remove_link("n0", "n1")
        runtime.run_to_quiescence()
        assert path_vector.check_against_reference(runtime, ring5)
        after = path_vector.best_paths(runtime)
        assert after[("n0", "n1")] == ("n0", "n4", "n3", "n2", "n1")

    def test_better_link_adoption(self, line4):
        runtime = path_vector.setup(line4)
        runtime.add_link("n0", "n3", 1.0)
        runtime.run_to_quiescence()
        assert path_vector.check_against_reference(runtime, line4)
        assert path_vector.best_paths(runtime)[("n0", "n3")] == ("n0", "n3")
