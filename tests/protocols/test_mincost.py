"""Tests for the MINCOST protocol (the paper's running example)."""

import pytest

from repro.engine import topology
from repro.protocols import mincost


class TestConvergence:
    @pytest.mark.parametrize(
        "net",
        [
            topology.line(4),
            topology.ring(6),
            topology.star(5),
            topology.grid(3, 3),
            topology.random_connected(10, edge_probability=0.3, seed=11),
            topology.random_connected(10, edge_probability=0.3, seed=12, max_cost=4),
        ],
        ids=["line4", "ring6", "star5", "grid3x3", "random10a", "random10b"],
    )
    def test_matches_dijkstra_reference(self, net):
        runtime = mincost.setup(net)
        assert mincost.check_against_reference(runtime, net)

    def test_mincost_has_one_row_per_reachable_pair(self, ring5):
        runtime = mincost.setup(ring5)
        assert len(runtime.state("minCost")) == 5 * 4

    def test_weighted_links_respected(self):
        net = topology.from_edges([("a", "b", 10.0), ("a", "c", 1.0), ("c", "b", 2.0)])
        runtime = mincost.setup(net)
        costs = {(s, d): c for (s, d, c) in runtime.state("minCost")}
        assert costs[("a", "b")] == 3.0


class TestDynamics:
    def test_link_insertion_improves_costs(self, ring5):
        runtime = mincost.setup(ring5)
        runtime.add_link("n0", "n2", 0.5)
        runtime.run_to_quiescence()
        assert mincost.check_against_reference(runtime, ring5)
        costs = {(s, d): c for (s, d, c) in runtime.state("minCost")}
        assert costs[("n0", "n2")] == 0.5

    def test_link_deletion_degrades_costs(self, ring5):
        runtime = mincost.setup(ring5)
        runtime.remove_link("n0", "n1")
        runtime.run_to_quiescence()
        assert mincost.check_against_reference(runtime, ring5)
        costs = {(s, d): c for (s, d, c) in runtime.state("minCost")}
        assert costs[("n0", "n1")] == 4.0  # the long way round the ring

    def test_partition_removes_cross_partition_costs(self):
        net = topology.line(4)
        runtime = mincost.setup(net)
        runtime.remove_link("n1", "n2")
        runtime.run_to_quiescence()
        assert mincost.check_against_reference(runtime, net)
        pairs = {(s, d) for (s, d, _c) in runtime.state("minCost")}
        assert ("n0", "n3") not in pairs
        assert ("n0", "n1") in pairs and ("n2", "n3") in pairs

    def test_sequence_of_changes_stays_consistent(self, small_random):
        runtime = mincost.setup(small_random)
        edges = sorted(small_random.edges)[:3]
        for a, b in edges:
            runtime.remove_link(a, b)
            runtime.run_to_quiescence()
            assert mincost.check_against_reference(runtime, small_random)
        for a, b in edges:
            runtime.add_link(a, b, 2.0)
            runtime.run_to_quiescence()
            assert mincost.check_against_reference(runtime, small_random)


class TestProgramShape:
    def test_program_parses_with_three_rules(self):
        program = mincost.program()
        assert len(program.rules) == 3
        assert program.rule_named("mc3").has_aggregate

    def test_max_cost_guard_present(self):
        assert str(mincost.MAX_COST) in mincost.SOURCE
