"""Tests for the DSR (dynamic source routing) protocol, including mobility."""

import pytest

from repro.engine import topology
from repro.engine.mobility import WaypointMobilityModel
from repro.engine.runtime import NetTrailsRuntime
from repro.protocols import dsr


class TestRouteDiscovery:
    def test_no_routes_before_request(self, ring5):
        runtime = dsr.setup(ring5)
        assert runtime.state("sourceRoute") == []

    def test_request_discovers_all_simple_paths(self, ring5):
        runtime = dsr.setup(ring5)
        dsr.request_route(runtime, "n0", "n2")
        discovered = set(dsr.discovered_routes(runtime, "n0", "n2"))
        assert discovered == dsr.reference_simple_paths(ring5, "n0", "n2")

    def test_requests_are_per_pair(self, ring5):
        runtime = dsr.setup(ring5)
        dsr.request_route(runtime, "n0", "n2")
        assert dsr.discovered_routes(runtime, "n1", "n3") == []

    def test_route_count_aggregate(self, ring5):
        runtime = dsr.setup(ring5)
        dsr.request_route(runtime, "n0", "n2")
        counts = {(s, d): c for (s, d, c) in runtime.state("routeCount")}
        assert counts[("n0", "n2")] == 2  # both directions around the ring

    def test_unreachable_destination_discovers_nothing(self):
        net = topology.Topology(name="islands")
        net.add_edge("a", "b", 1.0)
        net.add_edge("c", "d", 1.0)
        runtime = dsr.setup(net)
        dsr.request_route(runtime, "a", "c")
        assert dsr.discovered_routes(runtime, "a", "c") == []


class TestMobility:
    def test_routes_follow_topology_changes(self, line4):
        runtime = dsr.setup(line4)
        dsr.request_route(runtime, "n0", "n3")
        assert dsr.discovered_routes(runtime, "n0", "n3") == [("n0", "n1", "n2", "n3")]
        # the middle link breaks: the only route disappears
        runtime.remove_link("n1", "n2")
        runtime.run_to_quiescence()
        assert dsr.discovered_routes(runtime, "n0", "n3") == []
        # a new link appears: a fresh route is discovered incrementally
        runtime.add_link("n1", "n3", 1.0)
        runtime.run_to_quiescence()
        assert dsr.discovered_routes(runtime, "n0", "n3") == [("n0", "n1", "n3")]

    def test_waypoint_mobility_trace_keeps_routes_consistent(self):
        names = [f"m{i}" for i in range(5)]
        model = WaypointMobilityModel(names, field_size=60.0, radio_range=35.0, seed=4)
        events = list(model.events(duration=10.0, dt=2.0))
        net = topology.Topology(name="manet")
        for name in names:
            net.add_node(name)
        runtime = NetTrailsRuntime(dsr.program(), net, provenance=True)
        runtime.seed_links(run=True)  # no edges yet; establishes the link relation
        runtime.insert("request", ["m0", "m3"])
        current = set()
        for event in events:
            if event.kind == "up":
                runtime.add_link(event.source, event.target, 1.0)
                current.add((event.source, event.target))
            else:
                runtime.remove_link(event.source, event.target)
                current.discard((event.source, event.target))
            runtime.run_to_quiescence()
            # every discovered route must only use currently-existing links
            for route in dsr.discovered_routes(runtime, "m0", "m3"):
                for a, b in zip(route, route[1:]):
                    assert runtime.topology.has_edge(a, b)
