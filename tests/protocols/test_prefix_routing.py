"""Tests for the BGP-style prefix-routing protocol."""

from repro.core.query import DistributedQueryEngine
from repro.engine import topology
from repro.protocols import prefix_routing


class TestFixpoint:
    def test_single_origin_matches_reference_on_ring(self):
        net = topology.ring(6)
        runtime = prefix_routing.setup(net)
        origins = [("n0", "p0")]
        prefix_routing.announce(runtime, origins)
        assert prefix_routing.check_against_reference(runtime, net, origins)
        # Every node (within the cost bound) selected exactly one best route.
        assert len(runtime.state("best")) == 6

    def test_multi_homed_prefix_selects_the_nearer_origin(self):
        net = topology.line(5)
        runtime = prefix_routing.setup(net)
        origins = [("n0", "p0"), ("n4", "p0")]
        prefix_routing.announce(runtime, origins)
        assert prefix_routing.check_against_reference(runtime, net, origins)
        best = {node: cost for node, _prefix, cost in runtime.state("best")}
        assert best["n1"] == 1.0  # via n0, not 3 hops via n4
        assert best["n3"] == 1.0  # via n4

    def test_cost_bound_limits_propagation(self):
        net = topology.line(12)
        runtime = prefix_routing.setup(net)
        prefix_routing.announce(runtime, [("n0", "p0")])
        reached = {node for node, _prefix, _cost in runtime.state("best")}
        # Hops at cost >= MAX_COST are not derived.
        assert reached == {f"n{i}" for i in range(prefix_routing.MAX_COST)}

    def test_state_scales_with_prefixes_not_pairs(self):
        net = topology.isp_hierarchy(3, 2, 2, seed=1)
        runtime = prefix_routing.setup(net)
        origins = [("stub_0_0_0", "p0"), ("stub_2_1_1", "p1")]
        prefix_routing.announce(runtime, origins)
        assert len(runtime.state("best")) <= 2 * net.node_count()


class TestDynamics:
    def test_withdraw_clears_routes(self):
        net = topology.ring(5)
        runtime = prefix_routing.setup(net)
        origins = [("n0", "p0")]
        prefix_routing.announce(runtime, origins)
        assert runtime.state("best")
        prefix_routing.withdraw(runtime, origins)
        assert runtime.state("best") == []
        assert runtime.state("route") == []

    def test_losing_one_origin_reroutes_to_the_survivor(self):
        net = topology.line(4)
        runtime = prefix_routing.setup(net)
        prefix_routing.announce(runtime, [("n0", "p0"), ("n3", "p0")])
        prefix_routing.withdraw(runtime, [("n0", "p0")])
        assert prefix_routing.check_against_reference(runtime, net, [("n3", "p0")])

    def test_link_failure_reconverges_to_reference(self):
        net = topology.ring(6)
        runtime = prefix_routing.setup(net)
        origins = [("n0", "p0")]
        prefix_routing.announce(runtime, origins)
        runtime.remove_link("n0", "n1")
        runtime.run_to_quiescence()
        assert prefix_routing.check_against_reference(
            runtime, runtime.topology, origins
        )


class TestProvenance:
    def test_best_routes_have_queryable_lineage(self):
        net = topology.star(5)
        runtime = prefix_routing.setup(net)
        prefix_routing.announce(runtime, [("n1", "p0")])
        engine = DistributedQueryEngine(runtime)
        target = sorted(runtime.state("best"), key=repr)[0]
        result = engine.lineage("best", list(target))
        assert result.value, "best route must have a non-empty lineage"
