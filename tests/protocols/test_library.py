"""Tests for the protocol registry and conciseness metrics."""

import pytest

from repro.protocols import library


class TestRegistry:
    def test_all_protocols_registered(self):
        assert library.protocol_names() == [
            "distance_vector",
            "dsr",
            "mincost",
            "path_vector",
            "prefix_routing",
        ]

    def test_programs_resolve(self):
        for name in library.protocol_names():
            assert library.protocol_program(name).rules

    def test_unknown_protocol_raises(self):
        with pytest.raises(KeyError):
            library.protocol_program("ospf")


class TestConcisenessMetrics:
    def test_rule_counts_are_small(self):
        for name in library.protocol_names():
            assert 3 <= library.ndlog_rule_count(name) <= 6

    def test_line_counts_are_small(self):
        for name in library.protocol_names():
            assert library.ndlog_line_count(name) <= 20

    def test_line_count_excludes_comments_and_blanks(self):
        count = library.ndlog_line_count("mincost")
        raw_lines = len(library.PROTOCOLS["mincost"].SOURCE.splitlines())
        assert count < raw_lines
