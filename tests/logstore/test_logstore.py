"""Tests for snapshots, the central log store and replay."""

import pytest

from repro.errors import LogStoreError
from repro.engine import topology
from repro.logstore import LogStore, ReplaySession, Snapshot, take_snapshot
from repro.logstore.replay import diff_snapshots
from repro.protocols import mincost


@pytest.fixture
def runtime(ring5):
    return mincost.setup(ring5)


class TestSnapshot:
    def test_snapshot_captures_every_relation(self, runtime):
        snapshot = take_snapshot(runtime, label="t0")
        assert set(snapshot.relations()) >= {"link", "path", "minCost"}
        assert snapshot.total_facts() == runtime.total_facts()
        assert snapshot.node_ids() == ["n0", "n1", "n2", "n3", "n4"]

    def test_snapshot_relation_matches_runtime_state(self, runtime):
        snapshot = take_snapshot(runtime)
        assert snapshot.relation("minCost") == runtime.state("minCost")

    def test_json_round_trip(self, runtime):
        snapshot = take_snapshot(runtime, label="x")
        restored = Snapshot.from_json(snapshot.to_json())
        assert restored.label == "x"
        assert restored.relation("minCost") == snapshot.relation("minCost")
        assert restored.time == snapshot.time

    def test_malformed_snapshot_rejected(self):
        with pytest.raises(LogStoreError):
            Snapshot.from_dict({"time": "soon"})

    def test_provenance_graph_reconstruction(self, runtime):
        snapshot = take_snapshot(runtime)
        graph = snapshot.provenance_graph()
        live = runtime.provenance.build_graph()
        assert graph.tuple_count == live.tuple_count
        assert graph.rule_exec_count == live.rule_exec_count
        # lineage computed from the snapshot graph matches the live graph
        target = graph.find_tuples("minCost", ("n0", "n2", 2.0))[0]
        assert {v.values for v in graph.base_tuples_of(target.vid)} == {
            v.values for v in live.base_tuples_of(target.vid)
        }

    def test_snapshot_json_round_trip_preserves_provenance(self, runtime):
        snapshot = take_snapshot(runtime)
        restored = Snapshot.from_json(snapshot.to_json())
        graph = restored.provenance_graph()
        assert graph.tuple_count == snapshot.provenance_graph().tuple_count


class TestLogStore:
    def test_collect_appends_in_time_order(self, runtime):
        store = LogStore()
        store.collect(runtime, label="first")
        runtime.remove_link("n0", "n1")
        runtime.run_to_quiescence()
        store.collect(runtime, label="second")
        assert len(store) == 2
        assert store.latest().label == "second"
        assert store.by_label("first").relation("minCost") != store.latest().relation("minCost")

    def test_out_of_order_append_rejected(self, runtime):
        store = LogStore()
        later = take_snapshot(runtime)
        store.append(later)
        earlier = Snapshot(time=later.time - 1.0)
        with pytest.raises(LogStoreError):
            store.append(earlier)

    def test_at_time_selection(self, runtime):
        store = LogStore()
        first = store.collect(runtime)
        runtime.add_link("n0", "n2", 1.0)
        runtime.run_to_quiescence()
        second = store.collect(runtime)
        assert store.at_time(first.time) is first
        assert store.at_time(second.time + 10) is second
        with pytest.raises(LogStoreError):
            store.at_time(first.time - 1)

    def test_unknown_label_rejected(self, runtime):
        store = LogStore()
        store.collect(runtime, label="only")
        with pytest.raises(LogStoreError):
            store.by_label("missing")

    def test_by_label_is_latest_wins(self, runtime):
        """Duplicate labels (periodic captures, re-taken checkpoints) must
        resolve to the newest capture, never an arbitrary earlier one."""
        store = LogStore()
        first = store.collect(runtime, label="periodic")
        runtime.remove_link("n0", "n1")
        runtime.run_to_quiescence()
        second = store.collect(runtime, label="periodic")
        assert store.by_label("periodic") is second
        assert store.by_label("periodic") is not first
        # unique labels are unaffected by the tiebreak
        third = store.collect(runtime, label="unique")
        assert store.by_label("unique") is third
        assert store.by_label("periodic") is second

    def test_at_time_ties_resolve_to_last_appended(self, runtime):
        """Snapshots sharing one capture time follow the same latest-wins
        tiebreak as by_label: the boundary is inclusive and the last
        appended snapshot for that time wins."""
        store = LogStore()
        first = store.collect(runtime, label="a")
        duplicate = take_snapshot(runtime, label="b")
        assert duplicate.time == first.time  # no simulator progress between
        store.append(duplicate)
        assert store.at_time(first.time) is duplicate
        assert store.at_time(first.time + 0.001) is duplicate

    def test_empty_store_latest_rejected(self):
        with pytest.raises(LogStoreError):
            LogStore().latest()

    def test_save_and_load(self, runtime, tmp_path):
        store = LogStore()
        store.collect(runtime, label="persisted")
        path = tmp_path / "log.json"
        store.save(path)
        loaded = LogStore.load(path)
        assert len(loaded) == 1
        assert loaded.latest().label == "persisted"
        assert loaded.latest().relation("minCost") == store.latest().relation("minCost")

    def test_load_missing_file_rejected(self, tmp_path):
        with pytest.raises(LogStoreError):
            LogStore.load(tmp_path / "nope.json")

    def test_periodic_collection_via_simulator(self, ring5):
        runtime = mincost.setup(ring5, run=False)
        store = LogStore()
        store.schedule_periodic(runtime, interval=0.05, count=3)
        runtime.run_to_quiescence()
        assert len(store) == 3
        # the protocol kept running between captures, so later snapshots see
        # at least as much state as earlier ones
        sizes = [snapshot.total_facts() for snapshot in store.snapshots()]
        assert sizes == sorted(sizes)

    def test_invalid_interval_rejected(self, runtime):
        with pytest.raises(LogStoreError):
            LogStore().schedule_periodic(runtime, interval=0.0, count=1)


class TestReplay:
    def test_replay_steps_through_diffs(self, runtime):
        store = LogStore()
        store.collect(runtime, label="initial")
        runtime.remove_link("n0", "n1")
        runtime.run_to_quiescence()
        store.collect(runtime, label="after-failure")
        session = ReplaySession(store)
        assert session.position == 0
        diff = session.step()
        assert diff is not None
        assert diff.removed_count() > 0
        assert "minCost" in diff.removed or "path" in diff.removed
        assert session.at_end()
        assert session.step() is None

    def test_empty_store_cannot_be_replayed(self):
        with pytest.raises(LogStoreError):
            ReplaySession(LogStore())

    def test_seek_and_rewind(self, runtime):
        store = LogStore()
        first = store.collect(runtime)
        runtime.add_link("n1", "n3", 1.0)
        runtime.run_to_quiescence()
        store.collect(runtime)
        session = ReplaySession(store)
        session.step()
        assert session.seek_time(first.time).time == first.time
        assert session.rewind().time == first.time
        with pytest.raises(LogStoreError):
            session.seek_time(first.time - 100)

    def test_replay_provenance_graph_matches_snapshot(self, runtime):
        store = LogStore()
        store.collect(runtime)
        session = ReplaySession(store)
        assert session.provenance_graph().tuple_count == store.latest().provenance_graph().tuple_count

    def test_diff_summary_and_empty_diff(self, runtime):
        snapshot = take_snapshot(runtime)
        diff = diff_snapshots(snapshot, snapshot)
        assert diff.is_empty
        assert "(no change)" in diff.summary()

    def test_all_diffs(self, runtime):
        store = LogStore()
        store.collect(runtime)
        runtime.remove_link("n0", "n1")
        runtime.run_to_quiescence()
        store.collect(runtime)
        runtime.add_link("n0", "n1", 1.0)
        runtime.run_to_quiescence()
        store.collect(runtime)
        session = ReplaySession(store)
        diffs = session.all_diffs()
        assert len(diffs) == 2
        assert diffs[0].removed_count() > 0
        assert diffs[1].added_count() > 0
