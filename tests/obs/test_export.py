"""Round-trip coverage for the exporters: Prometheus text, JSON, Chrome trace."""

from __future__ import annotations

import json

from repro.obs import Observability
from repro.obs.export import (
    chrome_trace_events,
    chrome_trace_json,
    json_snapshot,
    parse_prometheus_text,
    prometheus_text,
    write_chrome_trace,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import Tracer


def populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.register_view("cache", lambda: {"hits": 3, "misses": 1})
    registry.counter("query.issued", "Queries issued").inc(5)
    registry.counter("query.issued").labels(mode="lineage").inc(2)
    registry.gauge("store.live").set(42)
    histogram = registry.histogram("query.latency_seconds", buckets=(0.01, 0.1, 1.0))
    for value in (0.005, 0.05, 0.5):
        histogram.observe(value)
    return registry


class TestPrometheus:
    def test_round_trip_counters_gauges_and_views(self):
        text = prometheus_text(populated_registry())
        values = parse_prometheus_text(text)
        assert values["nettrails_cache_hits"] == 3.0
        assert values["nettrails_cache_misses"] == 1.0
        assert values["nettrails_query_issued"] == 5.0
        assert values['nettrails_query_issued{mode="lineage"}'] == 2.0
        assert values["nettrails_store_live"] == 42.0

    def test_histogram_buckets_are_cumulative(self):
        values = parse_prometheus_text(prometheus_text(populated_registry()))
        assert values['nettrails_query_latency_seconds_bucket{le="0.01"}'] == 1.0
        assert values['nettrails_query_latency_seconds_bucket{le="0.1"}'] == 2.0
        assert values['nettrails_query_latency_seconds_bucket{le="1"}'] == 3.0
        assert values['nettrails_query_latency_seconds_bucket{le="+Inf"}'] == 3.0
        assert values["nettrails_query_latency_seconds_count"] == 3.0
        assert values["nettrails_query_latency_seconds_sum"] == 0.555

    def test_type_and_help_headers_are_emitted(self):
        text = prometheus_text(populated_registry())
        assert "# TYPE nettrails_query_issued counter" in text
        assert "# HELP nettrails_query_issued Queries issued" in text
        assert "# TYPE nettrails_query_latency_seconds histogram" in text
        assert "# TYPE nettrails_cache_hits untyped" in text


class TestJsonSnapshot:
    def test_snapshot_is_json_serialisable_and_complete(self):
        obs = Observability()
        obs.registry.counter("query.issued").inc()
        obs.record_event("checkpoint", window=1)
        span = obs.tracer.start_span("query", trace_id="q1", node="'n0'")
        span.finish(messages=4)
        snapshot = json_snapshot(obs)
        restored = json.loads(json.dumps(snapshot, sort_keys=True))
        assert restored["metrics"]["query.issued"] == 1.0
        assert restored["flight_recorder"]["events"][0]["kind"] == "checkpoint"
        (rendered,) = restored["spans"]
        assert rendered["name"] == "query"
        assert rendered["attrs"] == {"messages": 4}


class TestChromeTrace:
    def traced(self) -> Tracer:
        tracer = Tracer()
        root = tracer.start_span("query", trace_id="q1")
        tracer.start_span("frame.exec", parent=root, node="'n0'").finish()
        tracer.start_span("frame.exec", parent=root, node="'n1'").finish()
        root.finish(messages=4)
        return tracer

    def test_span_events_round_trip_through_json(self):
        blob = chrome_trace_json(self.traced())
        document = json.loads(blob)
        events = document["traceEvents"]
        complete = [event for event in events if event["ph"] == "X"]
        assert len(complete) == 3
        names = sorted(event["name"] for event in complete)
        assert names == ["frame.exec", "frame.exec", "query"]
        for event in complete:
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert event["args"]["trace_id"] == "q1"

    def test_nodes_get_their_own_thread_tracks(self):
        events = chrome_trace_events(self.traced())
        thread_names = {
            event["args"]["name"]
            for event in events
            if event["ph"] == "M" and event["name"] == "thread_name"
        }
        assert thread_names == {"coordinator", "'n0'", "'n1'"}
        spans = {event["name"]: event["tid"] for event in events if event["ph"] == "X"}
        assert spans["query"] == 0  # engine-level span on the coordinator track
        node_tids = {
            event["tid"]
            for event in events
            if event["ph"] == "X" and event["name"] == "frame.exec"
        }
        assert len(node_tids) == 2 and 0 not in node_tids

    def test_empty_tracer_still_produces_valid_envelope(self):
        document = json.loads(chrome_trace_json(Tracer()))
        assert all(event["ph"] == "M" for event in document["traceEvents"])

    def test_write_chrome_trace_persists_the_envelope(self, tmp_path):
        path = tmp_path / "trace.json"
        returned = write_chrome_trace(str(path), self.traced())
        assert returned == str(path)
        document = json.loads(path.read_text(encoding="utf-8"))
        assert document["displayTimeUnit"] == "ms"
        assert any(event["ph"] == "X" for event in document["traceEvents"])
