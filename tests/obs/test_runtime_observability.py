"""Observability wired through the engine: views, traces, failure dumps.

The two load-bearing contracts pinned here:

* **Propagation** — trace context survives every hop: query envelopes
  between nodes, and (under the process backend) the drain round-trip
  through the :class:`~repro.engine.procpool.TraceCodec` pipe, with worker
  spans re-parented onto coordinator spans and node attribution intact.
* **Invisibility** — enabling observability changes no deterministic
  surface: store snapshots, provenance fingerprints, query answers and
  message counts are bit-identical with the subsystem on and off.
"""

from __future__ import annotations

import os
import signal

import pytest

from repro.core.query import DistributedQueryEngine
from repro.engine import topology
from repro.engine.runtime import NetTrailsRuntime
from repro.errors import EngineError
from repro.protocols import mincost

BACKENDS = ["serial", "thread", "process"]


def build_runtime(observability=True, **kwargs):
    return NetTrailsRuntime(
        mincost.SOURCE, topology.ring(5), observability=observability, **kwargs
    )


def query_tree(runtime, engine, relation="minCost"):
    """Issue one lineage query and return its assembled span tree."""
    target = sorted(runtime.state(relation), key=repr)[0]
    result = engine.query(relation, list(target), mode="lineage")
    spans = runtime.obs.tracer.finished_spans(name="query")
    assert spans, "the engine must record a query root span"
    tree = runtime.obs.tracer.span_tree(spans[-1].trace_id)
    return result, tree


class TestMetricsViews:
    def test_engine_layers_populate_the_registry(self):
        with build_runtime() as runtime:
            runtime.seed_links(run=True)
            engine = DistributedQueryEngine(runtime)
            engine.query("minCost", list(sorted(runtime.state("minCost"), key=repr)[0]))
            collected = runtime.obs.registry.collect()
            assert collected["simulator.rounds"] > 0
            assert collected["traffic.messages"] > 0
            assert collected["node.updates_processed"] > 0
            assert collected["node.rule_firings"] > 0
            assert "cache.hits" in collected
            assert "vid_versions.entries" in collected
            assert collected['query.latency_seconds{mode="lineage"}.count'] == 1

    def test_latency_histogram_is_labeled_by_mode(self):
        with build_runtime() as runtime:
            runtime.seed_links(run=True)
            engine = DistributedQueryEngine(runtime)
            target = list(sorted(runtime.state("minCost"), key=repr)[0])
            engine.query("minCost", target, mode="lineage")
            engine.query("minCost", target, mode="participants")
            histogram = runtime.obs.registry.get("query.latency_seconds")
            by_mode = {
                child.label_values: child.count for child in histogram.children()
            }
            assert by_mode == {(("mode", "lineage"),): 1, (("mode", "participants"),): 1}

    def test_wal_view_counts_appends(self, tmp_path):
        with build_runtime(durable_dir=tmp_path / "d", wal_fsync=False) as runtime:
            runtime.seed_links(run=True)
            collected = runtime.obs.registry.collect()
            assert collected["wal.records_appended"] >= 1
            assert collected["wal.bytes_appended"] > 0

    def test_disabled_runtime_carries_no_observability(self):
        with build_runtime(observability=False) as runtime:
            assert runtime.obs is None
            assert runtime.observability is False


class TestWindowTraces:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_window_trace_collects_drain_spans(self, backend):
        with build_runtime(backend=backend, backend_workers=2) as runtime:
            runtime.seed_links(run=True)
            tracer = runtime.obs.tracer
            windows = tracer.finished_spans(name="window")
            assert len(windows) == 1
            tree = tracer.span_tree(windows[0].trace_id)
            drains = tree["children"]
            assert drains and all(child["name"] == "drain" for child in drains)
            # Worker-side spans came home through the pipe with node
            # attribution intact; the tree assembling at all proves every
            # parent id resolved.
            assert all(child["node"] is not None for child in drains)
            assert {child["node"] for child in drains} == {
                repr(node_id) for node_id in runtime.node_ids()
            }

    def test_drain_events_reach_the_flight_recorder(self):
        with build_runtime() as runtime:
            runtime.seed_links(run=True)
            drains = runtime.obs.recorder.events("drain")
            assert drains and all(event["updates"] >= 1 for event in drains)


class TestQueryTraces:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_query_span_tree_assembles_on_every_backend(self, backend):
        with build_runtime(backend=backend, backend_workers=2) as runtime:
            runtime.seed_links(run=True)
            engine = DistributedQueryEngine(runtime)
            result, tree = query_tree(runtime, engine)
            assert tree["name"] == "query"
            assert tree["attrs"]["mode"] == "lineage"
            assert tree["attrs"]["messages"] == result.stats.messages
            assert tree["attrs"]["rounds"] == result.stats.rounds
            frames = tree["children"]
            assert frames and all(
                child["name"].startswith("frame.") for child in frames
            )
            assert all(child["node"] is not None for child in frames)

    def test_serial_and_process_trees_have_identical_shape(self):
        def shape(tree):
            return (
                tree["name"],
                tree["node"],
                sorted(shape(child) for child in tree["children"]),
            )

        shapes = {}
        for backend in ("serial", "process"):
            with build_runtime(backend=backend, backend_workers=2) as runtime:
                runtime.seed_links(run=True)
                _, tree = query_tree(runtime, DistributedQueryEngine(runtime))
                shapes[backend] = shape(tree)
        assert shapes["serial"] == shapes["process"]

    def test_interval_batch_records_partition_spans(self):
        with build_runtime(use_interval_index=True) as runtime:
            runtime.seed_links(run=True)
            engine = DistributedQueryEngine(runtime)
            rows = sorted(runtime.state("minCost"), key=repr)[:2]
            results = engine.query_batch(
                "minCost", [list(row) for row in rows], mode="lineage"
            )
            assert len(results) == 2
            tracer = runtime.obs.tracer
            roots = tracer.finished_spans(name="query")
            assert roots[-1].attrs["n_roots"] == 2
            tree = tracer.span_tree(roots[-1].trace_id)
            partitions = [
                child
                for child in tree["children"]
                if child["name"] == "interval.partition"
            ]
            assert partitions and all(
                child["attrs"]["targets"] >= 1 for child in partitions
            )


class TestWorkerFailurePaths:
    def test_killed_worker_leaves_a_flight_record(self):
        runtime = build_runtime(backend="process", backend_workers=1)
        try:
            runtime.seed_links(run=True)
            process = runtime.backend._channels[0].process
            os.kill(process.pid, signal.SIGKILL)
            process.join(timeout=5.0)
            with pytest.raises(EngineError, match="died while"):
                runtime.insert("link", ["n0", "n2", 7])
                runtime.run_to_quiescence()
            (event,) = runtime.obs.recorder.events("worker_error")
            assert event["pid"] == process.pid
            assert event["error"] == "worker died (pipe closed)"
            assert event["nodes"]
        finally:
            runtime.close()

    def test_worker_side_failure_is_recorded_and_survivable(self):
        runtime = build_runtime(backend="process", backend_workers=1)
        try:
            runtime.seed_links(run=True)
            from repro.engine.node import _PendingUpdate
            from repro.engine.store import BASE_DERIVATION
            from repro.engine.tuples import Fact

            node = runtime.nodes["n0"]
            node._queue.append(
                _PendingUpdate(
                    +1, Fact.make("link", ("n0", "n1", "boom")), BASE_DERIVATION, None
                )
            )
            with pytest.raises(EngineError, match="failed draining"):
                node._drain()
            (event,) = runtime.obs.recorder.events("worker_error")
            assert "boom" in event["error"] or event["error"]
            assert runtime.backend._channels[0].process.is_alive()
        finally:
            runtime.close()


class TestServiceFlightDump:
    def test_crash_dumps_the_flight_recorder(self, tmp_path):
        from repro.durability.service import ServiceRuntime

        service = ServiceRuntime(
            "mincost",
            topology.line(3),
            durable_dir=tmp_path / "svc",
            wal_fsync=False,
            observability=True,
        )
        service.seed_links()
        service.query("minCost", sorted(service.state("minCost"), key=repr)[0])
        service.crash()
        dump = service.last_flight_record
        assert dump is not None
        kinds = [event["kind"] for event in dump["flight_recorder"]["events"]]
        assert kinds[-1] == "crash"
        assert "drain" in kinds
        assert dump["metrics"]["service.queries"] == 1.0
        assert dump["traces"] >= 1

    def test_clean_close_leaves_no_flight_record(self):
        from repro.durability.service import ServiceRuntime

        with ServiceRuntime("mincost", topology.line(3), observability=True) as service:
            service.seed_links()
        assert service.last_flight_record is None


class TestInvisibility:
    """Enabling observability must not perturb any deterministic surface."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_state_provenance_and_answers_are_bit_identical(
        self, backend, provenance_fingerprint, store_snapshots
    ):
        outcomes = {}
        for enabled in (False, True):
            with build_runtime(
                observability=enabled, backend=backend, backend_workers=2
            ) as runtime:
                runtime.seed_links(run=True)
                runtime.insert("link", ["n0", "n2", 9])
                runtime.run_to_quiescence()
                engine = DistributedQueryEngine(runtime)
                target = sorted(runtime.state("minCost"), key=repr)[0]
                result = engine.query("minCost", list(target), mode="lineage")
                outcomes[enabled] = {
                    "state": sorted(runtime.state("minCost"), key=repr),
                    "snapshots": store_snapshots(runtime),
                    "provenance": provenance_fingerprint(runtime),
                    "answer": sorted(result.value, key=repr),
                    "messages": result.stats.messages,
                    "rounds": result.stats.rounds,
                    "bytes": result.stats.bytes,
                }
        assert outcomes[False] == outcomes[True]

    def test_scenario_deterministic_view_is_unchanged(self):
        from repro.workloads.driver import run_scenario
        from repro.workloads.profiles import smoke

        views = {}
        for enabled in (False, True):
            spec = smoke().with_knobs(observability=enabled)
            views[enabled] = run_scenario(spec).deterministic_view()
        assert views[False] == views[True]


class TestCompleteness:
    def test_query_span_totals_reconcile_with_metrics_report(self):
        from repro.workloads.driver import ScenarioDriver
        from repro.workloads.profiles import smoke

        spec = smoke().with_knobs(observability=True)
        with ScenarioDriver(spec) as driver:
            report = driver.run()
            tracer = driver.runtime.obs.tracer
            roots = tracer.finished_spans(name="query")
            totals = report.totals()
            assert totals["queries"] > 0
            assert sum(span.attrs["n_roots"] for span in roots) == totals["queries"]
            assert sum(span.attrs["messages"] for span in roots) == (
                totals["query_messages"]
            )
            assert sum(span.attrs["rounds"] for span in roots) == totals["query_rounds"]
            for span in roots:
                tracer.span_tree(span.trace_id)  # raises if any trace is torn
