"""Unit coverage for the tracer (span trees, absorb) and the flight recorder."""

from __future__ import annotations

import pytest

from repro.errors import EngineError
from repro.obs import Observability, resolve_observability
from repro.obs.recorder import FlightRecorder
from repro.obs.tracing import TraceContext, Tracer


class TestSpans:
    def test_root_span_mints_a_trace_id(self):
        tracer = Tracer()
        first = tracer.start_span("a")
        second = tracer.start_span("b")
        assert first.trace_id != second.trace_id
        assert first.parent_id is None

    def test_child_inherits_trace_id_from_parent(self):
        tracer = Tracer()
        root = tracer.start_span("query", trace_id="q1")
        child = tracer.start_span("frame", parent=root)
        grandchild = tracer.start_span("frame", parent=child.context())
        assert child.trace_id == "q1"
        assert child.parent_id == root.span_id
        assert grandchild.parent_id == child.span_id

    def test_finish_records_once_and_merges_attrs(self):
        tracer = Tracer()
        span = tracer.start_span("query", trace_id="q1", messages=0)
        span.finish(messages=4)
        span.finish(messages=99)  # idempotent: second finish is a no-op
        finished = tracer.finished_spans("q1")
        assert len(finished) == 1
        assert finished[0].attrs["messages"] == 4
        assert finished[0].duration >= 0.0

    def test_finished_spans_filters_by_trace_and_name(self):
        tracer = Tracer()
        tracer.start_span("query", trace_id="q1").finish()
        tracer.start_span("frame", trace_id="q1").finish()
        tracer.start_span("query", trace_id="q2").finish()
        assert len(tracer.finished_spans("q1")) == 2
        assert len(tracer.finished_spans(name="query")) == 2
        assert len(tracer.finished_spans("q1", name="frame")) == 1
        assert tracer.trace_ids() == ["q1", "q2"]


class TestSpanTree:
    def test_tree_assembles_with_children_sorted_by_start(self):
        tracer = Tracer()
        root = tracer.start_span("query", trace_id="q1")
        late = tracer.start_span("frame", parent=root, node="'n1'")
        early = tracer.start_span("frame", parent=root, node="'n0'")
        early.start = root.start + 0.001
        late.start = root.start + 0.002
        early.finish()
        late.finish()
        root.finish()
        tree = tracer.span_tree("q1")
        assert tree["name"] == "query"
        assert [child["node"] for child in tree["children"]] == ["'n0'", "'n1'"]

    def test_no_spans_raises(self):
        with pytest.raises(EngineError, match="no finished spans"):
            Tracer().span_tree("missing")

    def test_missing_parent_raises(self):
        tracer = Tracer()
        root = tracer.start_span("query", trace_id="q1")
        orphan = tracer.start_span("frame", parent=TraceContext("q1", "ghost"))
        orphan.finish()
        root.finish()
        with pytest.raises(EngineError, match="missing parent"):
            tracer.span_tree("q1")

    def test_multiple_roots_raise(self):
        tracer = Tracer()
        tracer.start_span("a", trace_id="q1").finish()
        tracer.start_span("b", trace_id="q1").finish()
        with pytest.raises(EngineError, match="exactly one root"):
            tracer.span_tree("q1")

    def test_clear_forgets_finished_spans(self):
        tracer = Tracer()
        tracer.start_span("query", trace_id="q1").finish()
        tracer.clear()
        assert tracer.finished_spans() == []


class TestAbsorb:
    def test_absorb_preserves_parentage_and_attrs_with_fresh_ids(self):
        # A worker-side tracer produces records; the coordinator absorbs
        # them and the tree still assembles under the coordinator root.
        coordinator = Tracer()
        root = coordinator.start_span("window", trace_id="w1")

        worker = Tracer()
        drain = worker.start_span(
            "drain", parent=TraceContext("w1", root.span_id), node="'n3'"
        )
        drain.finish(updates=7)
        records = [span.to_record() for span in worker.finished_spans()]

        absorbed = coordinator.absorb(records)
        root.finish()
        assert len(absorbed) == 1
        span = absorbed[0]
        assert span.parent_id == root.span_id
        assert span.node == "'n3'"
        assert span.attrs == {"updates": 7}
        assert span.span_id != drain.span_id or True  # ids minted locally
        tree = coordinator.span_tree("w1")
        assert [child["name"] for child in tree["children"]] == ["drain"]

    def test_ambient_context_is_settable_and_restorable(self):
        tracer = Tracer()
        assert tracer.current() is None
        context = TraceContext("q1", "s1")
        previous = tracer.set_current(context)
        assert previous is None
        assert tracer.current() == context
        tracer.set_current(previous)
        assert tracer.current() is None


class TestFlightRecorder:
    def test_ring_drops_oldest_and_accounts_for_it(self):
        recorder = FlightRecorder(capacity=2)
        recorder.record("a")
        recorder.record("b")
        recorder.record("c")
        dump = recorder.dump()
        assert dump["recorded"] == 3
        assert dump["dropped"] == 1
        assert [event["kind"] for event in dump["events"]] == ["b", "c"]
        assert [event["seq"] for event in dump["events"]] == [2, 3]

    def test_events_filter_by_kind(self):
        recorder = FlightRecorder()
        recorder.record("drain", node="n0")
        recorder.record("checkpoint", window=3)
        recorder.record("drain", node="n1")
        drains = recorder.events("drain")
        assert [event["node"] for event in drains] == ["n0", "n1"]
        assert len(recorder) == 3

    def test_non_positive_capacity_raises(self):
        with pytest.raises(ValueError, match="must be positive"):
            FlightRecorder(capacity=0)


class TestResolveObservability:
    def test_none_defers_to_default(self):
        assert resolve_observability(None, False) is None
        assert isinstance(resolve_observability(None, True), Observability)

    def test_explicit_bool_wins(self):
        assert resolve_observability(False, True) is None
        assert isinstance(resolve_observability(True, False), Observability)

    def test_existing_instance_is_adopted(self):
        shared = Observability()
        assert resolve_observability(shared, False) is shared

    def test_garbage_raises(self):
        with pytest.raises(EngineError, match="observability must be"):
            resolve_observability("yes", False)
