"""Unit coverage for the metrics registry: instruments, labels, views."""

from __future__ import annotations

import pytest

from repro.errors import EngineError
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_increments_accumulate(self):
        counter = Counter("messages")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5.0

    def test_negative_increment_raises(self):
        counter = Counter("messages")
        with pytest.raises(EngineError, match="cannot decrease"):
            counter.inc(-1)

    def test_labeled_children_are_cached(self):
        counter = Counter("messages")
        a = counter.labels(node="n0")
        b = counter.labels(node="n0")
        other = counter.labels(node="n1")
        assert a is b
        assert a is not other
        a.inc(2)
        assert counter.labels(node="n0").value == 2.0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("depth")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7.0


class TestHistogram:
    def test_exact_count_sum_extremes(self):
        histogram = Histogram("latency", buckets=(0.001, 0.01, 0.1))
        for value in (0.0005, 0.002, 0.05, 0.5):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(0.5525)
        assert histogram.min == 0.0005
        assert histogram.max == 0.5
        assert histogram.bucket_counts() == [1, 1, 1, 1]

    def test_percentile_is_nearest_rank_clamped_to_max(self):
        histogram = Histogram("latency", buckets=(1.0, 2.0, 4.0, 8.0))
        for value in (0.5, 1.5, 3.0, 3.5):
            histogram.observe(value)
        assert histogram.percentile(0.5) == 2.0
        # The rank-4 sample lives in the <=4.0 bucket but the true max is
        # 3.5, so the estimate clamps to the observed maximum.
        assert histogram.percentile(1.0) == 3.5

    def test_exact_percentiles_with_value_buckets(self):
        # Buckets at the observed values make nearest-rank answers exact —
        # the property latency_summary relies on.
        values = [float(v) for v in range(1, 101)]
        histogram = Histogram("latency", buckets=tuple(values))
        for value in values:
            histogram.observe(value)
        assert histogram.percentile(0.50) == 50.0
        assert histogram.percentile(0.95) == 95.0
        assert histogram.percentile(0.99) == 99.0

    def test_summary_key_shape(self):
        histogram = Histogram("latency")
        histogram.observe(0.25)
        summary = histogram.summary()
        assert sorted(summary) == ["count", "max", "mean", "p50", "p95", "p99"]
        assert summary["count"] == 1.0
        assert summary["max"] == 0.25

    def test_empty_histogram_is_zeroed(self):
        histogram = Histogram("latency")
        assert histogram.percentile(0.5) == 0.0
        assert histogram.mean == 0.0
        assert histogram.summary()["max"] == 0.0

    def test_unsorted_or_empty_buckets_raise(self):
        with pytest.raises(EngineError, match="sorted non-empty"):
            Histogram("latency", buckets=())
        with pytest.raises(EngineError, match="sorted non-empty"):
            Histogram("latency", buckets=(2.0, 1.0))

    def test_bad_percentile_fraction_raises(self):
        histogram = Histogram("latency")
        with pytest.raises(EngineError, match="percentile fraction"):
            histogram.percentile(0.0)
        with pytest.raises(EngineError, match="percentile fraction"):
            histogram.percentile(1.5)

    def test_labeled_child_inherits_buckets(self):
        histogram = Histogram("latency", buckets=(1.0, 2.0))
        child = histogram.labels(mode="lineage")
        assert child.buckets == (1.0, 2.0)


class TestRegistry:
    def test_instruments_are_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_type_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("metric")
        with pytest.raises(EngineError, match="already registered"):
            registry.gauge("metric")

    def test_views_rename_to_subsystem_metric(self):
        registry = MetricsRegistry()
        registry.register_view("cache", lambda: {"hits": 3, "misses": 1})
        assert registry.view_values() == {"cache.hits": 3, "cache.misses": 1}

    def test_view_registration_is_last_wins(self):
        registry = MetricsRegistry()
        registry.register_view("cache", lambda: {"hits": 1})
        registry.register_view("cache", lambda: {"hits": 99})
        assert registry.collect()["cache.hits"] == 99

    def test_collect_merges_views_and_instruments(self):
        registry = MetricsRegistry()
        registry.register_view("cache", lambda: {"hits": 2})
        registry.counter("query.issued").inc(5)
        registry.counter("query.issued").labels(mode="lineage").inc(3)
        collected = registry.collect()
        assert collected["cache.hits"] == 2
        assert collected["query.issued"] == 5.0
        assert collected['query.issued{mode="lineage"}'] == 3.0

    def test_histogram_collect_exposes_percentiles(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency", buckets=(1.0, 2.0))
        histogram.observe(1.5)
        collected = registry.collect()
        assert collected["latency.count"] == 1
        assert collected["latency.p50"] == 1.5

    def test_get_returns_registered_instrument_or_none(self):
        registry = MetricsRegistry()
        counter = registry.counter("a")
        assert registry.get("a") is counter
        assert registry.get("missing") is None

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)
