"""Tests for the synthetic RouteViews-style trace generator."""

import pytest

from repro.errors import TraceFormatError
from repro.legacy.relationships import hierarchy
from repro.legacy.routeviews import TraceEvent, generate_trace, parse_trace, render_trace


@pytest.fixture
def topo():
    return hierarchy(tier1_count=2, tier2_per_tier1=2, stubs_per_tier2=2, seed=0)


class TestGeneration:
    def test_events_sorted_by_time(self, topo):
        events = generate_trace(topo, seed=1)
        times = [event.time for event in events]
        assert times == sorted(times)

    def test_origins_are_stub_ases_by_default(self, topo):
        events = generate_trace(topo, seed=1)
        stubs = {asn for asn, tier in topo.tiers.items() if tier == 3}
        assert {event.asn for event in events} <= stubs

    def test_deterministic_for_seed(self, topo):
        assert generate_trace(topo, seed=5) == generate_trace(topo, seed=5)
        assert generate_trace(topo, seed=5) != generate_trace(topo, seed=6)

    def test_every_withdrawal_follows_an_announcement(self, topo):
        events = generate_trace(topo, seed=3, flap_probability=1.0)
        announced = set()
        for event in events:
            key = (event.asn, event.prefix)
            if event.announce:
                announced.add(key)
            else:
                assert key in announced

    def test_prefixes_are_unique_per_origination(self, topo):
        events = generate_trace(topo, prefixes_per_stub=2, seed=2, flap_probability=0.0)
        prefixes = [event.prefix for event in events if event.announce]
        assert len(prefixes) == len(set(prefixes))

    def test_explicit_origin_ases(self, topo):
        tier1 = [asn for asn, tier in topo.tiers.items() if tier == 1]
        events = generate_trace(topo, origin_ases=tier1, seed=0, flap_probability=0.0)
        assert {event.asn for event in events} == set(tier1)


class TestSerialisation:
    def test_round_trip(self, topo):
        events = generate_trace(topo, seed=4)
        assert parse_trace(render_trace(events)) == events

    def test_parse_skips_comments_and_blank_lines(self):
        text = "# header\n\n1.000|A|65001|10.0.0.0/24\n"
        events = parse_trace(text)
        assert events == [TraceEvent(1.0, 65001, "10.0.0.0/24", True)]

    def test_malformed_record_rejected(self):
        with pytest.raises(TraceFormatError):
            parse_trace("1.0|X|65001|10.0.0.0/24")
        with pytest.raises(TraceFormatError):
            parse_trace("not-a-trace")
        with pytest.raises(TraceFormatError):
            parse_trace("abc|A|65001|10.0.0.0/24")
