"""Tests for the BGP decision-process simulator (the Quagga substitute)."""

import pytest

from repro.legacy.bgp import BgpDaemon, BgpNetwork, BgpUpdate, Route
from repro.legacy.relationships import ASTopology, hierarchy


@pytest.fixture
def chain():
    """1 (provider) - 2 - 3 (chain of customer/provider links; 3 is the stub)."""
    topo = ASTopology()
    topo.add_customer_provider(2, 1)
    topo.add_customer_provider(3, 2)
    return topo


@pytest.fixture
def diamond_topology():
    """Stub 4 reaches tier-1s 1 and 2 through two different providers."""
    topo = ASTopology()
    topo.add_peering(1, 2)
    topo.add_customer_provider(3, 1)
    topo.add_customer_provider(3, 2)
    topo.add_customer_provider(4, 3)
    return topo


class TestDecisionProcess:
    def test_origination_installs_local_route(self, chain):
        network = BgpNetwork(chain)
        network.originate(3, "10.0.0.0/24")
        network.run()
        route = network.best_route(3, "10.0.0.0/24")
        assert route is not None and route.as_path == (3,)

    def test_propagation_along_provider_chain(self, chain):
        network = BgpNetwork(chain)
        network.originate(3, "10.0.0.0/24")
        network.run()
        assert network.best_route(2, "10.0.0.0/24").as_path == (3,)
        assert network.best_route(1, "10.0.0.0/24").as_path == (2, 3)
        assert network.reachable_ases("10.0.0.0/24") == [1, 2, 3]

    def test_as_path_loop_rejected(self, chain):
        daemon = BgpDaemon(2, chain)
        responses = daemon.process(
            BgpUpdate(sender=1, receiver=2, prefix="p", announce=True, as_path=(1, 2, 3))
        )
        assert daemon.best_route("p") is None
        assert responses == []

    def test_shorter_as_path_preferred_within_same_class(self, diamond_topology):
        daemon = BgpDaemon(4, diamond_topology)
        daemon.process(BgpUpdate(sender=3, receiver=4, prefix="p", announce=True, as_path=(3, 1, 9)))
        daemon.process(BgpUpdate(sender=3, receiver=4, prefix="p", announce=True, as_path=(3, 9)))
        assert daemon.best_route("p").as_path == (3, 9)

    def test_customer_route_preferred_over_peer_route(self):
        topo = ASTopology()
        topo.add_customer_provider(2, 1)   # 2 is customer of 1
        topo.add_peering(1, 3)
        daemon = BgpDaemon(1, topo)
        daemon.process(BgpUpdate(sender=3, receiver=1, prefix="p", announce=True, as_path=(3, 9)))
        daemon.process(
            BgpUpdate(sender=2, receiver=1, prefix="p", announce=True, as_path=(2, 8, 9))
        )
        # longer path but learned from a customer -> preferred
        assert daemon.best_route("p").as_path == (2, 8, 9)

    def test_withdrawal_falls_back_to_alternative(self, diamond_topology):
        network = BgpNetwork(diamond_topology)
        network.originate(4, "10.9.0.0/24")
        network.run()
        # AS 1 learns the prefix through its customer 3
        assert network.best_route(1, "10.9.0.0/24").as_path == (3, 4)
        network.withdraw(4, "10.9.0.0/24")
        network.run()
        assert network.best_route(1, "10.9.0.0/24") is None
        assert network.reachable_ases("10.9.0.0/24") == []


class TestValleyFreeExport:
    def test_peer_learned_routes_not_reexported_to_peers(self):
        # 2 and 3 are both peers of 1; a route 1 learns from peer 2 must not
        # be exported to peer 3 (valley-free routing).
        topo = ASTopology()
        topo.add_peering(1, 2)
        topo.add_peering(1, 3)
        network = BgpNetwork(topo)
        network.originate(2, "p1")
        network.run()
        assert network.best_route(1, "p1") is not None
        assert network.best_route(3, "p1") is None

    def test_customer_learned_routes_reach_everyone(self, diamond_topology):
        network = BgpNetwork(diamond_topology)
        network.originate(4, "p2")
        network.run()
        assert network.reachable_ases("p2") == [1, 2, 3, 4]


class TestObserversAndStats:
    def test_message_observer_sees_every_update(self, chain):
        network = BgpNetwork(chain)
        seen = []
        network.add_message_observer(seen.append)
        network.originate(3, "p")
        network.run()
        assert len(seen) == network.stats.updates_sent
        assert all(isinstance(update, BgpUpdate) for update in seen)

    def test_rib_observer_sees_best_route_changes(self, chain):
        network = BgpNetwork(chain)
        changes = []
        network.add_rib_observer(lambda asn, prefix, before, after: changes.append((asn, before, after)))
        network.originate(3, "p")
        network.run()
        assert len(changes) == network.stats.best_route_changes
        assert any(asn == 1 and before is None for asn, before, _after in changes)

    def test_full_hierarchy_converges(self):
        topo = hierarchy(tier1_count=3, tier2_per_tier1=2, stubs_per_tier2=2, seed=2)
        network = BgpNetwork(topo)
        stubs = [asn for asn, tier in topo.tiers.items() if tier == 3]
        network.originate(stubs[0], "10.5.0.0/24")
        network.run()
        # customer-originated prefixes propagate to the whole hierarchy
        assert network.reachable_ases("10.5.0.0/24") == sorted(topo.ases)
