"""Tests for AS-level topologies and Gao-Rexford export policies."""

import pytest

from repro.errors import LegacyIntegrationError
from repro.legacy.relationships import ASRelationship, ASTopology, hierarchy


@pytest.fixture
def triangle():
    """AS 1 is provider of AS 2; AS 1 peers with AS 3; AS 2 is provider of AS 4."""
    topo = ASTopology()
    topo.add_customer_provider(2, 1)
    topo.add_peering(1, 3)
    topo.add_customer_provider(4, 2)
    return topo


class TestRelationships:
    def test_relationship_lookup(self, triangle):
        assert triangle.relationship(2, 1) == ASRelationship.CUSTOMER_OF
        assert triangle.relationship(1, 2) == ASRelationship.PROVIDER_OF
        assert triangle.relationship(1, 3) == ASRelationship.PEER
        assert triangle.relationship(3, 1) == ASRelationship.PEER
        assert triangle.relationship(2, 3) is None

    def test_neighbor_sets(self, triangle):
        assert triangle.neighbors(1) == [2, 3]
        assert triangle.customers(1) == [2]
        assert triangle.providers(2) == [1]
        assert triangle.peers(1) == [3]

    def test_links_listing(self, triangle):
        links = triangle.links()
        assert (2, 1, ASRelationship.CUSTOMER_OF) in links
        assert (1, 3, ASRelationship.PEER) in links


class TestExportPolicy:
    def test_customer_routes_exported_everywhere(self, triangle):
        # AS 1 learned a route from its customer 2; it may tell peer 3.
        assert triangle.should_export(1, learned_from=2, to_neighbor=3)

    def test_peer_routes_only_to_customers(self, triangle):
        # AS 1 learned a route from peer 3; it may tell customer 2 but 2 is
        # the only customer; exporting back to 3 is pointless but allowed by
        # policy only towards customers.
        assert triangle.should_export(1, learned_from=3, to_neighbor=2)
        assert not triangle.should_export(3, learned_from=1, to_neighbor=1) if triangle.relationship(3, 1) == ASRelationship.PEER else True

    def test_provider_routes_only_to_customers(self, triangle):
        # AS 2 learned a route from its provider 1; it may export to its
        # customer 4 but not back up to 1 (it has no other provider/peer).
        assert triangle.should_export(2, learned_from=1, to_neighbor=4)

    def test_originated_routes_exported_everywhere(self, triangle):
        assert triangle.should_export(1, learned_from=None, to_neighbor=3)

    def test_non_adjacent_export_rejected(self, triangle):
        with pytest.raises(LegacyIntegrationError):
            triangle.should_export(2, learned_from=1, to_neighbor=3)

    def test_local_preference_order(self, triangle):
        assert triangle.local_preference(1, 2) > triangle.local_preference(1, 3)  # customer > peer
        assert triangle.local_preference(2, 1) == 100  # provider routes least preferred


class TestHierarchyGenerator:
    def test_structure_counts(self):
        topo = hierarchy(tier1_count=3, tier2_per_tier1=2, stubs_per_tier2=2, seed=1)
        tiers = topo.tiers
        assert sum(1 for t in tiers.values() if t == 1) == 3
        assert sum(1 for t in tiers.values() if t == 2) == 6
        assert sum(1 for t in tiers.values() if t == 3) == 12

    def test_tier1_full_mesh_of_peers(self):
        topo = hierarchy(tier1_count=3, seed=0)
        tier1 = sorted(asn for asn, tier in topo.tiers.items() if tier == 1)
        for i, a in enumerate(tier1):
            for b in tier1[i + 1 :]:
                assert topo.relationship(a, b) == ASRelationship.PEER

    def test_stubs_have_providers(self):
        topo = hierarchy(seed=3)
        for asn, tier in topo.tiers.items():
            if tier == 3:
                assert topo.providers(asn)

    def test_determinism(self):
        assert hierarchy(seed=5).links() == hierarchy(seed=5).links()
