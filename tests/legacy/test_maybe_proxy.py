"""Tests for "maybe" rule evaluation and the legacy proxy."""

import pytest

from repro.core.keys import BASE_RID, vid_for
from repro.core.query import DistributedQueryEngine
from repro.engine import topology
from repro.engine.runtime import NetTrailsRuntime
from repro.engine.tuples import Fact
from repro.legacy.maybe import MaybeRuleEvaluator
from repro.legacy.proxy import (
    LEGACY_PROGRAM_SOURCE,
    INPUT_ROUTE,
    OUTPUT_ROUTE,
    ROUTE_ENTRY,
    as_node_id,
    as_path_values,
)
from repro.errors import LegacyIntegrationError


@pytest.fixture
def legacy_runtime():
    """A two-node runtime running the legacy provenance program."""
    net = topology.from_edges([("as1", "as2", 1.0)], name="two-as")
    return NetTrailsRuntime(LEGACY_PROGRAM_SOURCE, net, provenance=True, program_name="legacy")


@pytest.fixture
def evaluator(legacy_runtime):
    node = legacy_runtime.node("as2")
    return MaybeRuleEvaluator(
        node,
        legacy_runtime.compiled.maybe_rules,
        legacy_runtime.compiled.registry,
        "legacy",
    )


class TestMaybeRuleEvaluator:
    def test_requires_maybe_rules(self, legacy_runtime):
        node = legacy_runtime.node("as1")
        ordinary = legacy_runtime.compiled.rules
        with pytest.raises(LegacyIntegrationError):
            MaybeRuleEvaluator(node, ordinary, legacy_runtime.compiled.registry, "legacy")

    def test_extended_output_is_explained(self, evaluator, legacy_runtime):
        incoming = Fact.make(INPUT_ROUTE, ["as2", "as9", "10.0.0.0/24", ("as9", "as7")])
        evaluator.observe_input(incoming)
        outgoing = Fact.make(OUTPUT_ROUTE, ["as2", "as1", "10.0.0.0/24", ("as2", "as9", "as7")])
        assert evaluator.observe_output(outgoing) == 1
        # the derivation is recorded in the provenance tables
        store = legacy_runtime.provenance.store("as2")
        entries = store.prov_entries(vid_for(outgoing))
        assert len(entries) == 1 and entries[0].rid != BASE_RID

    def test_unexplained_output_recorded_as_base(self, evaluator, legacy_runtime):
        outgoing = Fact.make(OUTPUT_ROUTE, ["as2", "as1", "10.1.0.0/24", ("as2",)])
        assert evaluator.observe_output(outgoing) == 0
        store = legacy_runtime.provenance.store("as2")
        assert store.prov_entries(vid_for(outgoing))[0].rid == BASE_RID

    def test_condition_rejects_non_extension(self, evaluator):
        evaluator.observe_input(Fact.make(INPUT_ROUTE, ["as2", "as9", "p", ("as9",)]))
        bogus = Fact.make(OUTPUT_ROUTE, ["as2", "as1", "p", ("as5", "as9")])
        assert evaluator.observe_output(bogus) == 0

    def test_multiple_matching_inputs_give_multiple_derivations(self, evaluator):
        evaluator.observe_input(Fact.make(INPUT_ROUTE, ["as2", "as8", "p", ("as7",)]))
        evaluator.observe_input(Fact.make(INPUT_ROUTE, ["as2", "as9", "p", ("as7",)]))
        outgoing = Fact.make(OUTPUT_ROUTE, ["as2", "as1", "p", ("as2", "as7")])
        assert evaluator.observe_output(outgoing) == 2

    def test_retract_input_retracts_dependent_output(self, evaluator, legacy_runtime):
        incoming = Fact.make(INPUT_ROUTE, ["as2", "as9", "p", ("as9",)])
        evaluator.observe_input(incoming)
        outgoing = Fact.make(OUTPUT_ROUTE, ["as2", "as1", "p", ("as2", "as9")])
        evaluator.observe_output(outgoing)
        node = legacy_runtime.node("as2")
        assert node.store.contains(outgoing)
        evaluator.retract_input(incoming)
        assert not node.store.contains(outgoing)

    def test_retract_output(self, evaluator, legacy_runtime):
        outgoing = Fact.make(OUTPUT_ROUTE, ["as2", "as1", "p", ("as2",)])
        evaluator.observe_output(outgoing)
        evaluator.retract_output(outgoing)
        assert not legacy_runtime.node("as2").store.contains(outgoing)


class TestProxyHelpers:
    def test_as_node_id_and_path_conversion(self):
        assert as_node_id(42) == "as42"
        assert as_path_values((1, 2)) == ("as1", "as2")


class TestQuaggaDeployment:
    @pytest.fixture
    def deployment(self):
        from repro.legacy.quagga import QuaggaDeployment

        return QuaggaDeployment(tier1_count=2, tier2_per_tier1=1, stubs_per_tier2=1, seed=0)

    def test_route_entries_match_bgp_ribs(self, deployment):
        deployment.play_generated_trace(seed=1, flap_probability=0.0)
        prefix = deployment.events_played[0].prefix
        for asn in deployment.as_topology.ases:
            best = deployment.bgp.best_route(asn, prefix)
            entry = deployment.proxy.current_route_entry(asn, prefix)
            if best is None:
                assert entry is None
            else:
                assert entry is not None
                assert entry.values[2] == as_path_values(best.as_path)

    def test_lineage_traces_back_to_origin_announcement(self, deployment):
        deployment.play_generated_trace(seed=1, flap_probability=0.0)
        event = deployment.events_played[0]
        entries = deployment.route_entries(event.prefix)
        # pick the AS with the longest installed AS path (farthest from origin)
        far = max(entries, key=lambda asn: len(entries[asn]))
        result = deployment.derivation_of_route(far, event.prefix)
        base_relations = {ref.relation for ref in result.value}
        assert base_relations == {OUTPUT_ROUTE}
        origins = {ref.location for ref in result.value}
        assert origins == {as_node_id(event.asn)}

    def test_participants_follow_the_as_path(self, deployment):
        deployment.play_generated_trace(seed=1, flap_probability=0.0)
        event = deployment.events_played[0]
        entries = deployment.route_entries(event.prefix)
        far = max(entries, key=lambda asn: len(entries[asn]))
        participants = deployment.participants_of_route(far, event.prefix).value
        expected = set(entries[far]) | {as_node_id(far)}
        assert participants == frozenset(expected)

    def test_withdrawal_removes_route_entries_and_provenance(self, deployment):
        deployment.play_generated_trace(seed=1, flap_probability=0.0)
        event = deployment.events_played[0]
        assert deployment.route_entries(event.prefix)
        from repro.legacy.routeviews import TraceEvent

        deployment.play_event(TraceEvent(999.0, event.asn, event.prefix, announce=False))
        assert deployment.route_entries(event.prefix) == {}
        # no captured state for the withdrawn prefix survives (other prefixes
        # from the trace are untouched)
        assert [r for r in deployment.runtime.state(ROUTE_ENTRY) if r[1] == event.prefix] == []
        assert [r for r in deployment.runtime.state(INPUT_ROUTE) if r[2] == event.prefix] == []
        assert [r for r in deployment.runtime.state(OUTPUT_ROUTE) if r[2] == event.prefix] == []

    def test_flapping_prefix_converges_to_final_state(self, deployment):
        deployment.play_generated_trace(seed=3, flap_probability=1.0, flaps_max=1)
        # after the trace, whatever BGP says must match the proxy's records
        for event in deployment.events_played:
            for asn in deployment.as_topology.ases:
                best = deployment.bgp.best_route(asn, event.prefix)
                entry = deployment.proxy.current_route_entry(asn, event.prefix)
                assert (best is None) == (entry is None)

    def test_missing_route_query_raises(self, deployment):
        with pytest.raises(KeyError):
            deployment.derivation_of_route(100, "10.255.255.0/24")
